"""Tests for the YCSB-like workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simsys import Environment, Event
from repro.simsys.rng import SimRandom
from repro.ycsb import (
    ClientPool,
    LatestChooser,
    ThroughputMeter,
    UniformChooser,
    Workload,
    ZipfianChooser,
    make_chooser,
    workload_a,
    workload_b,
    workload_c,
    write_heavy,
)
from repro.ycsb.client import OpRecord


class TestKeyChoosers:
    def test_uniform_covers_space(self):
        chooser = UniformChooser(100, SimRandom(1))
        seen = {chooser.next_index() for _ in range(5000)}
        assert len(seen) > 90

    def test_zipfian_is_skewed(self):
        chooser = ZipfianChooser(1000, SimRandom(1))
        draws = [chooser.next_index() for _ in range(20000)]
        top_share = sum(1 for d in draws if d < 10) / len(draws)
        assert top_share > 0.2  # top 1% of keys gets >20% of traffic

    def test_zipfian_in_range(self):
        chooser = ZipfianChooser(50, SimRandom(3))
        for _ in range(2000):
            assert 0 <= chooser.next_index() < 50

    def test_latest_prefers_recent(self):
        chooser = LatestChooser(1000, SimRandom(1))
        draws = [chooser.next_index() for _ in range(10000)]
        recent_share = sum(1 for d in draws if d >= 990) / len(draws)
        assert recent_share > 0.2

    def test_factory(self):
        assert isinstance(make_chooser("uniform", 10, SimRandom(1)), UniformChooser)
        assert isinstance(make_chooser("zipfian", 10, SimRandom(1)), ZipfianChooser)
        with pytest.raises(ValueError):
            make_chooser("nope", 10, SimRandom(1))

    def test_key_format(self):
        chooser = UniformChooser(10, SimRandom(1))
        key = chooser.next_key()
        assert key.startswith("user")
        assert len(key) == len("user") + 12


class TestWorkloads:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Workload("bad", read_proportion=0.5, update_proportion=0.1)

    def test_standard_workloads(self):
        assert workload_a().read_proportion == 0.5
        assert workload_b().read_proportion == 0.95
        assert workload_c().read_proportion == 1.0
        assert write_heavy().update_proportion == 0.9

    def test_generator_respects_mix(self):
        generator = write_heavy(record_count=100).generator(SimRandom(5))
        for _ in range(2000):
            generator.next_operation()
        total = sum(generator.counts.values())
        write_share = generator.counts["write"] / total
        assert 0.85 < write_share < 0.95

    def test_inserts_extend_keyspace(self):
        workload = Workload(
            "insert", insert_proportion=1.0, record_count=10
        )
        generator = workload.generator(SimRandom(1))
        keys = {generator.next_operation().key for _ in range(5)}
        assert len(keys) == 5
        assert all(int(k[4:]) > 10 for k in keys)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_operations_always_valid(self, seed):
        generator = workload_a(record_count=50).generator(SimRandom(seed))
        op = generator.next_operation()
        assert op.kind in ("read", "write")
        assert op.key.startswith("user")
        assert op.value_bytes > 0


class TestThroughputMeter:
    def test_series_counts_per_window(self):
        meter = ThroughputMeter(window_s=10.0)
        for t in (1.0, 2.0, 11.0, 25.0):
            meter.record(OpRecord(t, "write", 0.01, True))
        series = dict(meter.series(until=30.0))
        assert series[0.0] == pytest.approx(0.2)
        assert series[10.0] == pytest.approx(0.1)
        assert series[20.0] == pytest.approx(0.1)

    def test_failed_ops_excluded_by_default(self):
        meter = ThroughputMeter(window_s=10.0)
        meter.record(OpRecord(1.0, "write", 0.01, False))
        assert meter.completed_ops() == 0
        assert meter.completed_ops(ok_only=False) == 1

    def test_mean_throughput(self):
        meter = ThroughputMeter()
        for i in range(50):
            meter.record(OpRecord(i * 0.1, "write", 0.01, True))
        assert meter.mean_throughput(0.0, 5.0) == pytest.approx(10.0)


class TestClientPool:
    def test_closed_loop_clients_drive_ops(self):
        env = Environment()
        served = []

        def submit(node, op):
            served.append((node, op.kind))
            event = Event(env)

            def reply():
                yield env.timeout(0.01)
                event.succeed(True)

            env.process(reply())
            return event

        pool = ClientPool(
            env, write_heavy(record_count=100), submit, ["n1", "n2"],
            n_clients=4, think_time_s=0.01, seed=3,
        )
        env.run(until=10.0)
        assert len(served) > 100
        assert {node for node, _ in served} == {"n1", "n2"}
        # Ops still in flight when the clock stops are served but not yet
        # recorded: at most one per client.
        assert len(served) - 4 <= pool.meter.completed_ops() <= len(served)

    def test_failing_node_is_blacklisted(self):
        env = Environment()
        hits = {"bad": 0, "good": 0}

        def submit(node, op):
            hits[node] += 1
            event = Event(env)

            def reply():
                yield env.timeout(0.01)
                event.succeed(node == "good")

            env.process(reply())
            return event

        ClientPool(
            env, write_heavy(record_count=100), submit, ["bad", "good"],
            n_clients=2, think_time_s=0.01, seed=3, blacklist_s=5.0,
        )
        env.run(until=20.0)
        assert hits["good"] > 3 * hits["bad"]
