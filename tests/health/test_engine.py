"""HealthEngine semantics: hysteresis, transitions, incidents, the
anomaly-correlated timeline, and the JSON report."""

import pytest

from repro.health import CRITICAL, OK, WARN, HealthEngine, ThresholdRule
from repro.telemetry import MetricsRegistry

from .conftest import fam

pytestmark = pytest.mark.health


def gauge_rule(warn=10, critical=100):
    return ThresholdRule(
        "backlog", "delivery backlog", "g", mode="gauge", warn=warn, critical=critical
    )


def snap(value):
    return [fam("g", [({}, value)], kind="gauge")]


class _Event:
    """Duck-typed AnomalyEvent stand-in."""

    def __init__(self, at, kind="flow", stage=7, exemplars=2):
        self.kind = kind
        self.host_id = 1
        self.stage_id = stage
        self.window_start = at - 5.0
        self.window_end = at
        self.outliers = 4
        self.n = 10
        self.exemplars = tuple(range(exemplars))


class TestHysteresis:
    def test_single_breach_does_not_raise(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=2, clear_after=2)
        engine.evaluate_snapshot(snap(50), now=0.0)
        assert engine.state == OK

    def test_consecutive_breaches_raise_then_clear(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=2, clear_after=2)
        assert engine.evaluate_snapshot(snap(50), now=0.0) == []
        transitions = engine.evaluate_snapshot(snap(50), now=10.0)
        assert [t.to for t in transitions] == [WARN]
        assert engine.state == WARN
        # One clean read is not enough to clear...
        engine.evaluate_snapshot(snap(1), now=20.0)
        assert engine.state == WARN
        # ...two are.
        transitions = engine.evaluate_snapshot(snap(1), now=30.0)
        assert [t.to for t in transitions] == [OK]
        assert engine.state == OK

    def test_interrupted_streak_resets_pending(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=2, clear_after=2)
        engine.evaluate_snapshot(snap(50), now=0.0)
        engine.evaluate_snapshot(snap(1), now=10.0)  # streak broken
        engine.evaluate_snapshot(snap(50), now=20.0)
        assert engine.state == OK  # needs two in a row again

    def test_escalation_warn_to_critical(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=2, clear_after=2)
        for t in (0.0, 10.0):
            engine.evaluate_snapshot(snap(50), now=t)
        assert engine.state == WARN
        engine.evaluate_snapshot(snap(500), now=20.0)
        assert engine.state == WARN  # one critical read is pending
        engine.evaluate_snapshot(snap(500), now=30.0)
        assert engine.state == CRITICAL

    def test_raise_after_one_is_immediate(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=1, clear_after=1)
        transitions = engine.evaluate_snapshot(snap(500), now=0.0)
        assert [t.to for t in transitions] == [CRITICAL]

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthEngine(rules=[gauge_rule()], raise_after=0)
        with pytest.raises(ValueError):
            HealthEngine(rules=[gauge_rule(), gauge_rule()])  # duplicate names

    def test_time_must_not_regress(self):
        engine = HealthEngine(rules=[gauge_rule()])
        engine.evaluate_snapshot(snap(1), now=10.0)
        with pytest.raises(ValueError):
            engine.evaluate_snapshot(snap(1), now=5.0)


class TestIncidents:
    def _run_incident(self, engine):
        for t in (0.0, 10.0):
            engine.evaluate_snapshot(snap(1), now=t)
        for t in (20.0, 30.0):
            engine.evaluate_snapshot(snap(50), now=t)  # warn at 30
        engine.note_anomaly(_Event(35.0))
        for t in (40.0, 50.0):
            engine.evaluate_snapshot(snap(500), now=t)  # critical at 50
        for t in (60.0, 70.0):
            engine.evaluate_snapshot(snap(1), now=t)  # ok at 70

    def test_incident_spans_warn_to_recovery(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=2, clear_after=2)
        self._run_incident(engine)
        incidents = engine.incidents()
        assert len(incidents) == 1
        incident = incidents[0]
        assert not incident.open
        assert incident.opened_at == 30.0
        assert incident.closed_at == 70.0
        assert incident.peak == CRITICAL
        assert [t.to for t in incident.transitions] == [WARN, CRITICAL, OK]

    def test_anomalies_attach_to_open_incident(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=2, clear_after=2)
        for t in (0.0, 10.0):
            engine.evaluate_snapshot(snap(50), now=t)
        engine.note_anomaly(_Event(15.0, stage=11, exemplars=3))
        incident = engine.incidents()[0]
        assert incident.anomalies[0]["stage_id"] == 11
        assert incident.anomalies[0]["exemplars"] == 3

    def test_anomaly_outside_incident_only_in_global_log(self):
        engine = HealthEngine(rules=[gauge_rule()])
        engine.evaluate_snapshot(snap(1), now=0.0)
        engine.note_anomaly(_Event(5.0))
        assert engine.incidents() == []
        assert any(e["type"] == "anomaly" for e in engine.timeline())

    def test_timeline_merges_and_orders(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=2, clear_after=2)
        self._run_incident(engine)
        timeline = engine.timeline()
        ats = [entry["at"] for entry in timeline]
        assert ats == sorted(ats)
        kinds = [entry["type"] for entry in timeline]
        assert "alert" in kinds and "anomaly" in kinds


class TestReport:
    def test_report_shape_and_alerts(self):
        engine = HealthEngine(rules=[gauge_rule()], raise_after=1, clear_after=1)
        engine.evaluate_snapshot(snap(50), now=0.0)
        report = engine.report_dict()
        assert report["state"] == WARN
        assert report["at"] == 0.0
        assert report["alerts"][0]["name"] == "backlog"
        assert report["alerts"][0]["severity"] == WARN
        assert len(report["rules"]) == 1
        assert report["incident_open"] is True

    def test_report_is_json_able(self):
        import json

        engine = HealthEngine(rules=[gauge_rule()], raise_after=1)
        engine.evaluate_snapshot(snap(500), now=0.0)
        engine.note_anomaly(_Event(1.0))
        json.dumps(engine.report_dict())
        json.dumps([i.as_dict() for i in engine.incidents()])
        json.dumps(engine.timeline())

    def test_observe_reads_live_registry(self):
        registry = MetricsRegistry()
        backlog = registry.gauge("g", "backlog")
        engine = HealthEngine(
            registry, rules=[gauge_rule()], raise_after=1, clear_after=1
        )
        backlog.set(500)
        engine.observe(now=0.0)
        assert engine.state == CRITICAL
        backlog.set(1)
        engine.observe(now=10.0)
        assert engine.state == OK

    def test_report_includes_federated_nodes(self):
        registry = MetricsRegistry()
        registry.federation().absorb(
            "edge-1",
            [fam("tracker_tasks_started", [({}, 4)])],
        )
        engine = HealthEngine(registry, rules=[gauge_rule()])
        report = engine.report_dict()
        assert "edge-1" in report["nodes"]

    def test_engine_accounting_metrics(self):
        registry = MetricsRegistry()
        engine = HealthEngine(
            registry, rules=[gauge_rule()], raise_after=1, clear_after=1
        )
        registry.gauge("g", "backlog").set(50)
        engine.observe(now=0.0)
        assert registry.get("health_evaluations").value == 1
        assert registry.get("health_alerts_active").value == 1
        assert registry.get("health_transitions").labels(to=WARN).value == 1

    def test_broken_rule_reports_ok_not_crash(self):
        class Broken(ThresholdRule):
            def measure(self, view):
                raise RuntimeError("boom")

        engine = HealthEngine(
            rules=[Broken("broken", "s", "g", warn=1)], raise_after=1
        )
        engine.evaluate_snapshot(snap(50), now=0.0)
        assert engine.state == OK
        assert "rule error" in engine.statuses()[0].reason

    def test_report_without_registry_needs_snapshot_feed(self):
        engine = HealthEngine(rules=[gauge_rule()])
        with pytest.raises(RuntimeError):
            engine.observe()
