"""Rule-type semantics: series views, thresholds, ratios, burn rates,
quantiles, and metric-sourced thresholds."""

import math

import pytest

from repro.health import (
    CRITICAL,
    OK,
    WARN,
    BurnRateRule,
    MetricRef,
    QuantileRule,
    RatioRule,
    SeriesView,
    ThresholdRule,
)
from repro.health.rules import worst_severity

from .conftest import fam, hfam

pytestmark = pytest.mark.health


def view_of(*timed):
    return SeriesView(list(timed))


class TestSeriesView:
    def test_latest_sums_matching_labels(self):
        snap = [fam("c", [({"peer": "a"}, 2.0), ({"peer": "b"}, 3.0)])]
        view = view_of((0.0, snap))
        assert view.latest("c") == 5.0
        assert view.latest("c", {"peer": "a"}) == 2.0
        assert view.latest("missing") is None
        assert view.latest("c", {"peer": "zz"}) is None

    def test_delta_and_rate_over_window(self):
        view = view_of(
            (0.0, [fam("c", [({}, 10.0)])]),
            (10.0, [fam("c", [({}, 40.0)])]),
        )
        assert view.delta("c", 10.0) == 30.0
        assert view.rate("c", 10.0) == pytest.approx(3.0)

    def test_delta_needs_two_snapshots(self):
        view = view_of((0.0, [fam("c", [({}, 10.0)])]))
        assert view.delta("c", 10.0) is None
        assert view.rate("c", 10.0) is None

    def test_counter_reset_counts_from_zero(self):
        view = view_of(
            (0.0, [fam("c", [({}, 100.0)])]),
            (10.0, [fam("c", [({}, 4.0)])]),
        )
        assert view.delta("c", 10.0) == 4.0

    def test_series_appearing_midwindow_counts_from_zero(self):
        view = view_of((0.0, []), (10.0, [fam("c", [({}, 7.0)])]))
        assert view.delta("c", 10.0) == 7.0

    def test_baseline_picks_newest_entry_older_than_window(self):
        view = view_of(
            (0.0, [fam("c", [({}, 1.0)])]),
            (10.0, [fam("c", [({}, 5.0)])]),
            (20.0, [fam("c", [({}, 9.0)])]),
        )
        # 10s window at t=20 -> baseline is t=10, not t=0.
        assert view.delta("c", 10.0) == 4.0
        assert view.delta("c", 100.0) == 8.0

    def test_quantile_from_bucket_deltas(self):
        view = view_of(
            (0.0, [hfam("h", 100, 10.0, [(0.1, 100), (1.0, 100), ("+Inf", 100)])]),
            (
                10.0,
                [hfam("h", 200, 30.0, [(0.1, 110), (1.0, 190), ("+Inf", 200)])],
            ),
        )
        # Window deltas: 10 obs <=0.1, 80 more <=1.0, 10 in overflow.
        assert view.quantile("h", 0.5, 10.0) == 1.0
        assert view.quantile("h", 0.05, 10.0) == pytest.approx(0.1)
        assert view.quantile("h", 0.99, 10.0) == math.inf

    def test_quantile_none_without_observations(self):
        snap = [hfam("h", 50, 5.0, [(1.0, 50), ("+Inf", 50)])]
        view = view_of((0.0, snap), (10.0, snap))
        assert view.quantile("h", 0.99, 10.0) is None

    def test_quantile_first_snapshot_uses_absolute_counts(self):
        view = view_of((0.0, [hfam("h", 10, 1.0, [(1.0, 10), ("+Inf", 10)])]))
        assert view.quantile("h", 0.99, 10.0) == 1.0

    def test_resolve_metric_ref_and_literals(self):
        view = view_of((0.0, [fam("w", [({"kind": "shed"}, 64.0)], kind="gauge")]))
        assert view.resolve(5) == 5.0
        assert view.resolve(None) is None
        assert view.resolve(MetricRef("w", kind="shed")) == 64.0
        assert view.resolve(MetricRef("w", kind="hard")) is None

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            SeriesView([])


class TestThresholdRule:
    def test_gauge_mode_warn_and_critical(self):
        rule = ThresholdRule("r", "s", "g", mode="gauge", warn=10, critical=100)
        assert rule.evaluate(view_of((0.0, [fam("g", [({}, 5)], kind="gauge")]))).severity == OK
        assert rule.evaluate(view_of((0.0, [fam("g", [({}, 10)], kind="gauge")]))).severity == WARN
        assert rule.evaluate(view_of((0.0, [fam("g", [({}, 250)], kind="gauge")]))).severity == CRITICAL

    def test_missing_metric_is_ok_no_data(self):
        rule = ThresholdRule("r", "s", "g", mode="gauge", warn=10)
        verdict = rule.evaluate(view_of((0.0, [])))
        assert verdict.severity == OK
        assert verdict.value is None

    def test_delta_mode(self):
        rule = ThresholdRule(
            "r", "s", "c", mode="delta", warn=5, window_s=30.0
        )
        view = view_of((0.0, [fam("c", [({}, 0)])]), (10.0, [fam("c", [({}, 6)])]))
        assert rule.evaluate(view).severity == WARN

    def test_metric_ref_thresholds(self):
        rule = ThresholdRule(
            "backlog",
            "s",
            "pending",
            mode="gauge",
            warn=MetricRef("marks", kind="shed"),
            critical=MetricRef("marks", kind="hard"),
        )
        marks = fam("marks", [({"kind": "shed"}, 100), ({"kind": "hard"}, 1000)], kind="gauge")
        ok = view_of((0.0, [marks, fam("pending", [({}, 50)], kind="gauge")]))
        warn = view_of((0.0, [marks, fam("pending", [({}, 500)], kind="gauge")]))
        crit = view_of((0.0, [marks, fam("pending", [({}, 5000)], kind="gauge")]))
        assert rule.evaluate(ok).severity == OK
        assert rule.evaluate(warn).severity == WARN
        assert rule.evaluate(crit).severity == CRITICAL

    def test_unresolvable_ref_disables_that_threshold(self):
        rule = ThresholdRule(
            "r", "s", "pending", mode="gauge", warn=MetricRef("marks", kind="shed")
        )
        view = view_of((0.0, [fam("pending", [({}, 10**9)], kind="gauge")]))
        assert rule.evaluate(view).severity == OK

    def test_direction_below(self):
        rule = ThresholdRule(
            "r", "s", "workers", mode="gauge", direction="<", critical=0
        )
        assert rule.evaluate(view_of((0.0, [fam("workers", [({}, 0)], kind="gauge")]))).severity == CRITICAL
        assert rule.evaluate(view_of((0.0, [fam("workers", [({}, 3)], kind="gauge")]))).severity == OK

    def test_only_if_active_gate(self):
        rule = ThresholdRule(
            "r",
            "s",
            "workers",
            mode="gauge",
            direction="<",
            critical=0,
            window_s=10.0,
            only_if_active=("traffic", None, 1.0),
        )
        dead = fam("workers", [({}, 0)], kind="gauge")
        quiet = view_of((0.0, [dead, fam("traffic", [({}, 5)])]),
                        (10.0, [dead, fam("traffic", [({}, 5)])]))
        busy = view_of((0.0, [dead, fam("traffic", [({}, 5)])]),
                       (10.0, [dead, fam("traffic", [({}, 50)])]))
        assert rule.evaluate(quiet).severity == OK
        assert rule.evaluate(busy).severity == CRITICAL

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdRule("r", "s", "m", mode="nope", warn=1)
        with pytest.raises(ValueError):
            ThresholdRule("r", "s", "m")  # no thresholds
        with pytest.raises(ValueError):
            ThresholdRule("r", "s", "m", warn=1, direction="!")

    def test_metric_names_include_refs_and_gate(self):
        rule = ThresholdRule(
            "r",
            "s",
            "pending",
            warn=MetricRef("marks", kind="shed"),
            only_if_active=("traffic", None, 1.0),
        )
        assert set(rule.metric_names()) == {"pending", "marks", "traffic"}


class TestRatioRule:
    def test_ratio_of_deltas(self):
        rule = RatioRule("r", "s", "bad", "all", warn=0.05, window_s=30.0)
        view = view_of(
            (0.0, [fam("bad", [({}, 0)]), fam("all", [({}, 0)])]),
            (10.0, [fam("bad", [({}, 6)]), fam("all", [({}, 100)])]),
        )
        verdict = rule.evaluate(view)
        assert verdict.severity == WARN
        assert verdict.value == pytest.approx(0.06)

    def test_quiet_denominator_is_ok(self):
        rule = RatioRule(
            "r", "s", "bad", "all", warn=0.05, min_denominator=50, window_s=30.0
        )
        view = view_of(
            (0.0, [fam("bad", [({}, 0)]), fam("all", [({}, 0)])]),
            (10.0, [fam("bad", [({}, 6)]), fam("all", [({}, 10)])]),
        )
        assert rule.evaluate(view).severity == OK


class TestBurnRateRule:
    def _series(self, drops_per_step):
        """300s of traffic at 100 frames/10s with the given drop deltas."""
        series = []
        drops, frames = 0.0, 0.0
        for step, drop in enumerate(drops_per_step):
            drops += drop
            frames += 100.0
            series.append(
                (step * 10.0, [fam("drops", [({}, drops)]), fam("all", [({}, frames)])])
            )
        return series

    def test_sustained_burn_fires(self):
        rule = BurnRateRule(
            "r", "s", "drops", "all", warn=0.02, window_s=60.0, short_window_s=10.0
        )
        view = SeriesView(self._series([0, 5, 5, 5, 5, 5, 5]))
        verdict = rule.evaluate(view)
        assert verdict.severity == WARN
        assert verdict.value == pytest.approx(0.05)

    def test_old_burst_alone_does_not_fire(self):
        # Heavy drops early, clean short window: long ratio burns but
        # the short window proves the bleeding stopped.
        rule = BurnRateRule(
            "r", "s", "drops", "all", warn=0.02, window_s=60.0, short_window_s=10.0
        )
        view = SeriesView(self._series([0, 30, 30, 0, 0, 0, 0]))
        assert rule.evaluate(view).severity == OK

    def test_short_blip_alone_does_not_fire(self):
        # One bad scrape in an otherwise long clean window.
        rule = BurnRateRule(
            "r", "s", "drops", "all", warn=0.5, window_s=60.0, short_window_s=10.0
        )
        view = SeriesView(self._series([0, 0, 0, 0, 0, 0, 60]))
        assert rule.evaluate(view).severity == OK

    def test_short_window_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule(
                "r", "s", "a", "b", warn=0.1, window_s=60.0, short_window_s=120.0
            )


class TestQuantileRule:
    def test_p99_against_thresholds(self):
        rule = QuantileRule(
            "r", "s", "lag", q=0.99, warn=5.0, critical=30.0, window_s=30.0
        )
        before = hfam("lag", 0, 0.0, [(1.0, 0), (5.0, 0), (60.0, 0), ("+Inf", 0)])
        slow = hfam("lag", 100, 900.0, [(1.0, 0), (5.0, 2), (60.0, 100), ("+Inf", 100)])
        view = view_of((0.0, [before]), (10.0, [slow]))
        verdict = rule.evaluate(view)
        assert verdict.severity == CRITICAL
        assert verdict.value == 60.0

    def test_q_validation(self):
        rule = QuantileRule("r", "s", "lag", q=2.0, warn=1.0)
        with pytest.raises(ValueError):
            rule.evaluate(view_of((0.0, [hfam("lag", 1, 1.0, [("+Inf", 1)])])))


class TestSeverityHelpers:
    def test_worst_severity(self):
        assert worst_severity([]) == OK
        assert worst_severity([OK, WARN, OK]) == WARN
        assert worst_severity([WARN, CRITICAL]) == CRITICAL
