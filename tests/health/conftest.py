"""Shared builders for the health suite: snapshot wire-form helpers
and the deterministic synthetic 2x-overload soak series."""

from typing import Dict, List, Sequence, Tuple

Sample = Tuple[Dict[str, str], float]


def fam(
    name: str, samples: Sequence[Sample], kind: str = "counter", help: str = ""
) -> dict:
    """One family dict in the registry snapshot wire form."""
    label_names: List[str] = []
    for labels, _ in samples:
        for key in labels:
            if key not in label_names:
                label_names.append(key)
    return {
        "name": name,
        "type": kind,
        "help": help,
        "label_names": label_names,
        "samples": [
            {"labels": dict(labels), "value": float(value)}
            for labels, value in samples
        ],
    }


def hfam(
    name: str,
    count: float,
    total: float,
    buckets: Sequence[Tuple[object, float]],
    help: str = "",
) -> dict:
    """One single-sample histogram family in wire form."""
    return {
        "name": name,
        "type": "histogram",
        "help": help,
        "label_names": [],
        "samples": [
            {
                "labels": {},
                "count": float(count),
                "sum": float(total),
                "buckets": [[bound, float(c)] for bound, c in buckets],
            }
        ],
    }


#: Watermarks of the synthetic deployment (bytes): shed at 64 KiB,
#: hard at 512 KiB — the soak benchmark's configuration.
SHED_WATERMARK = 64 * 1024
HARD_WATERMARK = 512 * 1024

#: Scrape cadence of the synthetic series (seconds).
INTERVAL_S = 10.0


def overload_snapshot(
    frames: float,
    pending: float,
    sampled_dropped: float,
    exemplar_dropped: float,
    stalls: float = 0.0,
) -> List[dict]:
    """One synthetic analyzer snapshot during the overload soak."""
    return [
        fam(
            "ingest_watermark_bytes",
            [({"kind": "shed"}, SHED_WATERMARK), ({"kind": "hard"}, HARD_WATERMARK)],
            kind="gauge",
        ),
        fam("server_pending_bytes", [({}, pending)], kind="gauge"),
        fam("shard_server_frames", [({}, frames)]),
        fam(
            "shed_frames_dropped",
            [
                ({"priority": "sampled"}, sampled_dropped),
                ({"priority": "exemplar"}, exemplar_dropped),
            ],
        ),
        fam("client_credit_stalls", [({"peer": "a:1"}, stalls)]),
    ]


def overload_series() -> List[Tuple[float, List[dict]]]:
    """The deterministic 2x-overload soak as ``(t, families)`` pairs.

    Four phases at a 10 s cadence:

    * **healthy** (t 0..50): backlog far below the shed watermark, no
      drops.
    * **shedding** (t 60..110): backlog parked just above the *shed*
      watermark, sampled frames dropped at ~3% of offered load — the
      edge is holding, exemplars intact.  Expected: ``warn`` (backlog +
      burn rate), never ``critical``.
    * **saturated** (t 120..170): backlog past the *hard* watermark,
      exemplar-priority drops begin.  Expected: ``critical``.
    * **recovered** (t 180..290): backlog drained, drops flat.
      Expected: back to ``ok`` after the clear hysteresis.
    """
    series: List[Tuple[float, List[dict]]] = []
    frames = 0.0
    sampled = 0.0
    exemplar = 0.0
    for step in range(30):
        t = step * INTERVAL_S
        frames += 100.0
        if t < 60:
            pending = 1000.0
        elif t < 120:
            pending = SHED_WATERMARK + 8192
            sampled += 3.0
        elif t < 180:
            pending = HARD_WATERMARK + 8192
            sampled += 20.0
            exemplar += 2.0
        else:
            pending = 500.0
        series.append(
            (t, overload_snapshot(frames, pending, sampled, exemplar))
        )
    return series
