"""The ``repro top`` dashboard: sparkline math, series extraction, the
snapshot-series reader, and the golden render of the committed
overload history.

Regenerate the golden after an intentional renderer change::

    PYTHONPATH=src python -m repro top --once \
        --snapshot tests/health/data/top.jsonl --no-color \
        > tests/health/data/top.golden.txt
"""

import io
import os

import pytest

from repro.health.cli import main as top_main
from repro.telemetry import read_jsonl_series, write_jsonl
from repro.viz.top import SPARK_LEVELS, render_top, series_points, sparkline

from .conftest import fam

pytestmark = pytest.mark.health

DATA = os.path.join(os.path.dirname(__file__), "data")
SNAPSHOT = os.path.join(DATA, "top.jsonl")
GOLDEN = os.path.join(DATA, "top.golden.txt")


class TestSparkline:
    def test_ramp_is_monotonic(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == SPARK_LEVELS
        assert [SPARK_LEVELS.index(c) for c in line] == sorted(
            SPARK_LEVELS.index(c) for c in line
        )

    def test_flat_series_renders_low(self):
        assert sparkline([5, 5, 5]) == SPARK_LEVELS[0] * 3

    def test_none_is_blank(self):
        assert sparkline([None, 0.0, 10.0]) == " " + SPARK_LEVELS[0] + SPARK_LEVELS[-1]

    def test_all_none_and_empty(self):
        assert sparkline([None, None]) == "  "
        assert sparkline([]) == ""

    def test_width_keeps_tail(self):
        assert sparkline([0, 0, 0, 9], width=2) == SPARK_LEVELS[0] + SPARK_LEVELS[-1]


class TestSeriesPoints:
    def _history(self):
        return [
            (0.0, [fam("c", [({}, 10.0)]), fam("g", [({}, 3.0)], kind="gauge")]),
            (10.0, [fam("c", [({}, 40.0)]), fam("g", [({}, 7.0)], kind="gauge")]),
        ]

    def test_gauge_rate_delta(self):
        history = self._history()
        assert series_points(history, "g", "gauge") == [3.0, 7.0]
        assert series_points(history, "c", "delta") == [10.0, 30.0]
        assert series_points(history, "c", "rate") == [None, 3.0]

    def test_missing_family_is_none(self):
        assert series_points(self._history(), "zz", "rate") == [None, None]

    def test_counter_reset_plots_from_zero(self):
        history = [
            (0.0, [fam("c", [({}, 100.0)])]),
            (10.0, [fam("c", [({}, 5.0)])]),
        ]
        assert series_points(history, "c", "delta") == [100.0, 5.0]


class TestSnapshotSeriesReader:
    def test_round_trip_with_timestamps(self, tmp_path):
        path = str(tmp_path / "series.jsonl")
        write_jsonl([fam("c", [({}, 1.0)])], path, timestamp=10.0)
        write_jsonl([fam("c", [({}, 2.0)])], path, timestamp=20.0)
        series = read_jsonl_series(path)
        assert [stamp for stamp, _ in series] == [10.0, 20.0]
        assert series[1][1][0]["samples"][0]["value"] == 2.0

    def test_unstamped_headers_read_none(self):
        handle = io.StringIO()
        write_jsonl([fam("c", [({}, 1.0)])], handle)
        handle.seek(0)
        assert read_jsonl_series(handle)[0][0] is None


class TestRenderTop:
    def test_empty_history(self):
        assert render_top([]) == "(no snapshots)\n"

    def test_report_and_timeline_panels(self):
        history = [(0.0, [fam("shard_server_frames", [({}, 5.0)])])]
        report = {
            "state": "warn",
            "rules": [
                {
                    "name": "ingest_backlog",
                    "severity": "warn",
                    "value": 9.0,
                    "reason": "over the line",
                }
            ],
            "incident_open": True,
        }
        timeline = [
            {"type": "alert", "name": "ingest_backlog", "from": "ok",
             "to": "warn", "at": 1.0, "reason": "r"},
            {"type": "anomaly", "at": 2.0, "kind": "flow", "host_id": 1,
             "stage_id": 7, "outliers": 3, "n": 9, "exemplars": 2},
        ]
        out = render_top(history, report, timeline=timeline)
        assert "fleet: WARN" in out
        assert "[incident open]" in out
        assert "stage=7" in out
        assert "\x1b[" not in out  # no ANSI without color=True

    def test_color_tags_severities(self):
        out = render_top(
            [(0.0, [])],
            {"state": "critical", "rules": [], "incident_open": False},
            color=True,
        )
        assert "\x1b[31mCRITICAL\x1b[0m" in out


class TestTopCli:
    def test_golden_render_of_committed_snapshot(self, capsys):
        assert top_main(["--once", "--snapshot", SNAPSHOT, "--no-color"]) == 0
        out = capsys.readouterr().out
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert out == handle.read()

    def test_golden_tells_the_overload_story(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = handle.read()
        assert "fleet: OK" in golden  # recovered by the end
        assert "ok -> WARN" in golden
        assert "warn -> CRITICAL" in golden
        assert "critical -> OK" in golden

    def test_unreadable_snapshot_fails(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
        assert top_main([path]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_bad_usage(self, capsys):
        assert top_main(["--bogus"]) == 2
        assert top_main(["a.jsonl", "b.jsonl"]) == 2
        assert top_main(["--snapshot"]) == 2
        assert top_main(["--width", "nope"]) == 2
        assert top_main(["--interval", "-1"]) == 2
        capsys.readouterr()

    def test_help(self, capsys):
        assert top_main(["--help"]) == 0
        assert "python -m repro top" in capsys.readouterr().out

    @pytest.mark.slow
    def test_live_demo_once(self, capsys):
        assert top_main(["--once", "--no-color"]) == 0
        out = capsys.readouterr().out
        assert "repro top — 1 snapshot" in out
        assert "alerts:" in out
