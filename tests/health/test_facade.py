"""Facade health surface: ``saad.health()``, anomaly correlation from
the detector hook, and the wire probe / federation through
``NodeRuntime.connect``."""

import random
import time

import pytest

from repro.core import SAAD, SAADConfig, TaskSynopsis
from repro.health import OK

pytestmark = pytest.mark.health

STAGES = (1, 2, 3, 7, 11, 42)


def make_trace(tasks, *, seed=7, faults=False, uid_base=0):
    """Deterministic multi-stage trace; ``faults`` plants anomalies."""
    rng = random.Random(seed)
    out = []
    for i in range(tasks):
        stage = STAGES[i % len(STAGES)]
        lps = (stage, stage + 1, stage + 3)
        duration = 0.01 * rng.lognormvariate(0, 0.3)
        if faults and i > tasks // 2:
            if stage == 7 and i % 2:  # novel signature burst
                lps = (stage, stage + 1, stage + 2, stage + 3)
            elif stage == 11:  # sustained slowdown
                duration *= 5
        out.append(
            TaskSynopsis(
                host_id=i % 2,
                stage_id=stage,
                uid=uid_base + i,
                start_time=i * 0.05,
                duration=duration,
                log_points={lp: 1 for lp in lps},
            )
        )
    return out


def config():
    return SAADConfig(window_s=60.0, min_window_tasks=8)


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached before timeout")


def _node_samples(families, node):
    """All (family name, sample) pairs carrying ``node=<node>``."""
    out = []
    for family in families:
        for sample in family["samples"]:
            if sample["labels"].get("node") == node:
                out.append((family["name"], sample))
    return out


class TestHealthFacade:
    def test_report_shape_and_engine_caching(self):
        saad = SAAD(config())
        report = saad.health()
        assert report["state"] == OK
        assert {r["name"] for r in report["rules"]} >= {
            "ingest_backlog",
            "exemplar_drops",
            "detector_close_lag",
        }
        assert saad.health_engine() is saad.health_engine()
        # The engine's accounting lands in the deployment registry.
        assert saad.registry.get("health_evaluations").value >= 1

    def test_engine_rejects_late_reconfiguration(self):
        saad = SAAD(config())
        saad.health_engine()
        with pytest.raises(RuntimeError, match="already created"):
            saad.health_engine(raise_after=5)

    def test_detector_anomalies_land_on_timeline(self):
        saad = SAAD(config())
        saad.train(make_trace(4000))
        engine = saad.health_engine()
        events = saad.detect(make_trace(3000, seed=13, faults=True, uid_base=10_000))
        assert events
        timeline = engine.timeline(limit=10_000)
        anomalies = [e for e in timeline if e["type"] == "anomaly"]
        assert len(anomalies) == len(events)
        assert {e["stage_id"] for e in anomalies} <= set(STAGES)

    def test_detect_without_engine_notes_nothing(self):
        saad = SAAD(config())
        saad.train(make_trace(4000))
        assert saad.detect(
            make_trace(3000, seed=13, faults=True, uid_base=10_000)
        )
        assert saad._health_engine is None  # hook stayed inert

    def test_sharded_detect_notes_anomalies(self):
        saad = SAAD(config(), shards=2)
        saad.train(make_trace(4000))
        engine = saad.health_engine()
        events = saad.detect(make_trace(3000, seed=13, faults=True, uid_base=10_000))
        assert events
        assert engine.report_dict()["anomalies_noted"] == len(events)


class TestWireHealthAndFederation:
    def test_probe_health_round_trip(self):
        analyzer = SAAD(config(), listen=("127.0.0.1", 0))
        producer = SAAD(config())
        node = producer.add_node("edge", wire_format=True)
        try:
            node.connect(analyzer.address)
            report = node.probe_health(timeout=5.0)
            assert report["state"] == OK
            assert any(r["name"] == "ingest_backlog" for r in report["rules"])
            # The probe lazily created the analyzer-side engine.
            assert analyzer._health_engine is not None
        finally:
            producer.close()
            analyzer.close()

    def test_probe_health_requires_connect(self):
        producer = SAAD(config())
        node = producer.add_node("edge", wire_format=True)
        with pytest.raises(RuntimeError, match="connect"):
            node.probe_health()

    def test_connect_federates_edge_registry_under_node_label(self):
        analyzer = SAAD(config(), listen=("127.0.0.1", 0))
        edge = SAAD(config())  # its own registry: the remote deployment
        node = edge.add_node("edge-7", wire_format=True)
        try:
            node.connect(
                analyzer.address,
                telemetry_source=edge.registry,
                telemetry_interval_s=0.0,
            )
            for synopsis in make_trace(50):
                node.stream.sink(synopsis)
            node.stream.flush_wire()
            _wait_for(
                lambda: _node_samples(analyzer.registry.collect(), "edge-7")
            )
            samples = _node_samples(analyzer.registry.collect(), "edge-7")
            names = {name for name, _ in samples}
            assert "stream_synopses" in names
            # The analyzer's own series stay unlabelled.
            for family in analyzer.registry.collect():
                if family["name"] == "shard_server_frames":
                    assert all(
                        "node" not in s["labels"] or s["labels"]["node"] == "edge-7"
                        for s in family["samples"]
                    )
        finally:
            edge.close()
            analyzer.close()

    def test_connect_default_ships_no_telemetry(self):
        analyzer = SAAD(config(), listen=("127.0.0.1", 0))
        producer = SAAD(config())
        node = producer.add_node("edge", wire_format=True)
        try:
            node.connect(analyzer.address)
            for synopsis in make_trace(30):
                node.stream.sink(synopsis)
            node.stream.flush_wire()
            _wait_for(lambda: analyzer.collector.count >= 30)
            assert analyzer.registry.get("server_telemetry_snapshots").value == 0
        finally:
            producer.close()
            analyzer.close()
