"""The built-in rule pack against the synthetic 2x-overload soak, and
the docs/OPERATIONS.md catalog cross-check for every referenced metric."""

import os
import re

import pytest

from repro.health import CRITICAL, OK, WARN, HealthEngine, builtin_rules

from .conftest import (
    HARD_WATERMARK,
    INTERVAL_S,
    SHED_WATERMARK,
    fam,
    overload_series,
    overload_snapshot,
)

pytestmark = pytest.mark.health

OPERATIONS_MD = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "docs", "OPERATIONS.md"
)
_CATALOG_ROW = re.compile(r"^\| `([a-z][a-z0-9_]*)` \|")


def documented_metrics():
    with open(OPERATIONS_MD, "r", encoding="utf-8") as handle:
        text = handle.read()
    catalog = text.split("## 4. Metric catalog", 1)[1].split("## 5.", 1)[0]
    return {
        match.group(1)
        for match in map(_CATALOG_ROW.match, catalog.splitlines())
        if match
    }


def overload_engine():
    return HealthEngine(
        rules=builtin_rules(window_s=3 * INTERVAL_S),
        raise_after=2,
        clear_after=2,
        history_s=600.0,
    )


def severity_of(engine, name):
    for status in engine.statuses():
        if status.name == name:
            return status.severity
    raise AssertionError(f"no rule {name!r}")


class TestOverloadSoakSequence:
    def test_state_sequence_warn_at_shed_critical_at_hard(self):
        """The acceptance scenario: the pack must read the 2x-overload
        soak as ok -> warn (shed watermark) -> critical (hard
        watermark / exemplar drops) -> ok, with no premature
        critical."""
        engine = overload_engine()
        states = []
        for t, families in overload_series():
            engine.evaluate_snapshot(families, now=t)
            states.append(engine.state)
        # Phase boundaries (10s cadence, raise_after=2): healthy
        # through t=50, warn from ~t=70, critical from ~t=130,
        # recovered by the end.
        assert states[:6] == [OK] * 6
        assert WARN in states[6:12]
        assert CRITICAL not in states[:12]
        assert CRITICAL in states[12:18]
        assert states[-1] == OK
        # Ordering: first warn strictly before first critical.
        assert states.index(WARN) < states.index(CRITICAL)

    def test_rules_that_fired_and_rules_that_did_not(self):
        engine = overload_engine()
        fired = set()
        for t, families in overload_series():
            engine.evaluate_snapshot(families, now=t)
            if t == 110.0:  # end of the shedding phase
                assert severity_of(engine, "ingest_backlog") == WARN
                assert severity_of(engine, "shed_burn_rate") == WARN
                assert severity_of(engine, "exemplar_drops") == OK
            if t == 170.0:  # end of the saturated phase
                assert severity_of(engine, "ingest_backlog") == CRITICAL
                assert severity_of(engine, "exemplar_drops") == CRITICAL
            for status in engine.statuses():
                if status.severity != OK:
                    fired.add(status.name)
        assert "credit_stall_ratio" not in fired  # stalls stayed flat
        assert "worker_pool_dead" not in fired

    def test_incident_recorded_with_critical_peak(self):
        engine = overload_engine()
        for t, families in overload_series():
            engine.evaluate_snapshot(families, now=t)
        incidents = engine.incidents()
        assert len(incidents) == 1
        assert incidents[0].peak == CRITICAL
        assert not incidents[0].open

    def test_worker_death_only_fires_under_traffic(self):
        rules = [r for r in builtin_rules(window_s=30.0) if r.name == "worker_pool_dead"]
        engine = HealthEngine(rules=rules, raise_after=1, clear_after=1)
        dead = fam("shard_workers", [({}, 0)], kind="gauge")
        quiet = [dead, fam("shard_synopses_dispatched", [({"shard": "0"}, 100)])]
        engine.evaluate_snapshot(quiet, now=0.0)
        engine.evaluate_snapshot(quiet, now=10.0)
        assert engine.state == OK  # pool dead but nothing dispatched
        busy = [dead, fam("shard_synopses_dispatched", [({"shard": "0"}, 500)])]
        engine.evaluate_snapshot(busy, now=20.0)
        assert engine.state == CRITICAL

    def test_bare_collector_snapshot_is_ok(self):
        """The pack must not fire on a deployment without shedding,
        shards, or federation — absent series are not alerts."""
        engine = HealthEngine(rules=builtin_rules(), raise_after=1)
        engine.evaluate_snapshot([fam("collector_synopses", [({}, 10)])], now=0.0)
        assert engine.state == OK

    def test_watermark_refs_track_configuration(self):
        """Halving the hard watermark must move the critical line
        without touching the rules."""
        engine = HealthEngine(
            rules=builtin_rules(window_s=30.0), raise_after=1, clear_after=1
        )
        pending = HARD_WATERMARK // 2 + 100
        snapshot = overload_snapshot(100, pending, 0, 0)
        engine.evaluate_snapshot(snapshot, now=0.0)
        assert severity_of(engine, "ingest_backlog") == WARN  # above shed only
        reconfigured = overload_snapshot(200, pending, 0, 0)
        for family in reconfigured:
            if family["name"] == "ingest_watermark_bytes":
                for sample in family["samples"]:
                    if sample["labels"]["kind"] == "hard":
                        sample["value"] = HARD_WATERMARK // 4
        engine.evaluate_snapshot(reconfigured, now=10.0)
        assert severity_of(engine, "ingest_backlog") == CRITICAL


class TestPackReferencesCatalog:
    def test_every_rule_metric_is_documented(self):
        """Every metric a built-in rule reads must be in the §4 catalog
        — a rule watching an undocumented (or renamed) series is dead
        weight."""
        documented = documented_metrics()
        for rule in builtin_rules():
            for name in rule.metric_names():
                assert name in documented, (
                    f"rule {rule.name!r} references {name!r}, which is not "
                    f"in the docs/OPERATIONS.md §4 catalog"
                )

    def test_rule_names_unique_and_summaries_present(self):
        rules = builtin_rules()
        names = [rule.name for rule in rules]
        assert len(set(names)) == len(names)
        assert all(rule.summary for rule in rules)

    def test_shed_watermark_constants_match_soak_benchmark(self):
        # The synthetic series mirrors benchmarks/test_soak_overload.py.
        assert SHED_WATERMARK == 64 * 1024
        assert HARD_WATERMARK == 512 * 1024
