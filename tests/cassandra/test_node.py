"""Behavioural tests for the Cassandra simulation, including the paper's
Sec. 5.4 fault-propagation stories."""

import pytest

from repro.cassandra import CassandraCluster, CassandraConfig, ClientOp
from repro.simsys import FaultSpec, HIGH_INTENSITY, LOW_INTENSITY
from repro.ycsb import ClientPool, write_heavy


def make_cluster(**kwargs):
    kwargs.setdefault("n_nodes", 4)
    kwargs.setdefault("seed", 11)
    return CassandraCluster(**kwargs)


def start_clients(cluster, n_clients=10, seed=5, think=0.05, records=2000):
    def submit(node_name, op):
        return cluster.nodes[node_name].client_request(
            ClientOp(op.kind, op.key, value=f"v-{op.key}", nbytes=op.value_bytes)
        )

    return ClientPool(
        cluster.env,
        write_heavy(record_count=records),
        submit,
        cluster.ring.node_names,
        n_clients=n_clients,
        think_time_s=think,
        seed=seed,
    )


def stage_synopses(cluster, stage_name, host_name=None):
    stage = cluster.saad.stages.by_name(stage_name)
    host_ids = cluster.saad.host_names
    out = []
    for s in cluster.saad.collector.synopses:
        if s.stage_id != stage.stage_id:
            continue
        if host_name is not None and host_ids[s.host_id] != host_name:
            continue
        out.append(s)
    return out


class TestHealthyCluster:
    def test_writes_and_reads_succeed(self):
        cluster = make_cluster()
        pool = start_clients(cluster)
        cluster.run(until=60.0)
        records = pool.meter.records
        assert records
        ok_rate = sum(r.ok for r in records) / len(records)
        assert ok_rate > 0.99

    def test_written_value_is_readable(self):
        cluster = make_cluster()
        node = cluster.nodes["host1"]
        outcomes = {}

        def scenario():
            done = node.client_request(ClientOp("write", "user1", value="hello"))
            yield done
            outcomes["write"] = done.value
            yield cluster.env.timeout(0.5)
            read = node.client_request(ClientOp("read", "user1"))
            yield read
            outcomes["read"] = read.value

        cluster.env.process(scenario())
        cluster.run(until=10.0)
        assert outcomes["write"] is True
        assert outcomes["read"] is True

    def test_all_stages_emit_synopses(self):
        cluster = make_cluster()
        start_clients(cluster)
        cluster.run(until=90.0)
        seen = {
            cluster.saad.stages.get(s.stage_id).name
            for s in cluster.saad.collector.synopses
        }
        for stage in (
            "CassandraDaemon",
            "StorageProxy",
            "WorkerProcess",
            "Table",
            "LogRecordAdder",
            "GCInspector",
            "CommitLog",
            "LocalReadRunnable",
            "OutboundTcpConnection",
            "IncomingTcpConnection",
        ):
            assert stage in seen, f"no synopses from stage {stage}"

    def test_memtable_flushes_happen(self):
        cluster = make_cluster()
        start_clients(cluster, n_clients=16, think=0.02)
        cluster.run(until=120.0)
        assert sum(n.store.flushes_completed for n in cluster.node_list) > 0

    def test_table_signature_matches_paper_normal_flow(self):
        """Normal Table tasks hit start/apply/done (paper Table 1)."""
        cluster = make_cluster()
        start_clients(cluster)
        cluster.run(until=30.0)
        lps = cluster.lps
        normal = frozenset(
            {lps.table_start.lpid, lps.table_apply.lpid, lps.table_done.lpid}
        )
        signatures = {s.signature for s in stage_synopses(cluster, "Table")}
        assert normal in signatures


class TestWalErrorFault:
    """Paper Sec. 5.4.1: error on appending to WAL."""

    def run_with_fault(self, intensity, until=120.0, fault_start=30.0):
        cluster = make_cluster()
        pool = start_clients(cluster)
        schedule = cluster.fault_schedule_for("host4")
        schedule.add(
            fault_start, until, FaultSpec("wal", "error", intensity, host="host4")
        )
        schedule.start()
        cluster.run(until=until)
        return cluster, pool

    def test_high_intensity_wedges_commitlog(self):
        cluster, _pool = self.run_with_fault(HIGH_INTENSITY)
        assert cluster.nodes["host4"].wal_wedged
        assert cluster.nodes["host4"].freeze_gate.is_closed

    def test_high_intensity_produces_frozen_only_signatures(self):
        cluster, _pool = self.run_with_fault(HIGH_INTENSITY)
        lps = cluster.lps
        frozen_only = frozenset({lps.table_frozen.lpid})
        after = [
            s
            for s in stage_synopses(cluster, "Table", "host4")
            if s.start_time > 40.0
        ]
        assert frozen_only in {s.signature for s in after}

    def test_healthy_hosts_unaffected_in_table_stage(self):
        cluster, _pool = self.run_with_fault(HIGH_INTENSITY)
        lps = cluster.lps
        frozen_only = frozenset({lps.table_frozen.lpid})
        host1 = {s.signature for s in stage_synopses(cluster, "Table", "host1")}
        assert frozen_only not in host1

    def test_peers_store_hints_for_failed_node(self):
        cluster, _pool = self.run_with_fault(HIGH_INTENSITY)
        hints = sum(
            node.hints.get("host4", 0) + sum(node.hints.values()) * 0
            for node in cluster.node_list
            if node.name != "host4"
        )
        total = sum(
            sum(n.hints.values()) for n in cluster.node_list if n.name != "host4"
        )
        assert hints > 0 or total > 0

    def test_low_intensity_keeps_throughput(self):
        cluster, pool = self.run_with_fault(LOW_INTENSITY, until=90.0, fault_start=30.0)
        before = pool.meter.mean_throughput(5.0, 30.0)
        during = pool.meter.mean_throughput(30.0, 90.0)
        assert not cluster.nodes["host4"].wal_wedged
        assert during > 0.8 * before

    def test_low_intensity_increases_frozen_flow(self):
        cluster, _pool = self.run_with_fault(LOW_INTENSITY, until=150.0, fault_start=60.0)
        lps = cluster.lps
        before = [
            s for s in stage_synopses(cluster, "Table", "host4") if s.start_time < 60.0
        ]
        during = [
            s for s in stage_synopses(cluster, "Table", "host4") if s.start_time >= 60.0
        ]
        def frozen_share(synopses):
            if not synopses:
                return 0.0
            hit = sum(1 for s in synopses if lps.table_frozen.lpid in s.signature)
            return hit / len(synopses)

        assert frozen_share(during) > frozen_share(before) + 0.02

    def test_memory_pressure_eventually_crashes_node(self):
        cluster, _pool = self.run_with_fault(HIGH_INTENSITY, until=1200.0)
        assert not cluster.nodes["host4"].alive
        # Other nodes survive.
        assert all(cluster.nodes[n].alive for n in ("host1", "host2", "host3"))


class TestWalDelayFault:
    """Paper Sec. 5.4.2: delay on appending to WAL."""

    def test_high_delay_slows_local_write_path_without_flow_change(self):
        cluster = make_cluster()
        pool = start_clients(cluster)
        schedule = cluster.fault_schedule_for("host4")
        schedule.add(60.0, 180.0, FaultSpec("wal", "delay", HIGH_INTENSITY, host="host4"))
        schedule.start()
        cluster.run(until=180.0)
        assert not cluster.nodes["host4"].wal_wedged
        assert cluster.nodes["host4"].alive

        def durations(stage, host, lo, hi):
            values = [
                s.duration
                for s in stage_synopses(cluster, stage, host)
                if lo <= s.start_time < hi
            ]
            values.sort()
            return values

        before = durations("StorageProxy", "host4", 5.0, 60.0)
        during = durations("StorageProxy", "host4", 60.0, 180.0)
        assert before and during
        median = lambda v: v[len(v) // 2]
        assert median(during) > median(before) + 0.05  # ~+100ms delay visible

        # Flow must not change: no frozen-only signatures on host4.
        lps = cluster.lps
        frozen_only = frozenset({lps.table_frozen.lpid})
        sigs = {s.signature for s in stage_synopses(cluster, "Table", "host4")}
        assert frozen_only not in sigs


class TestFlushFaults:
    """Paper Sec. 5.4.1/5.4.2: error/delay on flushing MemTables."""

    def make_busy_cluster(self):
        config = CassandraConfig(memtable_flush_bytes=256 * 1024)
        cluster = make_cluster(config=config)
        pool = start_clients(cluster, n_clients=16, think=0.02)
        return cluster, pool

    def test_flush_error_leaves_memtables_pending(self):
        cluster, _pool = self.make_busy_cluster()
        cluster.sim_cluster["host4"].fault_injector.arm(
            FaultSpec("sstable", "error", HIGH_INTENSITY, host="host4")
        )
        cluster.run(until=180.0)
        host4 = cluster.nodes["host4"]
        others = [cluster.nodes[n] for n in ("host1", "host2", "host3")]
        assert len(host4.store.pending_flushes) >= 2
        assert all(len(n.store.pending_flushes) <= 1 for n in others)

    def test_flush_error_logs_retry_flow(self):
        cluster, _pool = self.make_busy_cluster()
        cluster.sim_cluster["host4"].fault_injector.arm(
            FaultSpec("sstable", "error", HIGH_INTENSITY, host="host4")
        )
        cluster.run(until=180.0)
        lps = cluster.lps
        retried = [
            s
            for s in stage_synopses(cluster, "Memtable", "host4")
            if lps.flush_retry.lpid in s.signature
        ]
        assert retried

    def test_flush_delay_slows_flush_tasks(self):
        cluster, _pool = self.make_busy_cluster()
        cluster.sim_cluster["host4"].fault_injector.arm(
            FaultSpec("sstable", "delay", HIGH_INTENSITY, host="host4")
        )
        cluster.run(until=180.0)
        host4_flushes = [s.duration for s in stage_synopses(cluster, "Memtable", "host4")]
        host1_flushes = [s.duration for s in stage_synopses(cluster, "Memtable", "host1")]
        assert host4_flushes and host1_flushes
        assert max(host4_flushes) > 4 * max(host1_flushes)


class TestCrashBehaviour:
    def test_crashed_node_refuses_clients(self):
        cluster = make_cluster()
        node = cluster.nodes["host2"]
        outcomes = {}

        def scenario():
            node.crash()
            done = node.client_request(ClientOp("write", "k", value="v"))
            yield done
            outcomes["ok"] = done.value

        cluster.env.process(scenario())
        cluster.run(until=5.0)
        assert outcomes["ok"] is False

    def test_cluster_survives_single_crash(self):
        cluster = make_cluster()
        pool = start_clients(cluster)

        def killer():
            yield cluster.env.timeout(30.0)
            cluster.nodes["host3"].crash()

        cluster.env.process(killer())
        cluster.run(until=90.0)
        late = [r for r in pool.meter.records if r.time > 50.0]
        assert late
        ok_rate = sum(r.ok for r in late) / len(late)
        assert ok_rate > 0.9
