"""Tests for Cassandra's periodic stages: GC, CommitLog, compaction, hints."""

import pytest

from repro.cassandra import CassandraCluster, CassandraConfig, ClientOp
from repro.ycsb import ClientPool, write_heavy


def make_loaded_cluster(seed=19, flush_bytes=256 * 1024):
    config = CassandraConfig(memtable_flush_bytes=flush_bytes)
    cluster = CassandraCluster(n_nodes=4, seed=seed, config=config)

    def submit(node_name, op):
        return cluster.nodes[node_name].client_request(
            ClientOp(op.kind, op.key, value="v", nbytes=op.value_bytes)
        )

    pool = ClientPool(
        cluster.env,
        write_heavy(record_count=3000),
        submit,
        cluster.ring.node_names,
        n_clients=14,
        think_time_s=0.02,
        seed=seed + 1,
    )
    return cluster, pool


def stage_synopses(cluster, stage_name, host_name=None):
    stage = cluster.saad.stages.by_name(stage_name)
    hosts = cluster.saad.host_names
    return [
        s
        for s in cluster.saad.collector.synopses
        if s.stage_id == stage.stage_id
        and (host_name is None or hosts[s.host_id] == host_name)
    ]


class TestCompactionManager:
    def test_compactions_run_under_sustained_writes(self):
        cluster, _pool = make_loaded_cluster()
        cluster.run(until=300.0)
        total = sum(n.store.compactions_completed for n in cluster.node_list)
        assert total > 0
        lps = cluster.lps
        compacted_tasks = [
            s
            for s in stage_synopses(cluster, "CompactionManager")
            if lps.compact_done.lpid in s.signature
        ]
        assert compacted_tasks

    def test_sstable_count_stays_bounded(self):
        cluster, _pool = make_loaded_cluster()
        cluster.run(until=300.0)
        for node in cluster.node_list:
            # Compaction keeps the table count near the threshold.
            assert len(node.store.sstables) <= 2 * node.store.compaction_threshold + 2


class TestCommitLogStage:
    def test_wal_segments_get_trimmed(self):
        cluster, _pool = make_loaded_cluster()
        cluster.run(until=300.0)
        for node in cluster.node_list:
            assert node.store.wal.total_trims > 0
            # Pending WAL data stays bounded when flushes keep up.
            assert node.store.wal.pending_bytes < 16 * 1024 * 1024

    def test_commitlog_stage_has_discard_flow(self):
        cluster, _pool = make_loaded_cluster()
        cluster.run(until=300.0)
        lps = cluster.lps
        discards = [
            s
            for s in stage_synopses(cluster, "CommitLog")
            if lps.cl_discard.lpid in s.signature
        ]
        assert discards


class TestGCInspector:
    def test_healthy_cluster_logs_parnew_only(self):
        cluster, _pool = make_loaded_cluster()
        cluster.run(until=120.0)
        lps = cluster.lps
        gc_tasks = stage_synopses(cluster, "GCInspector")
        assert gc_tasks
        assert all(lps.gc_parnew.lpid in s.signature for s in gc_tasks)
        assert not any(lps.gc_oom.lpid in s.signature for s in gc_tasks)

    def test_heap_fraction_grows_with_backlog(self):
        cluster, _pool = make_loaded_cluster()
        node = cluster.nodes["host1"]
        baseline = node.heap_fraction()
        # Simulate queued work by stuffing the table executor's queue.
        for _ in range(20000):
            node.table_exec.queue.try_put(lambda: iter(()))
        assert node.heap_fraction() > baseline + 0.3


class TestHintedHandoff:
    def test_hints_replay_to_recovered_node(self):
        cluster, _pool = make_loaded_cluster(seed=31)

        # Knock host4 out briefly by partitioning it, then heal.
        def partition_window():
            yield cluster.env.timeout(30.0)
            cluster.network.isolate("host4", cluster.ring.node_names)
            yield cluster.env.timeout(40.0)
            for other in cluster.ring.node_names:
                cluster.network.heal("host4", other)

        cluster.env.process(partition_window())
        cluster.run(until=70.0)
        stored = sum(
            node.hints.get("host4", 0)
            for node in cluster.node_list
            if node.name != "host4"
        )
        assert stored > 0
        # After healing, the managers replay the hints down to (near) zero.
        cluster.run(until=400.0)
        remaining = sum(
            node.hints.get("host4", 0)
            for node in cluster.node_list
            if node.name != "host4"
        )
        assert remaining < stored

    def test_hint_replay_logs_visible_in_worker_stage(self):
        cluster, _pool = make_loaded_cluster(seed=31)

        def partition_window():
            yield cluster.env.timeout(30.0)
            cluster.network.isolate("host4", cluster.ring.node_names)

        cluster.env.process(partition_window())
        cluster.run(until=180.0)
        lps = cluster.lps
        timeouts = [
            s
            for s in cluster.saad.collector.synopses
            if lps.worker_hint_timeout.lpid in s.signature
        ]
        assert timeouts, "replays to the isolated node should time out"
