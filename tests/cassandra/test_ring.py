"""Tests for the token ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cassandra import TokenRing, hash_key


class TestTokenRing:
    def test_replicas_are_distinct(self):
        ring = TokenRing(["a", "b", "c", "d"], replication_factor=3)
        replicas = ring.replicas_for("some-key")
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_rf_larger_than_cluster_rejected(self):
        with pytest.raises(ValueError):
            TokenRing(["a", "b"], replication_factor=3)

    def test_quorum(self):
        assert TokenRing(["a", "b", "c"], 3).quorum() == 2
        assert TokenRing(["a"], 1).quorum() == 1

    def test_placement_deterministic(self):
        ring = TokenRing(["a", "b", "c", "d"], 3)
        assert ring.replicas_for("k1") == ring.replicas_for("k1")

    def test_placement_roughly_balanced(self):
        ring = TokenRing(["a", "b", "c", "d"], 1)
        counts = {}
        for i in range(4000):
            primary = ring.primary_for(f"user{i:012d}")
            counts[primary] = counts.get(primary, 0) + 1
        assert len(counts) == 4
        assert min(counts.values()) > 400  # no node starved

    def test_hash_key_stable(self):
        assert hash_key("abc") == hash_key("abc")
        assert hash_key("abc") != hash_key("abd")

    @settings(max_examples=50, deadline=None)
    @given(key=st.text(min_size=1, max_size=30), rf=st.integers(1, 4))
    def test_replica_count_property(self, key, rf):
        ring = TokenRing(["n1", "n2", "n3", "n4"], rf)
        replicas = ring.replicas_for(key)
        assert len(replicas) == rf
        assert len(set(replicas)) == rf
        assert all(r in ring.node_names for r in replicas)
