"""Validation tests for system configuration dataclasses."""

import pytest

from repro.cassandra import CassandraCluster, CassandraConfig
from repro.core import SAADConfig
from repro.hbase import HBaseConfig


class TestCassandraConfig:
    def test_defaults_are_valid(self):
        config = CassandraConfig()
        assert config.replication_factor == 3
        assert config.wal_wedge_after_failures >= 1

    def test_invalid_rf_rejected(self):
        with pytest.raises(ValueError):
            CassandraConfig(replication_factor=0)

    def test_invalid_wedge_threshold_rejected(self):
        with pytest.raises(ValueError):
            CassandraConfig(wal_wedge_after_failures=0)

    def test_rf_clamped_to_cluster_size(self):
        cluster = CassandraCluster(n_nodes=2, seed=1)
        assert cluster.config.replication_factor == 2
        assert cluster.ring.replication_factor == 2


class TestHBaseConfig:
    def test_defaults_are_valid(self):
        config = HBaseConfig()
        assert config.n_regions >= 1
        assert config.storefile_compact_threshold >= 2

    def test_invalid_regions_rejected(self):
        with pytest.raises(ValueError):
            HBaseConfig(n_regions=0)

    def test_invalid_compact_threshold_rejected(self):
        with pytest.raises(ValueError):
            HBaseConfig(storefile_compact_threshold=1)


class TestSAADConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flow_percentile": 0.3},
            {"flow_percentile": 1.0},
            {"duration_percentile": 1.2},
            {"alpha": 0.0},
            {"alpha": 0.7},
            {"window_s": 0.0},
            {"kfold": 1},
            {"kfold_discard_factor": 0.5},
        ],
    )
    def test_out_of_range_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SAADConfig(**kwargs)

    def test_paper_defaults(self):
        config = SAADConfig()
        assert config.flow_percentile == 0.99
        assert config.duration_percentile == 0.99
        assert config.alpha == 0.001
        assert config.window_s == 180.0  # the paper's 3-minute splits
        assert config.kfold == 5
        assert config.per_host is True
