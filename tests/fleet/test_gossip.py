"""Gossip engine: epidemic convergence, partitions, hostile payloads."""

import json
import random

import pytest

from repro.fleet.gossip import Gossip, LoopbackHub
from repro.fleet.membership import ALIVE, DEAD, MembershipTable
from repro.telemetry import MetricsRegistry

pytestmark = pytest.mark.fleet


def mesh(fake_clock, n, hub=None, seed=7):
    """N gossiping nodes on one loopback hub, seeded pairwise-unknown:
    node-0 knows everyone's address (the bootstrap contact), everyone
    knows node-0."""
    hub = hub if hub is not None else LoopbackHub()
    gossips = []
    for i in range(n):
        endpoint = hub.attach()
        table = MembershipTable(
            f"node-{i}",
            address=endpoint.address,
            clock=fake_clock,
            suspect_after_s=2.0,
            dead_after_s=6.0,
        )
        gossips.append(
            Gossip(table, endpoint, rng=random.Random(seed + i))
        )
    contact = gossips[0].table
    for gossip in gossips[1:]:
        contact.merge([gossip.table.local.digest_entry()])
        gossip.table.merge([contact.local.digest_entry()])
    return hub, gossips


def step_all(gossips, rounds=1):
    for _ in range(rounds):
        for gossip in gossips:
            gossip.step()


class TestConvergence:
    def test_full_mesh_knowledge_in_log_rounds(self, fake_clock):
        _, gossips = mesh(fake_clock, 5)
        step_all(gossips, 6)
        names = {f"node-{i}" for i in range(5)}
        for gossip in gossips:
            assert set(gossip.table.members) == names
            assert all(
                m.state == ALIVE for m in gossip.table.members.values()
            )

    def test_heartbeats_spread_indirectly(self, fake_clock):
        # node-2 never hears from node-1 directly, yet node-1's pulses
        # keep it alive in node-2's table via the contact node.
        _, gossips = mesh(fake_clock, 3, seed=3)
        step_all(gossips, 4)
        for _ in range(6):
            fake_clock.advance(1.0)
            step_all(gossips)
        table = gossips[2].table
        assert table.members["node-1"].state == ALIVE


class TestPartitions:
    def test_blackholed_node_is_declared_dead_everywhere(self, fake_clock):
        hub, gossips = mesh(fake_clock, 4)
        step_all(gossips, 6)
        victim = gossips[3]
        hub.drop(victim.table.local.address)
        for _ in range(8):
            fake_clock.advance(1.0)
            step_all(gossips)
        for gossip in gossips[:3]:
            assert gossip.table.members["node-3"].state == DEAD

    def test_restored_node_refutes_its_death(self, fake_clock):
        hub, gossips = mesh(fake_clock, 3)
        step_all(gossips, 6)
        victim = gossips[2]
        hub.drop(victim.table.local.address)
        for _ in range(8):
            fake_clock.advance(1.0)
            step_all(gossips[:2])
        assert gossips[0].table.members["node-2"].state == DEAD

        hub.restore(victim.table.local.address)
        step_all(gossips, 6)
        assert gossips[0].table.members["node-2"].state == ALIVE
        assert gossips[0].table.members["node-2"].incarnation > 0


class TestWireHygiene:
    def test_undecodable_payloads_are_counted_and_dropped(self, fake_clock):
        registry = MetricsRegistry()
        hub = LoopbackHub()
        endpoint = hub.attach()
        table = MembershipTable("solo", address=endpoint.address, clock=fake_clock)
        gossip = Gossip(table, endpoint, registry=registry)

        rejected = registry.get("fleet_gossip_rejected")
        gossip.receive(b"\xff\xfenot json")
        gossip.receive(json.dumps({"no": "digest"}).encode())
        gossip.receive(json.dumps({"from": "x", "digest": 5}).encode())
        assert rejected.value == 3
        assert list(table.members) == ["solo"]

    def test_rounds_are_counted(self, fake_clock):
        registry = MetricsRegistry()
        hub = LoopbackHub()
        endpoint = hub.attach()
        table = MembershipTable("solo", address=endpoint.address, clock=fake_clock)
        gossip = Gossip(table, endpoint, registry=registry)
        gossip.step()
        gossip.step()
        assert registry.get("fleet_gossip_rounds").value == 2
        assert table.local.heartbeat == 2

    def test_fanout_must_be_positive(self, fake_clock):
        hub = LoopbackHub()
        endpoint = hub.attach()
        table = MembershipTable("solo", address=endpoint.address, clock=fake_clock)
        with pytest.raises(ValueError):
            Gossip(table, endpoint, fanout=0)
