"""Membership-change equivalence: the fleet's merged feed is exact.

The acceptance bar for DESIGN.md §16: the order-normalized event set a
fleet emits is identical to a single-process detector's — in steady
state, with a node joining mid-stream, and with a node crashing
mid-stream (open windows rebuilt at new owners from retained replay).
"""

import pytest

from repro.core import AnomalyDetector
from repro.fleet import AnalyzerFleet
from repro.shard.coordinator import EVENT_ORDER

pytestmark = pytest.mark.fleet


@pytest.fixture(scope="module")
def expected(model):
    from tests.shard.conftest import make_trace

    trace = make_trace(3000, seed=13, faults=True, uid_base=10_000)
    single = AnomalyDetector(model)  # saadlint: disable=SH001
    for synopsis in trace:
        single.observe(synopsis)  # saadlint: disable=CP001
    single.flush()
    events = sorted(single.anomalies, key=EVENT_ORDER)
    assert events, "workload must produce anomalies for the comparison to bite"
    return events


class TestSteadyState:
    def test_fleet_matches_single_process(self, model, detect_trace, expected):
        with AnalyzerFleet(model, 3) as fleet:
            fleet.dispatch(detect_trace)
            events = fleet.close()
        assert events == expected

    def test_single_node_fleet_matches(self, model, detect_trace, expected):
        with AnalyzerFleet(model, 1) as fleet:
            fleet.dispatch(detect_trace)
            events = fleet.close()
        assert events == expected

    def test_frame_path_matches_object_path(self, model, detect_trace, expected):
        blob = b"".join(s.encode() for s in detect_trace)
        with AnalyzerFleet(model, 3) as fleet:
            fleet.dispatch_payload(blob, 0, len(blob))
            events = fleet.close()
        assert events == expected


class TestJoin:
    def test_join_mid_stream_is_exact(self, model, detect_trace, expected):
        half = len(detect_trace) // 2
        with AnalyzerFleet(model, 3) as fleet:
            fleet.dispatch(detect_trace[:half])
            before = list(fleet.router.ring.table())
            fleet.join("node-3")
            after = fleet.router.ring.table()
            fleet.dispatch(detect_trace[half:])
            events = fleet.close()
        assert events == expected
        # The reshard actually moved a bounded slice of the stage space.
        moved = fleet.router.ring.moved(before, after)
        assert moved
        assert len(moved) <= 1.5 * 256 / 4
        assert all(after[s] == "node-3" for s in moved)

    def test_repeated_joins_stay_exact(self, model, detect_trace, expected):
        third = len(detect_trace) // 3
        with AnalyzerFleet(model, 2) as fleet:
            fleet.dispatch(detect_trace[:third])
            fleet.join("node-2")
            fleet.dispatch(detect_trace[third : 2 * third])
            fleet.join("node-3")
            fleet.dispatch(detect_trace[2 * third :])
            events = fleet.close()
        assert events == expected


class TestDeath:
    def test_crash_mid_stream_is_exact(self, model, detect_trace, expected):
        half = len(detect_trace) // 2
        with AnalyzerFleet(model, 3) as fleet:
            fleet.dispatch(detect_trace[:half])
            fleet.kill("node-2")
            fleet.dispatch(detect_trace[half:])
            events = fleet.close()
        assert events == expected

    def test_crash_then_rejoin_is_exact(self, model, detect_trace, expected):
        third = len(detect_trace) // 3
        with AnalyzerFleet(model, 3) as fleet:
            fleet.dispatch(detect_trace[:third])
            fleet.kill("node-1")
            fleet.dispatch(detect_trace[third : 2 * third])
            fleet.join("node-3")  # replacement capacity
            fleet.dispatch(detect_trace[2 * third :])
            events = fleet.close()
        assert events == expected

    def test_gossip_spreads_the_death_verdict(self, model, detect_trace):
        with AnalyzerFleet(model, 3) as fleet:
            fleet.step_gossip(6)
            fleet.kill("node-0")
            fleet.step_gossip(6)
            survivor = fleet._gossips["node-1"].table
            assert survivor.members["node-0"].state == "dead"
            fleet.dispatch(detect_trace)
            fleet.close()


class TestFacade:
    def test_saad_fleet_detect_matches(self, model, detect_trace, expected):
        from repro.core import SAAD

        saad = SAAD(config=model.config, fleet=3)
        saad.model = model
        assert saad.detect(detect_trace) == expected

    def test_fleet_and_shards_are_mutually_exclusive(self):
        from repro.core import SAAD

        with pytest.raises(ValueError):
            SAAD(shards=2, fleet=2)
