"""Router retention and reroute accounting against live analyzers."""

import pytest

from repro.fleet import AnalyzerFleet
from repro.telemetry import MetricsRegistry

pytestmark = pytest.mark.fleet


class TestRetention:
    def test_watermark_pruning_empties_retention(self, model, detect_trace):
        with AnalyzerFleet(model, 3) as fleet:
            fleet.dispatch(detect_trace)
            assert fleet.router.retained_synopses > 0
            fleet.router.wait_acked()
            # Everything before the stream head's close horizon is
            # pruned; only the open tail windows stay retained.
            width = model.config.window_s
            tail = [
                s
                for s in detect_trace
                if s.start_time >= (max(x.start_time for x in detect_trace) // width) * width
            ]
            assert fleet.router.retained_synopses <= len(tail)
            fleet.close()

    def test_retention_survives_wire_loss_to_dead_peer(self, model, detect_trace):
        # Killing a node between route and flush loses the wire write
        # but not the synopses: they are retained at route time.
        half = len(detect_trace) // 2
        with AnalyzerFleet(model, 3) as fleet:
            fleet.dispatch(detect_trace[:half])
            node = fleet.node("node-0")
            node.server.close()  # dies under the router, no sync yet
            fleet.dispatch(detect_trace[half:])  # sends tolerated
            fleet.membership.declare_dead("node-0")
            node.alive = False
            fleet.sync()  # now reroute replays the retained tail
            events = fleet.close()
        assert events  # stream still produced the anomaly feed


class TestAccounting:
    def test_fleet_metrics_are_registered_and_move(self, model, detect_trace):
        registry = MetricsRegistry()
        with AnalyzerFleet(model, 3, registry=registry) as fleet:
            fleet.dispatch(detect_trace[: len(detect_trace) // 2])
            fleet.join("node-3")
            fleet.kill("node-0")
            fleet.dispatch(detect_trace[len(detect_trace) // 2 :])
            fleet.step_gossip(2)

            assert registry.get("fleet_ring_version").value >= 5.0
            assert registry.get("fleet_stages_moved").value > 0
            assert registry.get("fleet_reroute_replays").value > 0
            assert registry.get("fleet_gossip_rounds").value >= 2
            routed = registry.get("fleet_synopses_routed").collect()
            assert sum(s["value"] for s in routed["samples"]) == len(detect_trace)
            members = registry.get("fleet_members")
            assert members.labels(state="alive").value >= 3  # incl. coordinator
            assert members.labels(state="dead").value == 1
            fleet.close()

    def test_reroute_counters_stay_flat_without_churn(self, model, detect_trace):
        # Constructing the fleet is join churn (stages move onto each
        # starting node); a churn-free stream must add none on top, and
        # nothing is ever replayed when no routed stage changes owner.
        registry = MetricsRegistry()
        with AnalyzerFleet(model, 3, registry=registry) as fleet:
            startup_moves = registry.get("fleet_stages_moved").value
            fleet.dispatch(detect_trace)
            fleet.close()
        assert registry.get("fleet_stages_moved").value == startup_moves
        assert registry.get("fleet_reroute_replays").value == 0


class TestGuards:
    def test_dispatch_without_nodes_raises(self, model):
        from repro.fleet.router import FleetRouter

        router = FleetRouter(lambda node_id: None, window_s=60.0)
        with pytest.raises(LookupError):
            router.dispatch_payload(b"", 0, 0)

    def test_closed_router_refuses_dispatch(self, model, detect_trace):
        fleet = AnalyzerFleet(model, 2)
        fleet.dispatch(detect_trace[:100])
        fleet.close()
        with pytest.raises(ValueError):
            fleet.dispatch(detect_trace[:100])

    def test_duplicate_node_ids_rejected(self, model):
        with pytest.raises(ValueError):
            AnalyzerFleet(model, ["a", "a"])

    def test_window_geometry_validated(self):
        from repro.fleet.router import FleetRouter

        with pytest.raises(ValueError):
            FleetRouter(lambda node_id: None, window_s=0.0)
