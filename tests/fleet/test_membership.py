"""Membership state machine: failure detection, SWIM merges, refutation."""

import pytest

from repro.fleet.membership import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    Member,
    MembershipTable,
)

pytestmark = pytest.mark.fleet


def table(fake_clock, node_id="self", **kwargs):
    kwargs.setdefault("suspect_after_s", 2.0)
    kwargs.setdefault("dead_after_s", 6.0)
    return MembershipTable(node_id, clock=fake_clock, **kwargs)


def seed_peer(t, node_id, **kwargs):
    t.merge([Member(node_id, **kwargs).digest_entry()])
    return t.members[node_id]


class TestFailureDetector:
    def test_silence_demotes_alive_to_suspect_to_dead(self, fake_clock):
        t = table(fake_clock)
        peer = seed_peer(t, "peer")
        assert peer.state == ALIVE

        fake_clock.advance(2.0)
        assert [m.node_id for m in t.tick()] == ["peer"]
        assert peer.state == SUSPECT

        fake_clock.advance(4.0)  # 6s total silence
        assert [m.node_id for m in t.tick()] == ["peer"]
        assert peer.state == DEAD

    def test_dead_timeout_measured_from_last_evidence(self, fake_clock):
        # One long silence can cross both thresholds in a single tick.
        t = table(fake_clock)
        peer = seed_peer(t, "peer")
        fake_clock.advance(10.0)
        changed = t.tick()
        assert peer.state == DEAD
        assert len(changed) == 2  # both transitions reported

    def test_fresh_evidence_resets_the_clock(self, fake_clock):
        t = table(fake_clock)
        peer = seed_peer(t, "peer")
        fake_clock.advance(1.5)
        t.merge([Member("peer", heartbeat=1).digest_entry()])
        fake_clock.advance(1.5)  # 3s since discovery, 1.5s since beat
        assert t.tick() == []
        assert peer.state == ALIVE

    def test_own_entry_never_times_out(self, fake_clock):
        t = table(fake_clock)
        fake_clock.advance(1000.0)
        assert t.tick() == []
        assert t.local.state == ALIVE

    def test_suspects_stay_routable(self, fake_clock):
        t = table(fake_clock)
        seed_peer(t, "peer")
        fake_clock.advance(2.0)
        t.tick()
        assert "peer" in [m.node_id for m in t.routable()]
        fake_clock.advance(4.0)
        t.tick()
        assert "peer" not in [m.node_id for m in t.routable()]

    def test_timeouts_must_be_ordered(self, fake_clock):
        with pytest.raises(ValueError):
            MembershipTable(
                "x", clock=fake_clock, suspect_after_s=5.0, dead_after_s=5.0
            )


class TestMergeRules:
    def test_discovery_reports_via_on_change(self, fake_clock):
        seen = []
        t = table(fake_clock)
        t.on_change = lambda member, previous: seen.append(
            (member.node_id, previous, member.state)
        )
        seed_peer(t, "peer")
        assert seen == [("peer", "", ALIVE)]

    def test_higher_incarnation_wins(self, fake_clock):
        t = table(fake_clock)
        peer = seed_peer(t, "peer")
        t.declare_dead("peer")
        # The accused refuted with a fresh incarnation: alive wins.
        t.merge([Member("peer", state=ALIVE, incarnation=1).digest_entry()])
        assert peer.state == ALIVE
        assert peer.incarnation == 1

    def test_worse_state_wins_at_equal_incarnation(self, fake_clock):
        t = table(fake_clock)
        peer = seed_peer(t, "peer")
        t.merge([Member("peer", state=DEAD, incarnation=0).digest_entry()])
        assert peer.state == DEAD
        # A stale all-is-well digest cannot shout the death down.
        t.merge(
            [Member("peer", state=ALIVE, incarnation=0, heartbeat=99).digest_entry()]
        )
        assert peer.state == DEAD

    def test_heartbeat_refreshes_liveness_only(self, fake_clock):
        t = table(fake_clock)
        peer = seed_peer(t, "peer")
        fake_clock.advance(1.9)
        t.merge([Member("peer", heartbeat=5).digest_entry()])
        assert peer.heartbeat == 5
        fake_clock.advance(1.9)  # 3.8s since discovery, 1.9s since pulse
        assert t.tick() == []

    def test_stale_heartbeat_is_ignored(self, fake_clock):
        t = table(fake_clock)
        peer = seed_peer(t, "peer", heartbeat=7)
        before = peer.last_seen
        fake_clock.advance(1.0)
        t.merge([Member("peer", heartbeat=3).digest_entry()])
        assert peer.heartbeat == 7
        assert peer.last_seen == before

    def test_unknown_state_raises(self, fake_clock):
        t = table(fake_clock)
        entry = Member("peer").digest_entry()
        entry["state"] = "zombie"
        with pytest.raises(ValueError):
            t.merge([entry])


class TestRumorSquashing:
    def test_refutes_suspicion_about_self(self, fake_clock):
        t = table(fake_clock)
        t.merge([Member("self", state=SUSPECT, incarnation=0).digest_entry()])
        assert t.local.state == ALIVE
        assert t.local.incarnation == 1  # outranks the rumor everywhere

    def test_refutes_death_about_self(self, fake_clock):
        t = table(fake_clock)
        t.merge([Member("self", state=DEAD, incarnation=4).digest_entry()])
        assert t.local.state == ALIVE
        assert t.local.incarnation == 5

    def test_stale_rumor_about_self_is_ignored(self, fake_clock):
        t = table(fake_clock)
        t.local.incarnation = 3
        t.merge([Member("self", state=DEAD, incarnation=2).digest_entry()])
        assert t.local.state == ALIVE
        assert t.local.incarnation == 3

    def test_refutation_beats_the_rumor_at_a_third_party(self, fake_clock):
        # Observer hears the death rumor, then the refutation: the
        # refutation's higher incarnation resurrects the member.
        observer = table(fake_clock, "observer")
        peer = seed_peer(observer, "peer")
        observer.merge([Member("peer", state=DEAD, incarnation=0).digest_entry()])
        assert peer.state == DEAD

        accused = table(fake_clock, "peer")
        accused.merge([Member("peer", state=DEAD, incarnation=0).digest_entry()])
        observer.merge([accused.local.digest_entry()])
        assert peer.state == ALIVE
        assert peer.incarnation == 1


class TestVerdictsAndViews:
    def test_declare_dead_is_a_first_hand_verdict(self, fake_clock):
        t = table(fake_clock)
        peer = seed_peer(t, "peer")
        assert t.declare_dead("peer") is peer
        assert peer.state == DEAD
        assert t.declare_dead("stranger") is None

    def test_declare_dead_does_not_resurrect_left(self, fake_clock):
        t = table(fake_clock)
        peer = seed_peer(t, "peer")
        t.merge([Member("peer", state=LEFT, incarnation=1).digest_entry()])
        t.declare_dead("peer")
        assert peer.state == LEFT

    def test_leave_bumps_incarnation(self, fake_clock):
        t = table(fake_clock)
        t.leave()
        assert t.local.state == LEFT
        assert t.local.incarnation == 1

    def test_counts_and_digest_are_deterministic(self, fake_clock):
        t = table(fake_clock)
        seed_peer(t, "b")
        seed_peer(t, "a")
        t.declare_dead("b")
        assert t.counts() == {ALIVE: 2, SUSPECT: 0, LEFT: 0, DEAD: 1}
        assert [e["node"] for e in t.digest()] == ["a", "b", "self"]

    def test_endpoints_travel_in_digests(self, fake_clock):
        t = table(fake_clock, ingest=("127.0.0.1", 9000))
        other = table(fake_clock, "other")
        other.merge(t.digest())
        assert other.members["self"].ingest == ("127.0.0.1", 9000)
