"""Consistent-hash ring: determinism, movement bounds, balance."""

import pytest

from repro.fleet.ring import DEFAULT_VNODES, HashRing

pytestmark = pytest.mark.fleet


class TestDeterminism:
    def test_placement_is_order_insensitive(self):
        a = HashRing(["node-0", "node-1", "node-2"])
        b = HashRing(["node-2", "node-0", "node-1"])
        assert a.table() == b.table()

    def test_placement_is_instance_independent(self):
        nodes = ["alpha", "beta", "gamma", "delta"]
        assert HashRing(nodes).table() == HashRing(list(reversed(nodes))).table()

    def test_placement_survives_rebuild_through_churn(self):
        # Adding then removing a node restores the exact prior table.
        ring = HashRing(["node-0", "node-1", "node-2"])
        before = list(ring.table())
        ring.add("node-3")
        ring.remove("node-3")
        assert ring.table() == before

    def test_every_stage_byte_has_an_owner(self):
        ring = HashRing(["only"])
        assert ring.table() == ["only"] * 256

    def test_owner_matches_table(self):
        ring = HashRing(["node-0", "node-1", "node-2"])
        table = ring.table()
        for stage_id in (0, 1, 7, 11, 42, 255):
            assert ring.owner(stage_id) == table[stage_id]


class TestMovement:
    @pytest.mark.parametrize("n", [2, 3, 4, 7])
    def test_join_moves_bounded_fraction(self, n):
        ring = HashRing([f"node-{i}" for i in range(n)])
        before = list(ring.table())
        ring.add(f"node-{n}")
        moved = HashRing.moved(before, ring.table())
        bound = 1.5 * 256 / (n + 1)
        assert 0 < len(moved) <= bound

    def test_join_moves_stages_only_to_the_joiner(self):
        ring = HashRing(["node-0", "node-1", "node-2"])
        before = list(ring.table())
        ring.add("node-3")
        after = ring.table()
        for stage_id in HashRing.moved(before, after):
            assert after[stage_id] == "node-3"

    def test_leave_moves_only_the_leavers_stages(self):
        ring = HashRing(["node-0", "node-1", "node-2", "node-3"])
        before = list(ring.table())
        ring.remove("node-1")
        after = ring.table()
        for stage_id in HashRing.moved(before, after):
            assert before[stage_id] == "node-1"
        # And every stage the leaver owned moved somewhere.
        owned = [s for s in range(256) if before[s] == "node-1"]
        assert HashRing.moved(before, after) == owned

    def test_static_partitioner_would_move_almost_everything(self):
        # The motivating comparison: modulo placement remaps ~all
        # stages when the pool grows by one; the ring moves ~1/N.
        from repro.shard.partition import shard_table

        modulo_moved = HashRing.moved(shard_table(3), shard_table(4))
        ring = HashRing(["node-0", "node-1", "node-2"])
        before = list(ring.table())
        ring.add("node-3")
        ring_moved = HashRing.moved(before, ring.table())
        assert len(ring_moved) < len(modulo_moved) / 2


class TestBalance:
    def test_ownership_covers_every_node(self):
        ring = HashRing([f"node-{i}" for i in range(4)])
        ownership = ring.ownership()
        assert sum(ownership.values()) == 256
        for node_id, owned in ownership.items():
            # Loose smoothness bound: nobody starves, nobody hogs.
            assert 256 / (4 * 4) <= owned <= 256 * 2 / 4, ownership

    def test_more_vnodes_do_not_break_coverage(self):
        ring = HashRing(["a", "b"], vnodes=DEFAULT_VNODES * 2)
        assert sum(ring.ownership().values()) == 256


class TestLifecycle:
    def test_version_bumps_on_membership_changes(self):
        ring = HashRing()
        assert ring.version == 0
        assert ring.add("node-0")
        assert ring.version == 1
        assert not ring.add("node-0")  # idempotent, no bump
        assert ring.version == 1
        assert ring.remove("node-0")
        assert ring.version == 2
        assert not ring.remove("node-0")
        assert ring.version == 2

    def test_empty_ring_refuses_to_place(self):
        with pytest.raises(LookupError):
            HashRing().owner(42)

    def test_contains_and_len(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
