"""Shared fixtures for the analyzer-fleet suite.

Reuses the sharded suite's workload shape (multi-stage, two hosts,
flow fault on stage 7 + perf fault on stage 11 in the detection half)
so the fleet's merged event feed can be compared 1:1 against a
single-process detector — and against the sharded pool, which already
proved equivalence against the same reference.
"""

import pytest

from repro.core import OutlierModel, SAADConfig

from tests.shard.conftest import make_trace  # noqa: F401  (re-exported)


@pytest.fixture(scope="session")
def model():
    """A model trained on a fault-free multi-stage trace."""
    config = SAADConfig(window_s=60.0, min_window_tasks=8)
    return OutlierModel(config).train(make_trace(4000))


@pytest.fixture()
def detect_trace():
    """3000 tasks with a flow fault on stage 7, perf fault on stage 11."""
    return make_trace(3000, seed=13, faults=True, uid_base=10_000)


@pytest.fixture()
def fake_clock():
    """A manually advanced monotonic clock for failure-detector drills."""

    class FakeClock:
        def __init__(self):
            self.now = 100.0

        def __call__(self):
            return self.now

        def advance(self, seconds):
            self.now += seconds

    return FakeClock()
