"""Tests for the comparison baselines."""

import numpy as np
import pytest

from repro.baseline import (
    ErrorLogMonitor,
    MapReduceJob,
    PCADetector,
    ReverseMatcher,
    chunk_lines,
    count_matrix,
    extract_fields,
    parse_corpus,
    template_to_regex,
)
from repro.core import LogPointRegistry
from repro.loglib import ERROR, INFO, LoggerRepository, PatternLayout, WARN
from repro.loglib.record import LogRecord


class TestTemplateRegex:
    def test_plain_template_exact_match(self):
        pattern = template_to_regex("Closing down.")
        assert pattern.fullmatch("Closing down.")
        assert not pattern.fullmatch("Closing down now.")

    def test_placeholder_capture(self):
        pattern = template_to_regex("Receiving block blk_%s")
        match = pattern.fullmatch("Receiving block blk_1234")
        assert match
        assert match.group(1) == "1234"

    def test_numeric_placeholder(self):
        pattern = template_to_regex("WriteTo blockfile of size %d")
        assert pattern.fullmatch("WriteTo blockfile of size 65536")

    def test_multiple_placeholders(self):
        pattern = template_to_regex("GC for %s: %d ms")
        assert pattern.fullmatch("GC for ParNew: 12 ms")

    def test_regex_metacharacters_escaped(self):
        pattern = template_to_regex("progress (50%%) [stage]")
        assert pattern.fullmatch("progress (50%) [stage]")


class TestReverseMatcher:
    @pytest.fixture
    def registry(self):
        registry = LogPointRegistry()
        registry.register("Receiving block blk_%s")
        registry.register("Receiving one packet for blk_%s")
        registry.register("Closing down.")
        return registry

    def test_matches_to_correct_template(self, registry):
        matcher = ReverseMatcher(registry)
        assert matcher.match("Receiving block blk_7") == 0
        assert matcher.match("Receiving one packet for blk_7") == 1
        assert matcher.match("Closing down.") == 2

    def test_unmatched_lines_counted(self, registry):
        matcher = ReverseMatcher(registry)
        assert matcher.match("something else entirely") is None
        assert matcher.lines_unmatched == 1

    def test_parse_corpus_extracts_thread_and_lpid(self, registry):
        repo = LoggerRepository(clock=lambda: 1.0, thread_namer=lambda: "worker-1")
        from repro.loglib import MemoryAppender

        appender = MemoryAppender()
        repo.add_appender(appender)
        repo.get_logger("DataXceiver").info("Receiving block blk_%s", 9)
        pairs = parse_corpus(appender.lines, registry)
        assert pairs == [("worker-1", 0)]


class TestExtractFields:
    def test_round_trip_with_pattern_layout(self):
        record = LogRecord(
            time=3.5, level=INFO, logger_name="Memtable",
            thread_name="flush-1", template="Writing %s", args=("mem-1",),
        )
        line = PatternLayout().format(record)
        fields = extract_fields(line)
        assert fields["thread"] == "flush-1"
        assert fields["level"] == "INFO"
        assert fields["logger"] == "Memtable"
        assert fields["msg"] == "Writing mem-1"

    def test_garbage_line_returns_none(self):
        assert extract_fields("not a log line") is None


class TestMapReduce:
    def test_chunking_covers_everything(self):
        lines = [str(i) for i in range(10)]
        chunks = chunk_lines(lines, 3)
        flat = [line for chunk in chunks for line in chunk]
        assert flat == lines

    def test_wordcount_job(self):
        lines = ["a b", "b c", "c c"]
        job = MapReduceJob(
            map_fn=lambda line: [(w, 1) for w in line.split()],
            reduce_fn=lambda _k, vs: sum(vs),
        )
        assert job.run(lines) == {"a": 1, "b": 2, "c": 3}

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            MapReduceJob(lambda l: [], lambda k, v: None, workers=0)


class TestErrorLogMonitor:
    def test_alerts_on_error_and_above(self):
        repo = LoggerRepository(clock=lambda: 5.0)
        monitor = ErrorLogMonitor()
        repo.add_appender(monitor)
        log = repo.get_logger("x")
        log.info("fine")
        log.warn("hmm")
        log.error("broken %s", "badly")
        log.fatal("dead")
        assert len(monitor.alerts) == 2
        assert monitor.alerts[0].message == "broken badly"

    def test_custom_threshold(self):
        repo = LoggerRepository(clock=lambda: 1.0)
        monitor = ErrorLogMonitor(threshold=WARN)
        repo.add_appender(monitor)
        repo.get_logger("x").warn("careful")
        assert len(monitor.alerts) == 1

    def test_alert_windows(self):
        repo = LoggerRepository(clock=lambda: 15.0)
        monitor = ErrorLogMonitor()
        repo.add_appender(monitor)
        repo.get_logger("x").error("boom")
        counts = monitor.alert_windows(window_s=10.0, horizon=30.0)
        assert counts == [0, 1, 0, 0]


class TestPCADetector:
    def test_detects_unusual_count_vector(self):
        rng = np.random.default_rng(7)
        # Normal tasks: counts on columns 0-2 correlated.
        base = rng.poisson(5, size=(400, 1))
        train = np.hstack([base, base * 2, base + 1, np.zeros((400, 1))])
        train = train + rng.normal(0, 0.2, train.shape)
        detector = PCADetector().fit(train)
        normal = train[:50]
        weird = normal.copy()
        weird[:, 3] = 30.0  # activity on a never-used column
        assert detector.detect(weird).flags.mean() > 0.9
        assert detector.detect(normal).flags.mean() < 0.1

    def test_fit_requires_matrix(self):
        with pytest.raises(ValueError):
            PCADetector().fit(np.zeros(5))

    def test_detect_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PCADetector().detect(np.zeros((3, 3)))

    def test_count_matrix(self):
        rows = [{0: 2, 2: 1}, {1: 5}]
        matrix = count_matrix(rows, 3)
        assert matrix.tolist() == [[2.0, 0.0, 1.0], [0.0, 5.0, 0.0]]
