"""Fast tests for the experiment harness plumbing (no full simulations)."""

import pytest

from repro.experiments.fig9_cassandra_faults import VARIANTS, Fig9Params
from repro.experiments.fig10_hbase_hdfs import (
    MAJOR_COMPACTION_MINUTE,
    RUN_MINUTES,
    TABLE2,
    Fig10Params,
)
from repro.experiments.fig11_false_positives import TABLE3, Fig11Params
from repro.simsys import HIGH_INTENSITY, LOW_INTENSITY


class TestFig9Params:
    def test_minutes_scaling(self):
        params = Fig9Params(scale=0.5)
        assert params.minutes(10) == 300.0

    def test_variants_cover_paper_matrix(self):
        # Fig. 9 has four panels: {wal, sstable} x {error, delay}.
        assert set(VARIANTS.values()) == {
            ("wal", "error"),
            ("sstable", "error"),
            ("wal", "delay"),
            ("sstable", "delay"),
        }

    def test_quick_preset_is_smaller(self):
        assert Fig9Params.quick().scale < Fig9Params().scale

    def test_unknown_variant_rejected(self):
        from repro.experiments.fig9_cassandra_faults import run_fig9

        with pytest.raises(ValueError):
            run_fig9("z")


class TestTable2:
    def test_matches_paper_schedule(self):
        by_name = {name: (start, end, dd) for name, start, end, dd in TABLE2}
        assert by_name["low"] == (8, 16, 1)
        assert by_name["medium"] == (28, 44, 2)
        assert by_name["high-1"] == (56, 64, 4)
        assert by_name["high-2"] == (116, 130, 4)

    def test_phases_ordered_and_within_run(self):
        previous_end = 0
        for _name, start, end, _dd in TABLE2:
            assert start >= previous_end
            assert end <= RUN_MINUTES
            previous_end = end
        assert TABLE2[-1][2] < MAJOR_COMPACTION_MINUTE < RUN_MINUTES

    def test_crash_minute_inside_high1(self):
        params = Fig10Params()
        _name, start, end, _dd = TABLE2[2]
        assert start < params.crash_minute < end


class TestTable3:
    def test_matches_paper_fault_matrix(self):
        # 7 faults; the paper omits delay-MemTable-high.
        assert len(TABLE3) == 7
        assert "delay-MemTable-high" not in TABLE3
        assert TABLE3["error-WAL-low"] == ("wal", "error", LOW_INTENSITY)
        assert TABLE3["error-WAL-high"] == ("wal", "error", HIGH_INTENSITY)
        assert TABLE3["delay-MemTable-low"] == ("sstable", "delay", LOW_INTENSITY)

    def test_every_fault_targets_the_write_path(self):
        for path, mode, intensity in TABLE3.values():
            assert path in ("wal", "sstable")
            assert mode in ("error", "delay")
            assert intensity in (LOW_INTENSITY, HIGH_INTENSITY)

    def test_quick_params_shrink_runs(self):
        assert Fig11Params.quick().runs <= Fig11Params().runs
