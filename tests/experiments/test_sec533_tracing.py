"""Sec. 5.3.3 driver: injected anomaly → pinned exemplars → Chrome export.

A scaled-down run of the sec5.3.3 experiment (the benchmark-scale run
lives in ``benchmarks/test_sec533_analyzer_overhead.py``) checking the
tracing acceptance path end to end: the injected novel-signature burst
must surface as an :class:`AnomalyEvent` carrying at least one exemplar
trace, and the driver's Chrome export must load cleanly.
"""

import json

import pytest

from repro.experiments.sec533_analyzer import Sec533Params, run_sec533
from repro.tracing import parse_chrome_trace

PARAMS = Sec533Params(run_s=25.0, n_clients=3, inject_at_frac=0.8)


@pytest.fixture(scope="module")
def result():
    return run_sec533(PARAMS)


@pytest.fixture(scope="module")
def injected_lpid(result):
    archive = parse_chrome_trace(result.trace_export)
    lpids = [
        lpid
        for lpid, template in archive.templates.items()
        if "injected" in template
    ]
    assert len(lpids) == 1
    return lpids[0]


class TestInjectedAnomaly:
    def test_flow_event_flags_injected_signature(self, result, injected_lpid):
        flagged = [
            event
            for event in result.anomalies
            if any(injected_lpid in sig for sig in event.new_signatures)
        ]
        assert len(flagged) == 1
        assert flagged[0].kind == "flow"

    def test_flagged_event_carries_exemplar_traces(self, result, injected_lpid):
        (event,) = [
            event
            for event in result.anomalies
            if any(injected_lpid in sig for sig in event.new_signatures)
        ]
        assert len(event.exemplars) >= 1
        injected = [
            trace for trace in event.exemplars if injected_lpid in trace.signature
        ]
        assert injected, "the injected task itself must be pinned as evidence"
        trace = injected[0]
        assert trace.pinned
        assert injected_lpid in [e.lpid for e in trace.events()]

    def test_disabled_injection_stays_quiet(self):
        result = run_sec533(
            Sec533Params(
                run_s=25.0, n_clients=3, inject_anomaly=False
            )
        )
        archive = parse_chrome_trace(result.trace_export)
        assert not any(
            "injected" in template for template in archive.templates.values()
        )


class TestChromeExport:
    def test_export_survives_strict_json_round_trip(self, result):
        doc = json.loads(json.dumps(result.trace_export))
        assert doc == result.trace_export
        assert doc["otherData"]["format"] == "saad-trace/1"

    def test_export_parses_back_to_pinned_traces(self, result, injected_lpid):
        archive = parse_chrome_trace(result.trace_export)
        assert len(archive) >= 1
        assert all(trace.pinned for trace in archive.traces)
        assert any(injected_lpid in trace.signature for trace in archive.traces)

    def test_task_slices_carry_perfetto_conventions(self, result):
        events = result.trace_export["traceEvents"]
        tasks = [event for event in events if event.get("cat") == "task"]
        assert tasks
        for task in tasks:
            assert task["ph"] == "X"
            assert task["dur"] >= 0
            assert task["args"]["pinned"] is True
        assert any(event["ph"] == "M" for event in events)
        assert any(event["ph"] == "i" for event in events)
