"""Tests for the stage partitioner and the decode-free byte router."""

import pytest

from repro.core.synopsis import decode_batch, encode_batch
from repro.shard import route_payload, shard_for, shard_table

from .conftest import make_trace

pytestmark = pytest.mark.shard


class TestShardFor:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 3, 4, 7, 16):
            for stage in range(256):
                shard = shard_for(stage, shards)
                assert 0 <= shard < shards
                assert shard == shard_for(stage, shards)

    def test_single_shard_maps_everything_to_zero(self):
        assert {shard_for(stage, 1) for stage in range(256)} == {0}

    def test_spreads_stages_across_shards(self):
        # The Fibonacci mix must not collapse small consecutive stage
        # ids (the common case) onto one shard.
        assigned = {shard_for(stage, 4) for stage in range(16)}
        assert assigned == {0, 1, 2, 3}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_for(1, 0)
        with pytest.raises(ValueError):
            shard_for(1, -2)

    def test_table_matches_function(self):
        table = shard_table(5)
        assert len(table) == 256
        assert table == [shard_for(stage, 5) for stage in range(256)]


class TestRoutePayload:
    def test_routes_by_stage_without_decoding(self):
        synopses = make_trace(600)
        payload = encode_batch(synopses)
        table = shard_table(4)
        buckets = [[] for _ in range(4)]
        counts = route_payload(payload, 0, len(payload), table, buckets)

        assert sum(counts) == len(synopses)
        for shard, bucket in enumerate(buckets):
            assert counts[shard] == len(bucket)
            decoded = decode_batch(b"".join(bucket))
            assert decoded  # every shard sees work for this stage mix
            assert {table[s.stage_id] for s in decoded} == {shard}

    def test_slices_roundtrip_exactly(self):
        synopses = make_trace(50)
        payload = encode_batch(synopses)
        buckets = [[]]
        route_payload(payload, 0, len(payload), shard_table(1), buckets)
        assert b"".join(buckets[0]) == payload

    def test_truncated_header_rejected(self):
        synopses = make_trace(3)
        payload = encode_batch(synopses)
        # cut into the last synopsis's header: leave a few bytes of it
        end = len(payload) - len(synopses[-1].encode()) + 5
        with pytest.raises(ValueError, match="truncated synopsis header"):
            route_payload(payload, 0, end, shard_table(2), [[], []])

    def test_truncated_entries_rejected(self):
        payload = encode_batch(make_trace(1))
        with pytest.raises(ValueError, match="log point entries"):
            route_payload(payload, 0, len(payload) - 3, shard_table(2), [[], []])
