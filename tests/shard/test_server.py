"""TCP synopsis ingest: framing, reassembly, truncation accounting."""

import socket
import time

import pytest

from repro.core.stream import SynopsisCollector
from repro.core.synopsis import FRAME_HEADER, encode_frame
from repro.shard import FrameClient, ShardedAnalyzer, SynopsisServer
from repro.telemetry import MetricsRegistry

from .conftest import make_trace

pytestmark = pytest.mark.shard


def _counter(registry, name):
    for family in registry.collect():
        if family["name"] == name:
            return sum(sample["value"] for sample in family["samples"])
    raise AssertionError(f"no family {name!r}")


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached before timeout")


class TestSynopsisServer:
    def test_loopback_frames_reach_the_sink(self):
        synopses = make_trace(250)
        registry = MetricsRegistry()
        collector = SynopsisCollector(registry=registry)
        with SynopsisServer(collector.receive_frame, registry=registry) as server:
            with FrameClient(server.address) as client:
                for start in range(0, len(synopses), 50):
                    client.send(encode_frame(synopses[start : start + 50]))
                assert client.frames_sent == 5
            _wait_for(lambda: collector.count == len(synopses))

        assert [s.uid for s in collector.synopses] == [s.uid for s in synopses]
        assert _counter(registry, "shard_server_connections") == 1
        assert _counter(registry, "shard_server_frames") == 5

    def test_frame_split_across_segments_reassembles(self):
        synopses = make_trace(40)
        frame = encode_frame(synopses)
        collector = SynopsisCollector()
        with SynopsisServer(collector.receive_frame) as server:
            with socket.create_connection(server.address) as sock:
                # Dribble the frame a few bytes at a time: readexactly
                # must stitch the segments back into one frame.
                for start in range(0, len(frame), 7):
                    sock.sendall(frame[start : start + 7])
                    time.sleep(0.001)
            _wait_for(lambda: collector.count == len(synopses))
        assert collector.frames_received == 1

    def test_truncated_tail_counted_not_ingested(self):
        synopses = make_trace(30)
        frame = encode_frame(synopses)
        registry = MetricsRegistry()
        collector = SynopsisCollector(registry=registry)
        with SynopsisServer(collector.receive_frame, registry=registry) as server:
            with socket.create_connection(server.address) as sock:
                sock.sendall(frame)
                sock.sendall(frame[: len(frame) // 2])  # die mid-frame
            _wait_for(lambda: _counter(registry, "shard_server_truncated") == 1)
        assert collector.count == len(synopses)
        assert collector.frames_received == 1

    def test_oversized_length_prefix_rejected(self):
        registry = MetricsRegistry()
        seen = []
        with SynopsisServer(seen.append, registry=registry) as server:
            with socket.create_connection(server.address) as sock:
                sock.sendall(FRAME_HEADER.pack(1 << 30, 1))
            _wait_for(lambda: _counter(registry, "shard_server_truncated") == 1)
        assert seen == []

    def test_close_is_idempotent(self):
        server = SynopsisServer(lambda frame: None)
        server.start()
        server.close()
        server.close()


class TestEndToEnd:
    def test_tcp_ingest_feeds_sharded_detection(self, model, detect_trace):
        registry = MetricsRegistry()
        with ShardedAnalyzer(model, 2, registry=registry) as pool:
            with SynopsisServer(pool.dispatch_frame, registry=registry) as server:
                with FrameClient(server.address) as client:
                    for start in range(0, len(detect_trace), 400):
                        client.send(encode_frame(detect_trace[start : start + 400]))
                _wait_for(
                    lambda: _counter(registry, "shard_server_frames") * 400
                    >= len(detect_trace)
                )
            events = pool.close()
        assert events
        assert pool.anomalies == events
