"""Ingest-edge overload behavior: credit backpressure, read pausing,
priority shedding, compression negotiation, adaptive flush bounds, and
the FrameClient close contract (DESIGN.md §15, docs/OPERATIONS.md §8)."""

import threading
import time

import pytest

from repro.core.synopsis import encode_frame
from repro.shard import (
    PRIORITY_EXEMPLAR,
    PRIORITY_SAMPLED,
    AdaptiveFlush,
    FrameClient,
    LoadShedder,
    SignatureNovelty,
    SynopsisServer,
)
from repro.telemetry import MetricsRegistry

from .conftest import make_synopsis, make_trace

pytestmark = pytest.mark.shard


def _counter(registry, name):
    for family in registry.collect():
        if family["name"] == name:
            return sum(sample["value"] for sample in family["samples"])
    raise AssertionError(f"no family {name!r}")


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached before timeout")


class _Gate:
    """A sink whose deliveries block until the test opens the gate."""

    def __init__(self):
        self.open = threading.Event()
        self.delivered = []

    async def sink(self, frame):
        while not self.open.is_set():
            import asyncio

            await asyncio.sleep(0.002)
        self.delivered.append(frame)


class TestAdaptiveFlush:
    def test_grows_additively_under_target(self):
        flush = AdaptiveFlush(initial=16, min_size=8, max_size=64, step=8)
        assert flush.observe(100.0) == 24
        assert flush.observe(100.0) == 32

    def test_halves_above_target(self):
        flush = AdaptiveFlush(
            initial=64, min_size=8, max_size=64, step=8, target_rtt_us=1000.0
        )
        assert flush.observe(50_000.0) == 32
        assert flush.observe(50_000.0) == 16

    def test_bounded_under_jittery_rtt(self):
        import random

        rng = random.Random(99)
        flush = AdaptiveFlush(
            initial=32, min_size=8, max_size=128, step=16, target_rtt_us=500.0
        )
        for _ in range(500):
            # Alternate calm and spiky RTTs around the target.
            size = flush.observe(rng.choice([50.0, 400.0, 900.0, 20_000.0]))
            assert 8 <= size <= 128
            assert size == flush.size

    def test_sustained_extremes_pin_to_bounds(self):
        flush = AdaptiveFlush(initial=32, min_size=8, max_size=64, step=8)
        for _ in range(50):
            flush.observe(10.0)
        assert flush.size == 64
        for _ in range(50):
            flush.observe(1e6)
        assert flush.size == 8

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveFlush(initial=4, min_size=8, max_size=64)
        with pytest.raises(ValueError):
            AdaptiveFlush(initial=16, min_size=8, max_size=8)
        with pytest.raises(ValueError):
            AdaptiveFlush(step=0)
        with pytest.raises(ValueError):
            AdaptiveFlush(smoothing=0.0)


class TestLoadShedder:
    def test_ladder_ordering(self):
        shedder = LoadShedder(1000, 2000)
        # Below the shed watermark everything is admitted.
        assert shedder.admit(PRIORITY_SAMPLED, 100, 999)
        assert shedder.admit(PRIORITY_EXEMPLAR, 100, 999)
        # Between shed and hard: sampled dropped, exemplar kept.
        assert not shedder.admit(PRIORITY_SAMPLED, 100, 1000)
        assert shedder.admit(PRIORITY_EXEMPLAR, 100, 1999)
        # Past hard: everything dropped.
        assert not shedder.admit(PRIORITY_SAMPLED, 100, 2000)
        assert not shedder.admit(PRIORITY_EXEMPLAR, 100, 2000)
        assert shedder.drops() == {"sampled": 2, "exemplar": 1}

    def test_hard_defaults_to_twice_shed(self):
        shedder = LoadShedder(1500)
        assert shedder.hard_watermark == 3000

    def test_unknown_priority_treated_as_exemplar(self):
        shedder = LoadShedder(1000)
        assert shedder.admit(7, 100, 1500)
        assert not shedder.admit(7, 100, 2500)
        assert shedder.drops()["exemplar"] == 1

    def test_validates_watermarks(self):
        with pytest.raises(ValueError):
            LoadShedder(0)
        with pytest.raises(ValueError):
            LoadShedder(1000, 999)


class TestSignatureNovelty:
    def test_trained_signature_is_sampled(self, model):
        novelty = SignatureNovelty.from_model(model)
        frame = encode_frame(make_trace(12))
        assert novelty.frame_priority(frame) == PRIORITY_SAMPLED

    def test_novel_signature_is_exemplar(self, model):
        novelty = SignatureNovelty.from_model(model)
        rare = make_synopsis(1, 0, 1, 0.0, 0.01, (1, 2, 4, 65_000))
        frame = encode_frame(make_trace(6) + [rare])
        assert novelty.frame_priority(frame) == PRIORITY_EXEMPLAR

    def test_undecodable_frame_is_exemplar(self, model):
        novelty = SignatureNovelty.from_model(model)
        assert novelty.frame_priority(b"\xff" * 40) == PRIORITY_EXEMPLAR


class TestBackpressure:
    def test_reads_pause_at_high_watermark_and_resume(self):
        frame = encode_frame(make_trace(60))
        gate = _Gate()
        registry = MetricsRegistry()
        server = SynopsisServer(
            gate.sink,
            registry=registry,
            credit_window=1 << 22,  # credit never the limiter here
            high_watermark=2 * len(frame),
            low_watermark=len(frame) // 2,
        )
        with server, FrameClient(server.address, registry=registry) as client:
            for _ in range(8):
                client.send(frame)
            # With the sink gated, the reader must park at the high
            # watermark: backlog stays bounded instead of absorbing all
            # eight frames.
            _wait_for(lambda: _counter(registry, "server_reads_paused") >= 1)
            assert server.pending_bytes <= 3 * len(frame)
            gate.open.set()
            _wait_for(lambda: len(gate.delivered) == 8)
            client.wait_acked()
        assert server.pending_bytes == 0
        assert gate.delivered == [frame] * 8
        assert _counter(registry, "server_frames_delivered") == 8

    def test_send_blocks_until_credit_regranted(self):
        frame = encode_frame(make_trace(40))
        gate = _Gate()
        registry = MetricsRegistry()
        server = SynopsisServer(
            gate.sink,
            registry=registry,
            credit_window=len(frame) + 32,  # room for ~one envelope
            high_watermark=1 << 22,
        )
        with server, FrameClient(server.address, registry=registry) as client:
            done = threading.Event()

            def send_three():
                for _ in range(3):
                    client.send(frame)
                done.set()

            sender = threading.Thread(target=send_three, daemon=True)
            sender.start()
            # Gated sink -> no acks -> the second send must stall.
            time.sleep(0.3)
            assert not done.is_set()
            gate.open.set()
            sender.join(timeout=5)
            assert done.is_set()
            _wait_for(lambda: len(gate.delivered) == 3)
        assert _counter(registry, "client_credit_stalls") >= 1
        assert _counter(registry, "server_credits_granted") > 0


class TestShedding:
    def test_sampled_shed_before_exemplar(self):
        frame = encode_frame(make_trace(40))
        gate = _Gate()
        registry = MetricsRegistry()
        shedder = LoadShedder(2 * len(frame), 1 << 22, registry=registry)
        server = SynopsisServer(
            gate.sink,
            registry=registry,
            credit_window=1 << 22,
            high_watermark=1 << 22,  # never pause: shedding is the relief
            shedder=shedder,
        )
        with server, FrameClient(server.address, registry=registry) as client:
            for _ in range(4):
                client.send(frame, priority=PRIORITY_SAMPLED)
            _wait_for(lambda: server.pending_bytes >= 2 * len(frame))
            # Backlog now sits at the shed watermark: sampled frames are
            # dropped (but still acked), exemplar-bearing ones admitted.
            for _ in range(3):
                client.send(frame, priority=PRIORITY_SAMPLED)
            for _ in range(2):
                client.send(frame, priority=PRIORITY_EXEMPLAR)
            _wait_for(lambda: shedder.drops()["sampled"] >= 3)
            assert shedder.drops()["exemplar"] == 0
            gate.open.set()
            client.wait_acked()
            _wait_for(lambda: len(gate.delivered) == 9 - shedder.drops()["sampled"])
        dropped = _counter(registry, "shed_frames_dropped")
        assert dropped == shedder.drops()["sampled"]
        assert _counter(registry, "shed_bytes_dropped") > 0
        assert (
            _counter(registry, "server_frames_delivered")
            == _counter(registry, "shard_server_frames") - dropped
        )


class TestCompression:
    def test_negotiated_compression_round_trips(self):
        frame = encode_frame(make_trace(200))
        registry = MetricsRegistry()
        delivered = []
        with SynopsisServer(delivered.append, registry=registry) as server:
            with FrameClient(
                server.address, registry=registry, compression=True
            ) as client:
                assert client.compression
                client.send(frame)
                client.wait_acked()
                assert client.bytes_sent < len(frame)  # it actually shrank
            _wait_for(lambda: len(delivered) == 1)
        assert delivered[0] == frame
        assert _counter(registry, "client_frames_compressed") == 1
        assert _counter(registry, "server_frames_decompressed") == 1
        assert _counter(registry, "client_compression_saved_bytes") > 0

    def test_server_declines_falls_back_to_uncompressed(self):
        frame = encode_frame(make_trace(200))
        registry = MetricsRegistry()
        delivered = []
        server = SynopsisServer(delivered.append, registry=registry, compression=False)
        with server:
            with FrameClient(
                server.address, registry=registry, compression=True
            ) as client:
                assert not client.compression
                client.send(frame)
                client.wait_acked()
            _wait_for(lambda: len(delivered) == 1)
        assert delivered[0] == frame
        assert _counter(registry, "client_frames_compressed") == 0
        assert _counter(registry, "server_frames_decompressed") == 0


class TestAdaptiveFlushWiring:
    def test_loopback_acks_tune_flush_size(self):
        frame = encode_frame(make_trace(30))
        sizes = []
        delivered = []
        with SynopsisServer(delivered.append) as server:
            client = FrameClient(
                server.address,
                adaptive=AdaptiveFlush(initial=8, min_size=8, max_size=64, step=8),
                on_flush_size=sizes.append,
            )
            with client:
                for _ in range(5):
                    client.send(frame)
                client.wait_acked()
                # Loopback RTT sits far under the 2 ms target: additive
                # growth, every change reported to the callback.
                assert client.rtt_us > 0
                assert client.flush_size > 8
                assert sizes
                assert sizes[-1] == client.flush_size
        assert len(delivered) == 5


class TestFrameClientCloseContract:
    def test_close_is_idempotent(self):
        with SynopsisServer(lambda frame: None) as server:
            client = FrameClient(server.address)
            client.close()
            client.close()
            assert client.closed

    def test_send_after_close_raises_runtime_error(self):
        with SynopsisServer(lambda frame: None) as server:
            client = FrameClient(server.address)
            client.close()
            with pytest.raises(RuntimeError, match="close"):
                client.send(encode_frame(make_trace(2)))

    def test_legacy_client_close_contract_matches(self):
        with SynopsisServer(lambda frame: None) as server:
            client = FrameClient(server.address, negotiate=False)
            client.close()
            client.close()
            with pytest.raises(RuntimeError, match="close"):
                client.send(b"\x00")


class TestLegacyInterop:
    def test_unnegotiated_client_speaks_raw_frames(self):
        synopses = make_trace(80)
        registry = MetricsRegistry()
        delivered = []
        with SynopsisServer(delivered.append, registry=registry) as server:
            with FrameClient(server.address, registry=registry, negotiate=False) as c:
                assert c.credit == 0
                c.send(encode_frame(synopses))
            _wait_for(lambda: len(delivered) == 1)
        assert delivered[0] == encode_frame(synopses)
        assert _counter(registry, "server_credits_granted") == 0

    def test_legacy_frames_classified_by_server_model(self, model):
        registry = MetricsRegistry()
        novelty = SignatureNovelty.from_model(model)
        frame = encode_frame(make_trace(40))
        rare = make_synopsis(1, 0, 1, 0.0, 0.01, (1, 2, 4, 65_000))
        novel_frame = encode_frame([rare])
        gate = _Gate()
        shedder = LoadShedder(2 * len(frame), 1 << 22, registry=registry)
        server = SynopsisServer(
            gate.sink,
            registry=registry,
            high_watermark=1 << 22,
            shedder=shedder,
            classify=novelty.frame_priority,
        )
        with server, FrameClient(server.address, negotiate=False) as client:
            for _ in range(4):
                client.send(frame)  # routine traffic fills the backlog
            _wait_for(lambda: server.pending_bytes >= 2 * len(frame))
            for _ in range(3):
                client.send(frame)  # classified sampled -> shed
            client.send(novel_frame)  # classified exemplar -> admitted
            _wait_for(lambda: shedder.drops()["sampled"] >= 3)
            gate.open.set()
            _wait_for(lambda: novel_frame in gate.delivered)
        assert shedder.drops()["exemplar"] == 0


class TestFacadeOverloadWiring:
    def test_listen_knobs_and_compressed_connect_smoke(self):
        """Fast bounded-overload smoke (the CI leg, not the soak)."""
        from repro.core import SAAD, SAADConfig

        config = SAADConfig(window_s=60.0, min_window_tasks=8)
        saad = SAAD(config)
        address = saad.listen(
            credit_window=1 << 16,
            high_watermark=1 << 18,
            low_watermark=1 << 17,
            shed_watermark=1 << 17,
        )
        clock = [0.0]
        node = saad.add_node(
            "edge", clock=lambda: clock[0], wire_format=True, wire_flush_size=16
        )
        saad.stages.register("read")
        lp = saad.logpoints.register("step").lpid
        node.connect(address, compression=True)
        log = node.logger("demo")
        for i in range(200):
            clock[0] = i * 0.01
            node.set_context("read")
            log.info("step %s", i, lpid=lp)
        node.end_task()
        node.stream.flush_wire()
        node._client.wait_acked()
        _wait_for(lambda: saad.collector.count >= 199)
        saad.close()
        names = saad.registry.names()
        for name in (
            "server_credits_granted",
            "server_reads_paused",
            "shed_frames_dropped",
            "client_flush_size",
            "client_rtt_us",
            "ingest_watermark_bytes",
        ):
            assert name in names
