"""Cross-process determinism: N shards emit the single-process event set.

Every stage's detector state lives wholly in one shard, so partitioning
must not change *what* is detected — only where.  These tests run the
same faulted trace through a single-process detector and through pools
of different widths and require the order-normalized event sets to be
identical.
"""

import pytest

from repro.core import AnomalyDetector
from repro.shard import EVENT_ORDER, ShardedAnalyzer

from .conftest import make_trace

pytestmark = pytest.mark.shard


def _single_process_events(model, trace):
    detector = AnomalyDetector(model)
    for synopsis in trace:
        detector.observe(synopsis)
    detector.flush()
    return sorted(detector.anomalies, key=EVENT_ORDER)


@pytest.mark.parametrize("shards", [1, 4])
def test_sharded_matches_single_process(model, detect_trace, shards):
    expected = _single_process_events(model, detect_trace)
    assert expected, "fixture trace must actually trip the detector"

    with ShardedAnalyzer(model, shards) as pool:
        pool.dispatch(detect_trace)
        pool.close()

    assert pool.anomalies == expected
    assert pool.anomalies == sorted(pool.anomalies, key=EVENT_ORDER)


def test_one_vs_four_shards_identical(model, detect_trace):
    results = []
    for shards in (1, 4):
        with ShardedAnalyzer(model, shards) as pool:
            pool.dispatch(detect_trace)
            pool.close()
            results.append(pool.anomalies)
    assert results[0] == results[1]


def test_spawn_start_method_matches(model):
    # Spawn pays ~1s of interpreter startup per worker, so keep the
    # trace small; the point is protocol picklability, not throughput.
    trace = make_trace(600, seed=13, faults=True, uid_base=50_000)
    expected = _single_process_events(model, trace)
    with ShardedAnalyzer(model, 2, start_method="spawn") as pool:
        pool.dispatch(trace)
        pool.close()
    assert pool.anomalies == expected
