"""Shared fixtures for the sharded-analyzer suite.

The workload spans several stages on two hosts so a multi-shard pool
actually partitions work, with a flow fault (novel signature burst) on
one stage and a performance fault (5x slowdown) on another in the
detection half.
"""

import random

import pytest

from repro.core import OutlierModel, SAADConfig, TaskSynopsis

STAGES = (1, 2, 3, 7, 11, 42)


def make_synopsis(stage, host, uid, start, duration, lps):
    return TaskSynopsis(
        host_id=host,
        stage_id=stage,
        uid=uid,
        start_time=start,
        duration=duration,
        log_points={lp: 1 for lp in lps},
    )


def make_trace(tasks, *, seed=7, faults=False, uid_base=0):
    """A deterministic multi-stage trace; ``faults`` plants anomalies."""
    rng = random.Random(seed)
    out = []
    for i in range(tasks):
        stage = STAGES[i % len(STAGES)]
        lps = (stage, stage + 1, stage + 3)
        duration = 0.01 * rng.lognormvariate(0, 0.3)
        if faults and i > tasks // 2:
            if stage == 7 and i % 2:  # novel signature burst
                lps = (stage, stage + 1, stage + 2, stage + 3)
            elif stage == 11:  # sustained slowdown
                duration *= 5
        out.append(
            make_synopsis(stage, i % 2, uid_base + i, i * 0.05, duration, lps)
        )
    return out


@pytest.fixture(scope="session")
def model():
    """A model trained on a fault-free multi-stage trace."""
    config = SAADConfig(window_s=60.0, min_window_tasks=8)
    return OutlierModel(config).train(make_trace(4000))


@pytest.fixture()
def detect_trace():
    """3000 tasks with a flow fault on stage 7, perf fault on stage 11."""
    return make_trace(3000, seed=13, faults=True, uid_base=10_000)
