"""Coordinator behaviour: dispatch paths, accounting, lifecycle, errors."""

import pytest

from repro.core.synopsis import encode_frame
from repro.shard import ShardWorkerError, ShardedAnalyzer
from repro.telemetry import MetricsRegistry
from repro.tracing import Tracer, TaskTrace
from repro.tracing.spans import trace_from_synopsis

pytestmark = pytest.mark.shard


def _families(registry):
    return {family["name"]: family for family in registry.collect()}


def _sample_total(family):
    return sum(sample["value"] for sample in family["samples"])


class TestDispatchPaths:
    def test_wire_path_matches_object_path(self, model, detect_trace):
        with ShardedAnalyzer(model, 3) as object_pool:
            object_pool.dispatch(detect_trace)
            object_pool.close()

        with ShardedAnalyzer(model, 3) as wire_pool:
            for start in range(0, len(detect_trace), 500):
                wire_pool.dispatch_frame(encode_frame(detect_trace[start : start + 500]))
            wire_pool.close()

        assert object_pool.anomalies
        assert wire_pool.anomalies == object_pool.anomalies

    def test_dispatch_frame_rejects_truncated(self, model, detect_trace):
        frame = encode_frame(detect_trace[:10])
        with ShardedAnalyzer(model, 2) as pool:
            with pytest.raises(ValueError, match="truncated frame payload"):
                pool.dispatch_frame(frame[:-4])
            with pytest.raises(ValueError, match="truncated frame header"):
                pool.dispatch_frame(frame, offset=len(frame) - 3)

    def test_flush_returns_incremental_events(self, model, detect_trace):
        with ShardedAnalyzer(model, 2) as pool:
            pool.dispatch(detect_trace)
            first = pool.flush()
            rest = pool.close()
        assert first
        assert pool.anomalies == first + rest


class TestAccounting:
    def test_worker_stats_cover_whole_trace(self, model, detect_trace):
        with ShardedAnalyzer(model, 4) as pool:
            pool.dispatch(detect_trace)
            pool.close()
        assert sorted(pool.worker_stats) == [0, 1, 2, 3]
        assert sum(s["tasks"] for s in pool.worker_stats.values()) == len(
            detect_trace
        )
        assert all(s["busy_seconds"] >= 0.0 for s in pool.worker_stats.values())

    def test_shard_metrics_registered_and_counted(self, model, detect_trace):
        registry = MetricsRegistry()
        with ShardedAnalyzer(model, 2, registry=registry) as pool:
            pool.dispatch(detect_trace)
            pool.close()

        families = _families(registry)
        for name in (
            "shard_workers",
            "shard_synopses_dispatched",
            "shard_frames_dispatched",
            "shard_bytes_dispatched",
            "shard_events_merged",
            "shard_exemplars_pinned",
            "shard_worker_tasks",
            "shard_worker_windows_closed",
            "shard_worker_busy_seconds",
        ):
            assert name in families, name

        assert _sample_total(families["shard_synopses_dispatched"]) == len(
            detect_trace
        )
        assert _sample_total(families["shard_worker_tasks"]) == len(detect_trace)
        assert _sample_total(families["shard_events_merged"]) == len(pool.anomalies)
        # pool is closed: the workers gauge must have come back down
        assert _sample_total(families["shard_workers"]) == 0

    def test_aggregate_telemetry_sums_worker_counters(self, model, detect_trace):
        with ShardedAnalyzer(model, 3) as pool:
            pool.dispatch(detect_trace)
            pool.close()
        merged = {family["name"]: family for family in pool.aggregate_telemetry()}
        assert "detector_tasks_observed" in merged
        assert _sample_total(merged["detector_tasks_observed"]) == len(detect_trace)


class TestLifecycle:
    def test_constructor_validates_shards(self, model):
        with pytest.raises(ValueError):
            ShardedAnalyzer(model, 0)

    def test_close_is_idempotent_and_seals(self, model, detect_trace):
        pool = ShardedAnalyzer(model, 2)
        pool.dispatch(detect_trace)
        first = pool.close()
        assert first == pool.anomalies
        assert pool.close() == []
        with pytest.raises(ValueError, match="closed"):
            pool.dispatch(detect_trace[:1])
        with pytest.raises(ValueError, match="closed"):
            pool.flush()

    def test_context_manager_closes(self, model, detect_trace):
        with ShardedAnalyzer(model, 2) as pool:
            pool.dispatch(detect_trace)
        assert pool.closed
        assert pool.anomalies

    def test_worker_failure_surfaces(self, model):
        pool = ShardedAnalyzer(model, 2)
        try:
            # Bypass the coordinator's validation to simulate a worker
            # hitting corrupt bytes: it must answer with an error
            # message that flush() turns into ShardWorkerError.
            pool._conns[0].send(("frames", b"\xff" * 40))
            with pytest.raises(ShardWorkerError, match="shard 0"):
                pool.flush()
        finally:
            pool.closed = True
            pool._terminate()


class TestExemplarRouting:
    def test_events_carry_real_traces(self, model, detect_trace):
        tracer = Tracer(capacity=8192, retained_capacity=2048)
        for synopsis in detect_trace:
            tracer.record(trace_from_synopsis(synopsis, []))

        registry = MetricsRegistry()
        with ShardedAnalyzer(model, 2, registry=registry, tracer=tracer) as pool:
            pool.dispatch(detect_trace)
            pool.close()

        assert pool.anomalies
        exemplars = [t for event in pool.anomalies for t in event.exemplars]
        assert exemplars, "tracer-enabled run must resolve exemplars"
        assert all(isinstance(t, TaskTrace) for t in exemplars)
        assert all(t.pinned for t in exemplars)

        families = _families(registry)
        assert _sample_total(families["shard_exemplars_pinned"]) == len(exemplars)

    def test_without_tracer_exemplars_stay_empty(self, model, detect_trace):
        with ShardedAnalyzer(model, 2) as pool:
            pool.dispatch(detect_trace)
            pool.close()
        assert pool.anomalies
        assert all(event.exemplars == () for event in pool.anomalies)
