"""SAAD facade wiring: ``shards=N`` detection and TCP listen/connect."""

import time

import pytest

from repro.core import SAAD, SAADConfig
from repro.core.synopsis import encode_frame
from repro.shard import FrameClient

from .conftest import make_trace

pytestmark = pytest.mark.shard


def config():
    return SAADConfig(window_s=60.0, min_window_tasks=8)


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached before timeout")


class TestShardedFacade:
    def test_detect_routes_through_pool(self, detect_trace):
        train = make_trace(4000)

        single = SAAD(config())
        single.train(train)
        expected = single.detect(detect_trace)
        assert expected

        sharded = SAAD(config(), shards=3)
        sharded.train(train)
        assert sharded.detect(detect_trace) == expected

    def test_shard_requires_training_and_width(self):
        saad = SAAD(config())
        with pytest.raises(RuntimeError, match="train"):
            saad.shard(shards=2)
        saad.train(make_trace(2000))
        with pytest.raises(ValueError, match="shards"):
            saad.shard()
        with pytest.raises(ValueError):
            SAAD(config(), shards=0)

    def test_shard_pool_shares_registry(self, detect_trace):
        saad = SAAD(config(), shards=2)
        saad.train(make_trace(4000))
        saad.detect(detect_trace)
        assert "shard_workers" in set(saad.registry.names())


class TestListen:
    def test_listen_accepts_frames_into_collector(self):
        synopses = make_trace(120)
        saad = SAAD(config(), listen=("127.0.0.1", 0))
        try:
            assert saad.address is not None
            before = saad.collector.count
            with FrameClient(saad.address) as client:
                client.send(encode_frame(synopses))
            _wait_for(lambda: saad.collector.count == before + len(synopses))
        finally:
            saad.close()
        assert saad.address is None

    def test_node_connect_ships_frames_to_remote_analyzer(self):
        analyzer = SAAD(config(), listen=("127.0.0.1", 0))
        producer = SAAD(config())
        node = producer.add_node("edge", wire_format=True)
        try:
            node.connect(analyzer.address)
            for synopsis in make_trace(50):
                node.stream.sink(synopsis)
            node.stream.flush_wire()
            _wait_for(lambda: analyzer.collector.count >= 50)
        finally:
            producer.close()
            analyzer.close()

    def test_connect_requires_wire_format(self):
        analyzer = SAAD(config(), listen=("127.0.0.1", 0))
        producer = SAAD(config())
        node = producer.add_node("plain")
        try:
            with pytest.raises(ValueError, match="wire_format"):
                node.connect(analyzer.address)
        finally:
            analyzer.close()
