"""Fleet observability over the ingest socket: TELEMETRY federation,
HEALTH probes, and the paused-connection teardown regression
(docs/OPERATIONS.md §9)."""

import socket
import struct
import threading
import time

import pytest

from repro.core.synopsis import encode_frame
from repro.shard import FrameClient, SynopsisServer
from repro.shard.server import _ENVELOPE, _ENV_TELEMETRY
from repro.telemetry import MetricsRegistry

from .conftest import make_trace

pytestmark = pytest.mark.shard


def _counter(registry, name):
    for family in registry.collect():
        if family["name"] == name:
            return sum(sample["value"] for sample in family["samples"])
    raise AssertionError(f"no family {name!r}")


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached before timeout")


def _node_samples(registry, name):
    """Samples of family ``name`` that carry a ``node`` label."""
    for family in registry.collect():
        if family["name"] == name:
            return [s for s in family["samples"] if "node" in s["labels"]]
    return []


class _Gate:
    """A sink whose deliveries block until the test opens the gate."""

    def __init__(self):
        self.open = threading.Event()
        self.delivered = []

    async def sink(self, frame):
        import asyncio

        while not self.open.is_set():
            await asyncio.sleep(0.002)
        self.delivered.append(frame)


class TestTelemetryFederationOverTheWire:
    def test_remote_counters_land_under_node_label(self):
        server_registry = MetricsRegistry()
        node_registry = MetricsRegistry()
        node_registry.counter("tracker_tasks_started", "tasks").inc(7)
        server = SynopsisServer(
            lambda frame: None,
            registry=server_registry,
            federation=server_registry.federation(),
        )
        with server, FrameClient(
            server.address,
            registry=node_registry,
            node="edge-1",
            telemetry_source=node_registry,
        ) as client:
            assert client.server_version >= 2
            client.send_telemetry()
            _wait_for(
                lambda: _counter(server_registry, "server_telemetry_snapshots") >= 1
            )
            _wait_for(
                lambda: _node_samples(server_registry, "tracker_tasks_started") != []
            )
            samples = _node_samples(server_registry, "tracker_tasks_started")
            assert samples[0]["labels"]["node"] == "edge-1"
            assert samples[0]["value"] == 7
            # The client's own wire metrics federate too, by peer + node.
            _wait_for(
                lambda: _node_samples(server_registry, "client_telemetry_pushes")
                != []
            )
        assert server_registry.federation().nodes() == ("edge-1",)

    def test_piggyback_cadence_on_send(self):
        server_registry = MetricsRegistry()
        node_registry = MetricsRegistry()
        frame = encode_frame(make_trace(10))
        server = SynopsisServer(
            lambda frame: None,
            registry=server_registry,
            federation=server_registry.federation(),
        )
        with server, FrameClient(
            server.address,
            registry=node_registry,
            node="edge-2",
            telemetry_source=node_registry,
            telemetry_interval_s=0.0,  # every send piggybacks
        ) as client:
            for _ in range(3):
                client.send(frame)
            client.wait_acked()
            _wait_for(
                lambda: _counter(server_registry, "server_telemetry_snapshots") >= 3
            )
            assert _counter(node_registry, "client_telemetry_pushes") >= 3

    def test_interval_none_disables_piggyback(self):
        server_registry = MetricsRegistry()
        node_registry = MetricsRegistry()
        frame = encode_frame(make_trace(10))
        server = SynopsisServer(
            lambda frame: None,
            registry=server_registry,
            federation=server_registry.federation(),
        )
        with server, FrameClient(
            server.address,
            registry=node_registry,
            telemetry_source=node_registry,
            telemetry_interval_s=None,
        ) as client:
            client.send(frame)
            client.wait_acked()
        assert _counter(server_registry, "server_telemetry_snapshots") == 0

    def test_compressed_snapshot_round_trips(self):
        server_registry = MetricsRegistry()
        node_registry = MetricsRegistry()
        # A snapshot bulky enough that zlib shrinks it.
        family = node_registry.counter(
            "tracker_tasks_started", "tasks", labels=("stage",)
        )
        for stage in range(64):
            family.labels(stage=str(stage)).inc(stage)
        server = SynopsisServer(
            lambda frame: None,
            registry=server_registry,
            federation=server_registry.federation(),
            compression=True,
        )
        with server, FrameClient(
            server.address,
            registry=node_registry,
            compression=True,
            node="edge-z",
            telemetry_source=node_registry,
        ) as client:
            assert client.compression
            client.send_telemetry()
            _wait_for(
                lambda: _node_samples(server_registry, "tracker_tasks_started") != []
            )
        samples = _node_samples(server_registry, "tracker_tasks_started")
        assert len(samples) == 64

    def test_undecodable_snapshot_counted_not_fatal(self):
        server_registry = MetricsRegistry()
        gate = _Gate()
        gate.open.set()
        frame = encode_frame(make_trace(10))
        server = SynopsisServer(
            gate.sink,
            registry=server_registry,
            federation=server_registry.federation(),
        )
        with server, FrameClient(server.address) as client:
            junk = b"this is not json"
            client._sock.sendall(_ENVELOPE.pack(_ENV_TELEMETRY, 0, len(junk)) + junk)
            _wait_for(
                lambda: _counter(server_registry, "server_telemetry_rejected") >= 1
            )
            # The connection survives: the data path still delivers.
            client.send(frame)
            client.wait_acked()
            _wait_for(lambda: len(gate.delivered) == 1)
        assert server_registry.federation().nodes() == ()

    def test_malformed_families_rejected_at_absorb(self):
        server_registry = MetricsRegistry()
        server = SynopsisServer(
            lambda frame: None,
            registry=server_registry,
            federation=server_registry.federation(),
        )
        with server, FrameClient(server.address, node="evil") as client:
            client.send_telemetry(families=[{"name": "x"}])  # not wire form
            _wait_for(
                lambda: _counter(server_registry, "server_telemetry_rejected") >= 1
            )
        assert server_registry.federation().nodes() == ()

    def test_send_telemetry_contract_errors(self):
        server = SynopsisServer(lambda frame: None)
        with server:
            with FrameClient(server.address) as client:
                with pytest.raises(ValueError):
                    client.send_telemetry()  # no source, no families
            with FrameClient(server.address, negotiate=False) as legacy:
                with pytest.raises(RuntimeError):
                    legacy.send_telemetry(families=[])
                with pytest.raises(RuntimeError):
                    legacy.health()


class TestHealthProbes:
    def test_probe_round_trips_engine_report(self):
        report = {"state": "warn", "alerts": [{"rule": "ingest_backlog"}]}
        registry = MetricsRegistry()
        server = SynopsisServer(
            lambda frame: None, registry=registry, health=lambda: dict(report)
        )
        with server, FrameClient(server.address) as client:
            assert client.health(timeout=5.0) == report
        assert _counter(registry, "server_health_probes") == 1

    def test_probe_without_engine_answers_unknown(self):
        server = SynopsisServer(lambda frame: None)
        with server, FrameClient(server.address) as client:
            report = client.health(timeout=5.0)
        assert report["state"] == "unknown"

    def test_probe_with_raising_engine_answers_unknown(self):
        def boom():
            raise RuntimeError("engine exploded")

        server = SynopsisServer(lambda frame: None, health=boom)
        with server, FrameClient(server.address) as client:
            report = client.health(timeout=5.0)
        assert report["state"] == "unknown"

    def test_probe_interleaved_with_data(self):
        gate = _Gate()
        gate.open.set()
        frame = encode_frame(make_trace(20))
        server = SynopsisServer(gate.sink, health=lambda: {"state": "ok"})
        with server, FrameClient(server.address) as client:
            for _ in range(3):
                client.send(frame)
            assert client.health(timeout=5.0)["state"] == "ok"
            for _ in range(3):
                client.send(frame)
            client.wait_acked()
            _wait_for(lambda: len(gate.delivered) == 6)


class TestPausedConnectionTeardown:
    def test_abrupt_disconnect_while_paused_clears_gauges(self):
        """Regression: a peer that dies while its reads are parked at
        the high watermark must not leave ``server_paused_connections``
        stuck, and its admitted frames must still drain."""
        frame = encode_frame(make_trace(60))
        gate = _Gate()
        registry = MetricsRegistry()
        server = SynopsisServer(
            gate.sink,
            registry=registry,
            credit_window=1 << 22,
            high_watermark=2 * len(frame),
            low_watermark=len(frame) // 2,
        )
        with server:
            client = FrameClient(server.address, registry=registry)
            for _ in range(8):
                client.send(frame)
            _wait_for(
                lambda: _counter(registry, "server_paused_connections") >= 1
            )
            # Abrupt death: SO_LINGER 0 makes close() send RST, the
            # worst-case teardown (no BYE, no FIN handshake).
            client._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            client._sock.close()
            client._closed = True
            # The sink is still gated — the pause must end anyway.
            _wait_for(
                lambda: _counter(registry, "server_paused_connections") == 0
            )
            gate.open.set()
            _wait_for(lambda: server.pending_bytes == 0)
        assert len(gate.delivered) >= 1

    def test_clean_path_still_pauses_and_resumes(self):
        """The liveness-aware pause must not change healthy behavior."""
        frame = encode_frame(make_trace(60))
        gate = _Gate()
        registry = MetricsRegistry()
        server = SynopsisServer(
            gate.sink,
            registry=registry,
            credit_window=1 << 22,
            high_watermark=2 * len(frame),
            low_watermark=len(frame) // 2,
        )
        with server, FrameClient(server.address, registry=registry) as client:
            for _ in range(8):
                client.send(frame)
            _wait_for(lambda: _counter(registry, "server_paused_connections") >= 1)
            gate.open.set()
            _wait_for(lambda: len(gate.delivered) == 8)
            client.wait_acked()
            assert _counter(registry, "server_paused_connections") == 0
        assert server.pending_bytes == 0
