"""Tests for the repro.tracing span layer."""
