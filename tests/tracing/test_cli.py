"""``python -m repro trace`` CLI behavior (demo capture kept small via a
saved-export fixture wherever possible — the live demo run is exercised
once)."""

import json

import pytest

from repro.tracing import StageSpan, TaskTrace, TraceEvent, write_chrome_trace
from repro.tracing.cli import main


@pytest.fixture()
def export_path(tmp_path):
    traces = []
    for uid in range(3):
        start = 10.0 * uid
        events = (TraceEvent(1, start), TraceEvent(2, start + 0.2))
        span = StageSpan(stage_id=0, start_time=start, end_time=start + 0.2,
                         events=events)
        traces.append(
            TaskTrace(host_id=0, uid=uid, start_time=start, end_time=start + 0.2,
                      spans=(span,), signature=frozenset({1, 2}),
                      pinned=(uid == 2))
        )
    path = str(tmp_path / "saved.json")
    write_chrome_trace(
        traces, path,
        stage_names={0: "flush"},
        host_names={0: "alpha"},
        templates={1: "begin {}", 2: "end {}"},
    )
    return path


class TestSavedFile:
    def test_rerender(self, export_path, capsys):
        assert main([export_path]) == 0
        out = capsys.readouterr().out
        assert "3 traces captured" in out
        assert "(1 pinned to anomalies)" in out
        assert "stage flush" in out
        assert "begin {}" in out

    def test_anomalies_only(self, export_path, capsys):
        assert main([export_path, "--anomalies-only"]) == 0
        out = capsys.readouterr().out
        assert "showing pinned only" in out
        assert out.count("task ") == 1
        assert "[pinned]" in out

    def test_limit(self, export_path, capsys):
        assert main([export_path, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "showing first 1" in out
        assert out.count("task ") == 1

    def test_reexport(self, export_path, tmp_path, capsys):
        out_path = str(tmp_path / "again.json")
        assert main([export_path, "--export", "chrome", "--out", out_path]) == 0
        doc = json.loads(open(out_path, encoding="utf-8").read())
        assert len([e for e in doc["traceEvents"] if e.get("cat") == "task"]) == 3

    def test_unreadable_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main([missing]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]", encoding="utf-8")
        assert main([str(path)]) == 1


class TestUsageErrors:
    def test_unknown_option(self, capsys):
        assert main(["--frobnicate"]) == 2

    def test_unknown_export_format(self, capsys):
        assert main(["--export", "pprof"]) == 2

    def test_missing_option_values(self, capsys):
        assert main(["--export"]) == 2
        assert main(["--out"]) == 2
        assert main(["--limit"]) == 2
        assert main(["--limit", "many"]) == 2
        assert main(["--limit", "-3"]) == 2

    def test_two_files_rejected(self, capsys):
        assert main(["a.json", "b.json"]) == 2

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "perfetto" in capsys.readouterr().out.lower()


@pytest.mark.slow
class TestLiveDemo:
    def test_demo_export_and_pinned_traces(self, tmp_path, capsys):
        out_path = str(tmp_path / "TRACE.json")
        assert main(["--export", "chrome", "--out", out_path,
                     "--anomalies-only"]) == 0
        doc = json.loads(open(out_path, encoding="utf-8").read())
        tasks = [e for e in doc["traceEvents"] if e.get("cat") == "task"]
        assert tasks, "demo deployment must pin exemplar traces"
        assert all(event["args"]["pinned"] for event in tasks)
