"""Tracer admission control: rings, sampling, retention, pinning."""

import threading

import pytest

from repro.telemetry import NULL_REGISTRY, MetricsRegistry
from repro.tracing import (
    NULL_TRACER,
    NullTracer,
    StageSpan,
    TaskTrace,
    TraceEvent,
    Tracer,
    trace_from_synopsis,
)


def make_trace(uid, host_id=0, start=0.0, duration=1.0, signature=frozenset({1, 2}),
               n_events=2):
    events = tuple(
        TraceEvent(lpid, start + i * 0.1) for i, lpid in enumerate(sorted(signature))
    )[:n_events]
    span = StageSpan(stage_id=3, start_time=start, end_time=start + duration,
                     events=events)
    return TaskTrace(host_id=host_id, uid=uid, start_time=start,
                     end_time=start + duration, spans=(span,), signature=signature)


class TestAdmission:
    def test_full_rate_keeps_everything(self):
        tracer = Tracer(capacity=16, registry=NULL_REGISTRY)
        for uid in range(10):
            assert tracer.record(make_trace(uid, signature=frozenset({uid})))
        assert len(tracer) == 10

    def test_ring_eviction_is_fifo_and_bounded(self):
        tracer = Tracer(capacity=4, registry=NULL_REGISTRY)
        sig = frozenset({1})
        for uid in range(10):
            tracer.record(make_trace(uid, signature=sig))
        kept = {trace.uid for trace in tracer.traces() if not trace.retained}
        assert kept == {6, 7, 8, 9}
        assert tracer.stats.traces_evicted == 5  # 10 admitted - 4 kept - 1 retained
        assert tracer.stats.spans_dropped == 5

    def test_stride_sampling_is_deterministic(self):
        tracer = Tracer(capacity=128, sample_rate=0.25, registry=NULL_REGISTRY)
        sig = frozenset({1})
        kept = [
            uid for uid in range(100) if tracer.record(make_trace(uid, signature=sig))
        ]
        # First trace is retained (novel signature); the ordinary stream
        # then keeps exactly one in four.
        assert kept[0] == 0
        assert len(kept) == 1 + (99 // 4)
        assert tracer.stats.traces_sampled_out == 99 - (99 // 4)

    def test_zero_rate_keeps_only_retained(self):
        tracer = Tracer(sample_rate=0.0, registry=NULL_REGISTRY)
        sig = frozenset({1})
        assert tracer.record(make_trace(0, signature=sig))  # novel -> retained
        assert not tracer.record(make_trace(1, signature=sig))
        assert len(tracer) == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(retained_capacity=0)
        with pytest.raises(ValueError):
            Tracer(pinned_capacity=0)
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestRetention:
    def test_novel_signature_retained_before_model(self):
        tracer = Tracer(sample_rate=0.0, registry=NULL_REGISTRY)
        assert tracer.record(make_trace(0, signature=frozenset({1})))
        assert tracer.record(make_trace(1, signature=frozenset({2})))
        assert not tracer.record(make_trace(2, signature=frozenset({1})))
        assert tracer.stats.traces_retained == 2
        assert all(trace.retained for trace in tracer.traces())

    def test_model_drives_retention_after_set_model(self):
        class Label:
            def __init__(self, flow, perf):
                self.any_flow = flow
                self.perf_outlier = perf

        class Config:
            per_host = True

        class Model:
            config = Config()

            def classify_parts(self, stage_key, signature, duration):
                return Label(flow=99 in signature, perf=duration > 10.0)

        tracer = Tracer(sample_rate=0.0, registry=NULL_REGISTRY)
        tracer.set_model(Model())
        assert not tracer.record(make_trace(0, signature=frozenset({1})))
        assert tracer.record(make_trace(1, signature=frozenset({99})))  # flow
        assert tracer.record(make_trace(2, duration=60.0, signature=frozenset({1})))
        assert tracer.stats.traces_retained == 2

    def test_retained_ring_bounded(self):
        tracer = Tracer(retained_capacity=2, sample_rate=0.0, registry=NULL_REGISTRY)
        for uid in range(5):
            tracer.record(make_trace(uid, signature=frozenset({uid})))
        assert len(tracer) == 2


class TestPinning:
    def test_pin_moves_to_pinned_store_and_survives_eviction(self):
        tracer = Tracer(capacity=2, registry=NULL_REGISTRY)
        sig = frozenset({1})
        for uid in range(3):
            tracer.record(make_trace(uid, signature=sig))
        pinned = tracer.pin((0, 1))
        assert pinned is not None and pinned.pinned
        for uid in range(3, 20):
            tracer.record(make_trace(uid, signature=sig))
        assert tracer.get((0, 1)) is pinned
        assert tracer.pinned_traces() == [pinned]

    def test_pin_is_idempotent(self):
        tracer = Tracer(registry=NULL_REGISTRY)
        tracer.record(make_trace(0))
        first = tracer.pin((0, 0))
        assert tracer.pin((0, 0)) is first
        assert tracer.stats.traces_pinned == 1

    def test_pin_unknown_key_returns_none(self):
        tracer = Tracer(registry=NULL_REGISTRY)
        assert tracer.pin((0, 404)) is None

    def test_get_checks_all_stores(self):
        tracer = Tracer(sample_rate=1.0, registry=NULL_REGISTRY)
        tracer.record(make_trace(0, signature=frozenset({1})))   # retained (novel)
        tracer.record(make_trace(1, signature=frozenset({1})))   # sampled ring
        tracer.pin((0, 0))
        assert tracer.get((0, 0)).uid == 0
        assert tracer.get((0, 1)).uid == 1
        assert tracer.get((9, 9)) is None


class TestMetricsAndStats:
    def test_self_metrics_registered_and_live(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        tracer.record(make_trace(0))
        tracer.pin((0, 0))
        snapshot = {
            family["name"]: family["samples"][0]["value"]
            for family in registry.collect()
            if family["samples"] and "value" in family["samples"][0]
        }
        assert snapshot["tracer_spans_recorded"] == 1
        assert snapshot["tracer_events_recorded"] == 2
        assert snapshot["tracer_traces_retained"] == 1
        assert snapshot["tracer_traces_pinned"] == 1
        assert snapshot["tracer_ring_traces"] == 1

    def test_thread_safety_exact_counts(self):
        tracer = Tracer(capacity=4096, registry=NULL_REGISTRY)
        sig = frozenset({1})
        errors = []

        def worker(host_id):
            try:
                for uid in range(200):
                    tracer.record(make_trace(uid, host_id=host_id, signature=sig))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(h,)) for h in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert tracer.stats.traces_recorded == 800
        assert len(tracer) == 800


class TestTraceFromSynopsis:
    def test_builds_single_stage_trace(self):
        class Synopsis:
            host_id = 2
            stage_id = 5
            uid = 7
            start_time = 100.0
            duration = 3.0
            signature = frozenset({1, 4})

        trace = trace_from_synopsis(Synopsis(), [(1, 100.0), (4, 103.0)])
        assert trace.key == (2, 7)
        assert trace.stage_id == 5
        assert trace.duration == 3.0
        assert trace.n_spans == 1 and trace.n_events == 2
        assert [event.lpid for event in trace.events()] == [1, 4]


class TestNullTracer:
    def test_contract(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.record(make_trace(0)) is False
        assert NULL_TRACER.finish(None, []) is None
        assert NULL_TRACER.get((0, 0)) is None
        assert NULL_TRACER.pin((0, 0)) is None
        assert NULL_TRACER.traces() == []
        assert NULL_TRACER.pinned_traces() == []
        assert len(NULL_TRACER) == 0
        NULL_TRACER.set_model(object())  # no-op, must not raise
