"""Tracker → tracer → detector → reporter integration through the facade."""

import pytest

from repro.core import SAADConfig
from repro.core.pipeline import SAAD
from repro.tracing import NULL_TRACER, Tracer


class Clock:
    """Manually advanced time source."""

    def __init__(self):
        self.now = 0.0


def build_deployment(tracing=True, **saad_kwargs):
    clock = Clock()
    saad = SAAD(
        SAADConfig(window_s=10.0, min_window_tasks=5),
        tracing=tracing,
        **saad_kwargs,
    )
    saad.stages.register("flush")
    lps = [
        saad.logpoints.register("begin {}"),
        saad.logpoints.register("end {}"),
        saad.logpoints.register("surprise {}"),
    ]
    node = saad.add_node("host1", clock=lambda: clock.now)
    return saad, node, node.logger("db.flush"), lps, clock


def run_task(node, log, lps, clock, start, surprise=False, slow=False):
    clock.now = start
    node.set_context("flush")
    log.info("begin {}", 0, lpid=lps[0].lpid)
    clock.now += 0.1
    if surprise:
        log.info("surprise {}", 0, lpid=lps[2].lpid)
        clock.now += 0.1
    if slow:
        clock.now += 5.0
    log.info("end {}", 0, lpid=lps[1].lpid)
    node.end_task()


class TestTrackerEmitsTraces:
    def test_traces_mirror_synopses(self):
        saad, node, log, lps, clock = build_deployment()
        for i in range(10):
            run_task(node, log, lps, clock, float(i))
        assert len(saad.tracer) == 10
        synopses = {s.uid for s in saad.collector.synopses}
        assert {trace.uid for trace in saad.tracer.traces()} == synopses
        trace = saad.tracer.traces()[0]
        assert trace.n_spans == 1
        assert [event.lpid for event in trace.events()] == [
            lps[0].lpid, lps[1].lpid,
        ]
        assert trace.signature == frozenset({lps[0].lpid, lps[1].lpid})

    def test_tracing_off_records_nothing(self):
        saad, node, log, lps, clock = build_deployment(tracing=False)
        for i in range(10):
            run_task(node, log, lps, clock, float(i))
        assert saad.tracer is NULL_TRACER
        assert len(saad.tracer) == 0
        assert len(saad.collector.synopses) == 10  # synopses unaffected

    def test_untraced_open_task_has_no_event_list(self):
        saad, node, log, lps, clock = build_deployment(tracing=False)
        node.set_context("flush")
        slot = node.tracker.context.slot()
        assert slot["saad.task"].events is None
        node.end_task()


class TestDetectorPinsExemplars:
    def run_detection(self, exemplars_per_window=3):
        saad, node, log, lps, clock = build_deployment()
        for i in range(60):
            run_task(node, log, lps, clock, float(i))
        saad.train()
        saad.collector.drain()
        detector = saad.detector()
        detector.exemplars_per_window = exemplars_per_window
        for i in range(20):
            run_task(
                node, log, lps, clock, 1000.0 + i,
                surprise=(i == 3), slow=(i in (4, 5)),
            )
        for synopsis in saad.collector.synopses:
            detector.observe(synopsis)
        detector.flush()
        return saad, detector

    def test_anomalies_carry_exemplars(self):
        saad, detector = self.run_detection()
        assert detector.anomalies
        flagged = [e for e in detector.anomalies if e.exemplars]
        assert flagged
        for event in flagged:
            assert 1 <= len(event.exemplars) <= 3
            for trace in event.exemplars:
                assert trace.pinned
                assert saad.tracer.get(trace.key) is trace

    def test_new_signature_task_is_first_exemplar(self):
        saad, detector = self.run_detection()
        flow_events = [
            e for e in detector.anomalies if e.new_signatures and e.exemplars
        ]
        assert flow_events
        first = flow_events[0].exemplars[0]
        assert first.signature in flow_events[0].new_signatures

    def test_exemplar_cap_respected(self):
        saad, detector = self.run_detection(exemplars_per_window=1)
        for event in detector.anomalies:
            assert len(event.exemplars) <= 1

    def test_reporter_renders_exemplar_timelines(self):
        saad, detector = self.run_detection()
        text = saad.reporter().render(detector.anomalies)
        assert "exemplar trace:" in text
        assert "stage flush" in text
        assert "surprise {}" in text

    def test_tracing_off_yields_no_exemplars(self):
        saad, node, log, lps, clock = build_deployment(tracing=False)
        for i in range(60):
            run_task(node, log, lps, clock, float(i))
        saad.train()
        saad.collector.drain()
        detector = saad.detector()
        for i in range(20):
            run_task(node, log, lps, clock, 1000.0 + i, surprise=(i == 3))
        for synopsis in saad.collector.synopses:
            detector.observe(synopsis)
        detector.flush()
        assert detector.anomalies
        assert all(event.exemplars == () for event in detector.anomalies)


class TestFacadeWiring:
    def test_explicit_tracer_is_shared(self):
        tracer = Tracer(capacity=8)
        saad, node, log, lps, clock = build_deployment(tracer=tracer)
        assert saad.tracer is tracer
        assert node.tracker.tracer is tracer

    def test_train_installs_model_on_tracer(self):
        saad, node, log, lps, clock = build_deployment()
        for i in range(60):
            run_task(node, log, lps, clock, float(i))
        assert saad.tracer._model is None
        saad.train()
        assert saad.tracer._model is saad.model

    def test_tracer_metrics_share_deployment_registry(self):
        saad, node, log, lps, clock = build_deployment()
        run_task(node, log, lps, clock, 0.0)
        assert "tracer_spans_recorded" in saad.registry.names()
