"""Chrome trace-event export: structure, Perfetto conventions, round-trip."""

import json

import pytest

from repro.tracing import (
    StageSpan,
    TaskTrace,
    TraceEvent,
    chrome_trace,
    parse_chrome_trace,
    read_chrome_trace,
    write_chrome_trace,
)

STAGES = {3: "flush"}
HOSTS = {0: "alpha", 1: "beta"}
TEMPLATES = {1: "begin {}", 2: "end {}"}


def make_trace(uid, host_id=0, start=10.0, pinned=False):
    events = (TraceEvent(1, start), TraceEvent(2, start + 0.5))
    span = StageSpan(stage_id=3, start_time=start, end_time=start + 0.5, events=events)
    return TaskTrace(
        host_id=host_id,
        uid=uid,
        start_time=start,
        end_time=start + 0.5,
        spans=(span,),
        signature=frozenset({1, 2}),
        retained=pinned,
        pinned=pinned,
    )


class TestChromeTraceStructure:
    def test_document_shape(self):
        doc = chrome_trace([make_trace(7)], STAGES, HOSTS, TEMPLATES)
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        # The whole document must survive strict JSON serialization.
        assert json.loads(json.dumps(doc)) == doc

    def test_event_phases_and_categories(self):
        doc = chrome_trace([make_trace(7)], STAGES, HOSTS, TEMPLATES)
        phases = [event["ph"] for event in doc["traceEvents"]]
        # process_name + thread_name metadata, task X, stage X, 2 instants
        assert phases == ["M", "M", "X", "X", "i", "i"]
        task = doc["traceEvents"][2]
        assert task["cat"] == "task"
        assert task["pid"] == 0 and task["tid"] == 7
        assert task["ts"] == pytest.approx(10.0 * 1e6)
        assert task["dur"] == pytest.approx(0.5 * 1e6)
        stage = doc["traceEvents"][3]
        assert stage["name"] == "flush"
        instant = doc["traceEvents"][4]
        assert instant["s"] == "t"
        assert instant["name"] == "begin {}"
        assert instant["args"]["lpid"] == 1

    def test_one_process_metadata_per_host(self):
        traces = [make_trace(0, host_id=0), make_trace(1, host_id=0),
                  make_trace(0, host_id=1)]
        doc = chrome_trace(traces, STAGES, HOSTS, TEMPLATES)
        process_names = [
            event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        ]
        assert process_names == ["alpha", "beta"]

    def test_unknown_ids_fall_back(self):
        doc = chrome_trace([make_trace(7)])
        names = [event.get("name") for event in doc["traceEvents"]]
        assert "stage3" in names
        assert "L1" in names

    def test_capture_flags_in_args(self):
        doc = chrome_trace([make_trace(7, pinned=True)], STAGES, HOSTS, TEMPLATES)
        task = next(e for e in doc["traceEvents"] if e.get("cat") == "task")
        assert task["args"]["pinned"] is True
        assert task["args"]["retained"] is True
        assert task["args"]["signature_lpids"] == [1, 2]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "trace.json")
        traces = [make_trace(0), make_trace(1, host_id=1, start=20.0, pinned=True)]
        write_chrome_trace(traces, path, STAGES, HOSTS, TEMPLATES)
        archive = read_chrome_trace(path)
        assert len(archive) == 2
        assert archive.stage_names == STAGES
        assert archive.host_names == HOSTS
        assert archive.templates == TEMPLATES
        by_key = {trace.key: trace for trace in archive.traces}
        for original in traces:
            loaded = by_key[original.key]
            assert loaded.signature == original.signature
            assert loaded.duration == pytest.approx(original.duration)
            assert loaded.n_spans == original.n_spans
            assert loaded.n_events == original.n_events
            assert loaded.pinned == original.pinned
            assert [e.lpid for e in loaded.events()] == [
                e.lpid for e in original.events()
            ]

    def test_parse_tolerates_foreign_events(self):
        doc = chrome_trace([make_trace(0)], STAGES, HOSTS, TEMPLATES)
        doc["traceEvents"].append(
            {"ph": "C", "name": "counter", "pid": 0, "ts": 0, "args": {"v": 1}}
        )
        archive = parse_chrome_trace(doc)
        assert len(archive) == 1

    def test_parse_accepts_bare_array_form(self):
        doc = chrome_trace([make_trace(0)], STAGES, HOSTS, TEMPLATES)
        archive = parse_chrome_trace(doc["traceEvents"])
        assert len(archive) == 1


class TestMalformedInput:
    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError):
            read_chrome_trace(str(path))

    def test_no_trace_events_key(self):
        with pytest.raises(ValueError):
            parse_chrome_trace({"events": []})

    def test_wrong_top_level_type(self):
        with pytest.raises(ValueError):
            parse_chrome_trace("nope")

    def test_event_not_an_object(self):
        with pytest.raises(ValueError):
            parse_chrome_trace({"traceEvents": [17]})

    def test_event_missing_required_field(self):
        with pytest.raises(ValueError):
            parse_chrome_trace({"traceEvents": [{"cat": "task"}]})
