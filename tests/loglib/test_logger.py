"""Unit tests for the log4j-like logging library."""

import pytest

from repro.loglib import (
    DEBUG,
    ERROR,
    INFO,
    LogCall,
    LoggerRepository,
    MemoryAppender,
    NullAppender,
    PatternLayout,
    SimpleLayout,
    WARN,
    level_name,
    parse_level,
)
from repro.loglib.record import LogRecord


class RecordingInterceptor:
    def __init__(self):
        self.calls = []

    def on_log(self, call: LogCall):
        self.calls.append(call)


class TestLevels:
    def test_level_ordering(self):
        assert DEBUG < INFO < WARN < ERROR

    def test_level_name_round_trip(self):
        for name in ("TRACE", "DEBUG", "INFO", "WARN", "ERROR", "FATAL"):
            assert level_name(parse_level(name)) == name

    def test_parse_level_case_insensitive(self):
        assert parse_level("info") == INFO

    def test_parse_unknown_level_raises(self):
        with pytest.raises(ValueError):
            parse_level("CHATTY")


class TestLoggerFiltering:
    def test_info_suppresses_debug(self):
        repo = LoggerRepository(root_level=INFO)
        appender = MemoryAppender()
        repo.add_appender(appender)
        log = repo.get_logger("x")
        log.debug("hidden")
        log.info("shown")
        assert len(appender.lines) == 1
        assert "shown" in appender.lines[0]

    def test_hierarchical_level_inheritance(self):
        repo = LoggerRepository(root_level=INFO)
        repo.get_logger("a.b").set_level(DEBUG)
        assert repo.get_logger("a.b.c").level == DEBUG
        assert repo.get_logger("a.other").level == INFO

    def test_same_name_returns_same_logger(self):
        repo = LoggerRepository()
        assert repo.get_logger("x") is repo.get_logger("x")

    def test_empty_logger_name_rejected(self):
        repo = LoggerRepository()
        with pytest.raises(ValueError):
            repo.get_logger("")

    def test_is_enabled_for(self):
        repo = LoggerRepository(root_level=WARN)
        log = repo.get_logger("x")
        assert log.is_enabled_for(ERROR)
        assert not log.is_enabled_for(INFO)


class TestInterception:
    def test_interceptor_sees_suppressed_debug_calls(self):
        repo = LoggerRepository(root_level=INFO)
        interceptor = RecordingInterceptor()
        repo.add_interceptor(interceptor)
        appender = MemoryAppender()
        repo.add_appender(appender)
        log = repo.get_logger("x")
        log.debug("invisible to output", lpid=7)
        assert appender.lines == []
        assert len(interceptor.calls) == 1
        assert interceptor.calls[0].lpid == 7
        assert interceptor.calls[0].level == DEBUG

    def test_is_debug_enabled_true_with_interceptor(self):
        repo = LoggerRepository(root_level=INFO)
        log = repo.get_logger("x")
        assert not log.is_debug_enabled()
        repo.add_interceptor(RecordingInterceptor())
        assert log.is_debug_enabled(lpid=3)
        # Unguarded (no lpid) debug checks still honour the level.
        assert not log.is_debug_enabled()

    def test_interceptor_requires_on_log(self):
        repo = LoggerRepository()
        with pytest.raises(TypeError):
            repo.add_interceptor(object())

    def test_remove_interceptor(self):
        repo = LoggerRepository()
        interceptor = RecordingInterceptor()
        repo.add_interceptor(interceptor)
        repo.remove_interceptor(interceptor)
        repo.get_logger("x").info("msg", lpid=1)
        assert interceptor.calls == []

    def test_clock_used_for_call_time(self):
        times = iter([10.5, 11.5])
        repo = LoggerRepository(clock=lambda: next(times))
        interceptor = RecordingInterceptor()
        repo.add_interceptor(interceptor)
        log = repo.get_logger("x")
        log.info("a", lpid=1)
        log.info("b", lpid=2)
        assert [c.time for c in interceptor.calls] == [10.5, 11.5]


class TestAppenders:
    def test_memory_appender_counts_bytes(self):
        repo = LoggerRepository()
        appender = MemoryAppender()
        repo.add_appender(appender)
        repo.get_logger("x").info("hello %s", "world")
        assert appender.records_appended == 1
        assert appender.bytes_appended == len(appender.lines[0].encode())
        assert "hello world" in appender.lines[0]

    def test_null_appender_counts_but_discards(self):
        repo = LoggerRepository()
        appender = NullAppender()
        repo.add_appender(appender)
        repo.get_logger("x").info("some message")
        assert appender.records_appended == 1
        assert appender.bytes_appended > 0

    def test_memory_appender_max_lines(self):
        repo = LoggerRepository()
        appender = MemoryAppender(max_lines=2)
        repo.add_appender(appender)
        log = repo.get_logger("x")
        for i in range(5):
            log.info("msg %d", i)
        assert len(appender.lines) == 2
        assert "msg 4" in appender.lines[-1]

    def test_multiple_appenders_all_receive(self):
        repo = LoggerRepository()
        a, b = MemoryAppender(), MemoryAppender()
        repo.add_appender(a)
        repo.add_appender(b)
        repo.get_logger("x").warn("w")
        assert len(a.lines) == len(b.lines) == 1


class TestLayouts:
    def test_pattern_layout_contains_fields(self):
        record = LogRecord(
            time=12.345,
            level=INFO,
            logger_name="DataXceiver",
            thread_name="worker-1",
            template="Receiving block blk_%s",
            args=("42",),
        )
        line = PatternLayout().format(record)
        assert "INFO" in line
        assert "DataXceiver" in line
        assert "worker-1" in line
        assert "Receiving block blk_42" in line
        assert line.endswith("\n")

    def test_simple_layout(self):
        record = LogRecord(
            time=0, level=ERROR, logger_name="x", thread_name="t", template="bad"
        )
        assert SimpleLayout().format(record) == "ERROR - bad\n"

    def test_bad_template_does_not_raise(self):
        record = LogRecord(
            time=0, level=INFO, logger_name="x", thread_name="t",
            template="%d things", args=("not-an-int",),
        )
        message = record.message()
        assert "things" in message
