"""Additional loglib coverage: appender edge cases and volume accounting."""

import pytest

from repro.loglib import (
    CallbackAppender,
    DEBUG,
    INFO,
    LoggerRepository,
    MemoryAppender,
    NullAppender,
    SimpleLayout,
)


class TestVolumeAccounting:
    """The Fig. 8 measurement depends on faithful byte accounting."""

    def test_bytes_match_rendered_line(self):
        repo = LoggerRepository(root_level=DEBUG, clock=lambda: 1.0)
        appender = MemoryAppender()
        repo.add_appender(appender)
        repo.get_logger("Stage").debug("payload %s", "x" * 100)
        assert appender.bytes_appended == len(appender.lines[0].encode())
        assert appender.bytes_appended > 100

    def test_suppressed_records_cost_nothing(self):
        repo = LoggerRepository(root_level=INFO)
        appender = MemoryAppender()
        repo.add_appender(appender)
        repo.get_logger("Stage").debug("hidden")
        assert appender.bytes_appended == 0

    def test_null_appender_volume_only(self):
        repo = LoggerRepository(root_level=DEBUG)
        appender = NullAppender()
        repo.add_appender(appender)
        for i in range(100):
            repo.get_logger("x").debug("line %d", i)
        assert appender.records_appended == 100
        assert appender.bytes_appended > 1000
        assert not hasattr(appender, "lines") or not getattr(appender, "lines")

    def test_unicode_message_counted_in_bytes(self):
        repo = LoggerRepository()
        appender = MemoryAppender(layout=SimpleLayout())
        repo.add_appender(appender)
        repo.get_logger("x").info("héllo")
        assert appender.bytes_appended == len(appender.lines[0].encode("utf-8"))


class TestCallbackAppender:
    def test_callback_receives_line_and_record(self):
        received = []
        repo = LoggerRepository(clock=lambda: 2.0)
        repo.add_appender(
            CallbackAppender(lambda line, record: received.append((line, record)))
        )
        repo.get_logger("Stage").info("msg", lpid=4)
        assert len(received) == 1
        line, record = received[0]
        assert "msg" in line
        assert record.lpid == 4
        assert record.time == 2.0


class TestMemoryAppenderText:
    def test_text_joins_lines(self):
        repo = LoggerRepository()
        appender = MemoryAppender(layout=SimpleLayout())
        repo.add_appender(appender)
        log = repo.get_logger("x")
        log.info("a")
        log.info("b")
        assert appender.text() == "INFO - a\nINFO - b\n"

    def test_keep_records(self):
        repo = LoggerRepository()
        appender = MemoryAppender(keep_records=True)
        repo.add_appender(appender)
        repo.get_logger("x").info("a", lpid=9)
        assert appender.records[0].lpid == 9

    def test_clear(self):
        repo = LoggerRepository()
        appender = MemoryAppender(keep_records=True)
        repo.add_appender(appender)
        repo.get_logger("x").info("a")
        appender.clear()
        assert appender.lines == [] and appender.records == []
