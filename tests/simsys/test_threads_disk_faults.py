"""Tests for simulated threads, disks, fault injection, and the network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simsys import (
    Cluster,
    DELAY_FAULT_SECONDS,
    DiskHog,
    Environment,
    Executor,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    Gate,
    HIGH_INTENSITY,
    LOW_INTENSITY,
    NetworkFabric,
    SimDisk,
    SimThread,
    SimulatedIOError,
    spawn_worker,
)


@pytest.fixture
def env():
    return Environment()


class TestSimThread:
    def test_thread_runs_body(self, env):
        trail = []

        def body():
            yield env.timeout(1.0)
            trail.append(env.now)

        SimThread(env, target=body(), name="t1")
        env.run()
        assert trail == [1.0]

    def test_active_thread_visible_in_body(self, env):
        seen = []

        def body():
            seen.append(env.active_thread.name)
            yield env.timeout(0)

        SimThread(env, target=body(), name="worker-7")
        env.run()
        assert seen == ["worker-7"]

    def test_exit_hooks_fire_once(self, env):
        fired = []

        def body():
            yield env.timeout(1.0)

        thread = SimThread(env, target=body())
        thread.exit_hooks.append(lambda t: fired.append(t.tid))
        env.run()
        assert fired == [thread.tid]

    def test_exit_hooks_fire_on_exception(self, env):
        fired = []

        def body():
            yield env.timeout(1.0)
            raise RuntimeError("oops")

        def parent():
            thread = spawn_worker(env, body())
            thread.exit_hooks.append(lambda t: fired.append(True))
            try:
                yield thread.join()
            except RuntimeError:
                pass

        env.process(parent())
        env.run()
        assert fired == [True]

    def test_locals_are_per_thread(self, env):
        def body(value):
            env.active_thread.locals["x"] = value
            yield env.timeout(1.0)
            assert env.active_thread.locals["x"] == value

        SimThread(env, target=body(1))
        SimThread(env, target=body(2))
        env.run()


class TestExecutor:
    def test_tasks_run_in_fifo_order(self, env):
        executor = Executor(env, pool_size=1)
        order = []

        def task(tag):
            def body():
                yield env.timeout(1.0)
                order.append(tag)

            return body

        for tag in "abc":
            executor.try_submit(task(tag))
        env.run(until=10.0)
        assert order == ["a", "b", "c"]
        assert executor.completed_tasks == 3

    def test_pool_parallelism(self, env):
        executor = Executor(env, pool_size=3)
        done_times = []

        def task():
            yield env.timeout(5.0)
            done_times.append(env.now)

        for _ in range(3):
            executor.try_submit(task)
        env.run(until=20.0)
        assert done_times == [5.0, 5.0, 5.0]

    def test_task_error_does_not_kill_worker(self, env):
        errors = []
        executor = Executor(
            env, pool_size=1, on_task_error=lambda t, e: errors.append(str(e))
        )

        def bad():
            yield env.timeout(1.0)
            raise ValueError("bad task")

        def good():
            yield env.timeout(1.0)

        executor.try_submit(bad)
        executor.try_submit(good)
        env.run(until=10.0)
        assert errors == ["bad task"]
        assert executor.completed_tasks == 1
        assert executor.failed_tasks == 1

    def test_on_dequeue_runs_in_worker_context(self, env):
        contexts = []
        executor = Executor(
            env, pool_size=1,
            on_dequeue=lambda _t: contexts.append(env.active_thread.name),
        )
        executor.try_submit(lambda: iter(()))
        env.run(until=5.0)
        assert len(contexts) == 1
        assert "executor" in contexts[0]

    def test_shutdown_stops_workers(self, env):
        executor = Executor(env, pool_size=2)
        executor.shutdown()
        env.run()
        assert all(not t.is_alive for t in executor.threads)


class TestGate:
    def test_open_gate_passes_immediately(self, env):
        gate = Gate(env)
        outcome = []

        def proc():
            ok = yield from gate.wait(1.0)
            outcome.append(ok)

        env.process(proc())
        env.run()
        assert outcome == [True]

    def test_closed_gate_blocks_until_open(self, env):
        gate = Gate(env)
        gate.close()
        times = []

        def waiter():
            ok = yield from gate.wait()
            times.append((env.now, ok))

        def opener():
            yield env.timeout(3.0)
            gate.open()

        env.process(waiter())
        env.process(opener())
        env.run()
        assert times == [(3.0, True)]

    def test_timeout_returns_false(self, env):
        gate = Gate(env)
        gate.close()
        outcome = []

        def waiter():
            ok = yield from gate.wait(2.0)
            outcome.append((env.now, ok))

        env.process(waiter())
        env.run()
        assert outcome == [(2.0, False)]

    def test_nested_close_requires_balanced_opens(self, env):
        gate = Gate(env)
        gate.close()
        gate.close()
        gate.open()
        assert gate.is_closed
        gate.open()
        assert not gate.is_closed

    def test_unbalanced_open_raises(self, env):
        with pytest.raises(RuntimeError):
            Gate(env).open()


class TestDiskAndFaults:
    def run_io(self, env, generator):
        box = {}

        def wrapper():
            try:
                box["ok"] = True
                yield from generator
            except SimulatedIOError:
                box["ok"] = False

        env.process(wrapper())
        env.run()
        return box["ok"]

    def test_write_takes_time_and_counts(self, env):
        disk = SimDisk(env, seed=2)
        assert self.run_io(env, disk.write(4096, path="wal"))
        assert env.now > 0
        assert disk.stats.writes == 1
        assert disk.stats.written_bytes == 4096

    def test_error_fault_only_hits_matching_path(self, env):
        disk = SimDisk(env, seed=2)
        injector = FaultInjector("h", seed=3)
        injector.arm(FaultSpec("wal", "error", HIGH_INTENSITY))
        disk.fault_injector = injector
        assert self.run_io(env, disk.write(100, path="data")) is True
        assert self.run_io(env, disk.write(100, path="wal")) is False
        assert injector.hits["error-wal-high"] == 1

    def test_delay_fault_adds_latency(self, env):
        disk = SimDisk(env, seed=2)
        injector = FaultInjector("h", seed=3)
        injector.arm(FaultSpec("wal", "delay", HIGH_INTENSITY))
        disk.fault_injector = injector
        start = env.now
        assert self.run_io(env, disk.write(100, path="wal"))
        assert env.now - start >= DELAY_FAULT_SECONDS

    def test_low_intensity_hits_about_one_percent(self, env):
        injector = FaultInjector("h", seed=5)
        fault = FaultSpec("wal", "error", LOW_INTENSITY)
        injector.arm(fault)
        fails = sum(
            injector.on_io("d", "wal", True).fail for _ in range(20000)
        )
        assert 100 < fails < 320  # ~1%

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("wal", "explode", 0.5)
        with pytest.raises(ValueError):
            FaultSpec("wal", "error", 1.5)

    def test_fault_spec_host_scoping(self):
        injector = FaultInjector("host1", seed=1)
        injector.arm(FaultSpec("wal", "error", 1.0, host="host2"))
        assert injector.armed_faults == ()

    def test_fault_schedule_arms_and_disarms(self, env):
        injector = FaultInjector("h", seed=1)
        schedule = FaultSchedule(env, injector)
        fault = FaultSpec("wal", "error", 1.0)
        schedule.add(10.0, 20.0, fault)
        schedule.start()
        env.run(until=15.0)
        assert fault in injector.armed_faults
        env.run(until=25.0)
        assert fault not in injector.armed_faults
        assert schedule.active_at(12.0) == [fault]
        assert schedule.active_at(25.0) == []

    def test_hog_slowdown_table(self, env):
        disk = SimDisk(env, seed=1)
        hog = DiskHog(disk)
        hog.start(2)
        assert disk.slowdown_factor == pytest.approx(1.35)
        assert disk.stall_probability == 0.0
        hog.start(2)  # now 4 processes: saturation
        assert disk.slowdown_factor == pytest.approx(2.8)
        assert disk.stall_probability > 0.0
        assert hog.cpu_pressure == pytest.approx(1 + 0.35 * 4)
        hog.stop_all()
        assert disk.slowdown_factor == 1.0


class TestNetwork:
    def test_send_charges_latency(self, env):
        network = NetworkFabric(env, seed=1)
        box = {}

        def proc():
            box["n"] = yield from network.send("a", "b", 1024)

        env.process(proc())
        env.run()
        assert box["n"] == 1024
        assert env.now > 0
        assert network.messages_sent == 1

    def test_partition_fails_sends(self, env):
        network = NetworkFabric(env, seed=1)
        network.partition("a", "b")
        failed = []

        def proc():
            try:
                yield from network.send("a", "b", 100)
            except SimulatedIOError:
                failed.append(env.now)

        env.process(proc())
        env.run()
        assert failed and failed[0] >= 1.0  # connect-timeout style
        network.heal("a", "b")
        assert not network.is_partitioned("a", "b")

    def test_cluster_builds_hosts(self, env):
        cluster = Cluster(env, ["h1", "h2"], seed=1)
        assert len(cluster) == 2
        assert cluster["h1"].disk is not cluster["h2"].disk
        cluster["h1"].crash()
        assert [h.name for h in cluster.alive_hosts()] == ["h2"]

    def test_cluster_rejects_duplicates(self, env):
        with pytest.raises(ValueError):
            Cluster(env, ["a", "a"])

    @settings(max_examples=30, deadline=None)
    @given(nbytes=st.integers(0, 10_000_000))
    def test_transfer_time_positive_and_monotone_in_size(self, nbytes):
        env = Environment()
        network = NetworkFabric(env, seed=9)
        small = network.transfer_time("a", "b", 0)
        big = network.transfer_time("a", "b", nbytes)
        assert small > 0
        # Jitter is resampled per call, so compare against the floor.
        assert big >= nbytes / network.bandwidth_bps
