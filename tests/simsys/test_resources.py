"""Unit tests for simulation queues and semaphores."""

import pytest

from repro.simsys import Environment, Mutex, QueueClosed, Semaphore, SimQueue


@pytest.fixture
def env():
    return Environment()


class TestSimQueue:
    def test_put_then_get(self, env):
        queue = SimQueue(env)
        got = []

        def consumer():
            item = yield queue.get()
            got.append(item)

        def producer():
            yield queue.put("item")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self, env):
        queue = SimQueue(env)
        times = []

        def consumer():
            yield queue.get()
            times.append(env.now)

        def producer():
            yield env.timeout(5.0)
            yield queue.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [5.0]

    def test_fifo_item_order(self, env):
        queue = SimQueue(env)
        got = []

        def producer():
            for i in range(5):
                yield queue.put(i)

        def consumer():
            for _ in range(5):
                item = yield queue.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_blocks_putter(self, env):
        queue = SimQueue(env, capacity=1)
        progress = []

        def producer():
            yield queue.put("a")
            progress.append(("a", env.now))
            yield queue.put("b")  # blocks until the consumer drains one
            progress.append(("b", env.now))

        def consumer():
            yield env.timeout(10.0)
            yield queue.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert progress == [("a", 0.0), ("b", 10.0)]

    def test_try_put_respects_capacity(self, env):
        queue = SimQueue(env, capacity=2)
        assert queue.try_put(1)
        assert queue.try_put(2)
        assert not queue.try_put(3)
        assert len(queue) == 2

    def test_try_get_returns_none_when_empty(self, env):
        queue = SimQueue(env)
        assert queue.try_get() is None

    def test_close_fails_blocked_getters(self, env):
        queue = SimQueue(env)
        outcomes = []

        def consumer():
            try:
                yield queue.get()
            except QueueClosed:
                outcomes.append("closed")

        def closer():
            yield env.timeout(1.0)
            queue.close()

        env.process(consumer())
        env.process(closer())
        env.run()
        assert outcomes == ["closed"]

    def test_put_after_close_raises(self, env):
        queue = SimQueue(env)
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("x")

    def test_zero_capacity_rejected(self, env):
        with pytest.raises(ValueError):
            SimQueue(env, capacity=0)

    def test_total_enqueued_counts(self, env):
        queue = SimQueue(env)
        queue.try_put("a")
        queue.try_put("b")
        assert queue.total_enqueued == 2


class TestSemaphore:
    def test_acquire_within_capacity_is_immediate(self, env):
        sem = Semaphore(env, capacity=2)
        done = []

        def proc():
            yield sem.acquire()
            yield sem.acquire()
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]
        assert sem.in_use == 2
        assert sem.available == 0

    def test_acquire_blocks_at_capacity(self, env):
        sem = Semaphore(env, capacity=1)
        times = []

        def holder():
            yield sem.acquire()
            yield env.timeout(5.0)
            sem.release()

        def waiter():
            yield sem.acquire()
            times.append(env.now)
            sem.release()

        env.process(holder())
        env.process(waiter())
        env.run()
        assert times == [5.0]

    def test_release_unacquired_raises(self, env):
        sem = Semaphore(env)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_waiters_served_fifo(self, env):
        sem = Semaphore(env, capacity=1)
        order = []

        def holder():
            yield sem.acquire()
            yield env.timeout(1.0)
            sem.release()

        def waiter(tag):
            yield sem.acquire()
            order.append(tag)
            yield env.timeout(1.0)
            sem.release()

        env.process(holder())
        env.process(waiter("w1"))
        env.process(waiter("w2"))
        env.run()
        assert order == ["w1", "w2"]

    def test_mutex_locked_property(self, env):
        mutex = Mutex(env)
        assert not mutex.locked

        def proc():
            yield mutex.acquire()

        env.process(proc())
        env.run()
        assert mutex.locked
