"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simsys import Environment, Interrupted, SimError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(5.0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [5.0]


def test_timeout_zero_is_allowed():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(0)
        done.append(True)

    env.process(proc())
    env.run()
    assert done == [True]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_process_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(3.0, "c"))
    env.process(proc(1.0, "a"))
    env.process(proc(2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_fifo_order_at_equal_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(proc(tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10.0)

    env.process(proc())
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_raises():
    env = Environment(initial_time=50.0)
    with pytest.raises(ValueError):
        env.run(until=10.0)


def test_process_return_value_via_join():
    env = Environment()
    result = []

    def child():
        yield env.timeout(1.0)
        return 42

    def parent():
        value = yield env.process(child())
        result.append(value)

    env.process(parent())
    env.run()
    assert result == [42]


def test_process_exception_propagates_to_joiner():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_manual_event_succeed():
    env = Environment()
    done = []
    gate = env.event()

    def waiter():
        value = yield gate
        done.append(value)

    def opener():
        yield env.timeout(2.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert done == ["open"]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_interrupt_mid_wait():
    env = Environment()
    observed = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupted as exc:
            observed.append((env.now, exc.cause))

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(5.0)
        proc.interrupt("shutdown")

    env.process(interrupter())
    env.run()
    assert observed == [(5.0, "shutdown")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    proc.interrupt("late")  # must not raise


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def child(d):
        yield env.timeout(d)
        return d

    def parent():
        procs = [env.process(child(d)) for d in (1.0, 4.0, 2.0)]
        yield env.all_of(procs)
        times.append(env.now)

    env.process(parent())
    env.run()
    assert times == [4.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def child(d):
        yield env.timeout(d)

    def parent():
        procs = [env.process(child(d)) for d in (3.0, 1.0, 2.0)]
        yield env.any_of(procs)
        times.append(env.now)

    env.process(parent())
    env.run()
    assert times == [1.0]


def test_yielding_non_event_is_an_error():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimError):
        env.run()


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1.0)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_peek_reports_next_event_time():
    env = Environment()

    def proc():
        yield env.timeout(7.0)

    env.process(proc())
    env.step()  # process the init event at t=0
    assert env.peek() == 7.0


def test_nested_subgenerators_with_yield_from():
    env = Environment()
    trail = []

    def inner():
        yield env.timeout(1.0)
        trail.append("inner")
        return "inner-done"

    def outer():
        result = yield from inner()
        trail.append(result)
        yield env.timeout(1.0)
        trail.append("outer")

    env.process(outer())
    env.run()
    assert trail == ["inner", "inner-done", "outer"]
