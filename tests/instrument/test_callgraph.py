"""Unit tests for the whole-program call graph (resolution + traversal)."""

from repro.instrument.callgraph import build_callgraph
from repro.instrument.facts import collect_file


def _graph(sources):
    files = [collect_file(path, text) for path, text in sorted(sources.items())]
    return build_callgraph(files)


def _edge_pairs(graph, kind=None):
    return {
        (e.caller[1], e.callee[1])
        for e in graph.edges
        if kind is None or e.kind == kind
    }


class TestResolution:
    def test_self_method_call(self):
        graph = _graph({
            "a.py": (
                "class Worker:\n"
                "    def run(self):\n"
                "        self.step()\n"
                "    def step(self):\n"
                "        pass\n"
            ),
        })
        assert ("Worker.run", "Worker.step") in _edge_pairs(graph)

    def test_inherited_method_resolves_to_base(self):
        graph = _graph({
            "a.py": (
                "class Base:\n"
                "    def step(self):\n"
                "        pass\n"
                "class Child(Base):\n"
                "    def run(self):\n"
                "        self.step()\n"
            ),
        })
        assert ("Child.run", "Base.step") in _edge_pairs(graph)

    def test_local_constructor_binding(self):
        graph = _graph({
            "a.py": (
                "class Worker:\n"
                "    def go(self):\n"
                "        pass\n"
                "def main():\n"
                "    w = Worker()\n"
                "    w.go()\n"
            ),
        })
        assert ("main", "Worker.go") in _edge_pairs(graph)

    def test_annotated_parameter(self):
        graph = _graph({
            "a.py": (
                "class Worker:\n"
                "    def go(self):\n"
                "        pass\n"
                "def drive(w: Worker):\n"
                "    w.go()\n"
            ),
        })
        assert ("drive", "Worker.go") in _edge_pairs(graph)

    def test_attribute_constructor_type(self):
        graph = _graph({
            "a.py": (
                "class Engine:\n"
                "    def fire(self):\n"
                "        pass\n"
                "class Car:\n"
                "    def __init__(self):\n"
                "        self.engine = Engine()\n"
                "    def drive(self):\n"
                "        self.engine.fire()\n"
            ),
        })
        assert ("Car.drive", "Engine.fire") in _edge_pairs(graph)

    def test_from_import_crosses_files(self):
        graph = _graph({
            "util.py": "def helper():\n    pass\n",
            "app.py": "from util import helper\ndef main():\n    helper()\n",
        })
        assert ("main", "helper") in _edge_pairs(graph)

    def test_constructor_call_targets_init(self):
        graph = _graph({
            "a.py": (
                "class Worker:\n"
                "    def __init__(self):\n"
                "        pass\n"
                "def main():\n"
                "    Worker()\n"
            ),
        })
        assert ("main", "Worker.__init__") in _edge_pairs(graph)

    def test_unresolvable_call_produces_no_edge(self):
        graph = _graph({
            "a.py": "def main(x):\n    x.anything()\n    mystery()\n",
        })
        assert _edge_pairs(graph) == set()


class TestSpawnEdges:
    SRC = {
        "a.py": (
            "import threading\n"
            "class Pool:\n"
            "    def start(self):\n"
            "        threading.Thread(target=self._work).start()\n"
            "    def _work(self):\n"
            "        self.step()\n"
            "    def step(self):\n"
            "        pass\n"
        ),
    }

    def test_thread_target_is_a_spawn_edge(self):
        graph = _graph(self.SRC)
        assert ("Pool.start", "Pool._work") in _edge_pairs(graph, kind="spawn")
        assert ("Pool.start", "Pool._work") not in _edge_pairs(graph, kind="call")

    def test_spawn_targets_are_recorded(self):
        graph = _graph(self.SRC)
        assert [key[1] for key in graph.spawned] == ["Pool._work"]

    def test_call_only_reachability_stops_at_spawn(self):
        graph = _graph(self.SRC)
        (start,) = [k for k in graph.functions if k[1] == "Pool.start"]
        same_thread = {
            k[1] for k in graph.reachable_from([start], kinds={"call"})
        }
        everywhere = {k[1] for k in graph.reachable_from([start])}
        assert "Pool._work" not in same_thread
        assert {"Pool._work", "Pool.step"} <= everywhere

    def test_event_loop_callback_is_a_spawn_edge(self):
        graph = _graph({
            "a.py": (
                "def tick():\n"
                "    pass\n"
                "def arm(loop):\n"
                "    loop.call_later(5.0, tick)\n"
            ),
        })
        assert ("arm", "tick") in _edge_pairs(graph, kind="spawn")


class TestTraversal:
    def test_shortest_chain_prefers_fewest_hops(self):
        graph = _graph({
            "a.py": (
                "def sink():\n"
                "    pass\n"
                "def mid():\n"
                "    sink()\n"
                "def top():\n"
                "    mid()\n"
                "    sink()\n"
            ),
        })
        (top,) = [k for k in graph.functions if k[1] == "top"]
        (sink,) = [k for k in graph.functions if k[1] == "sink"]
        chain = graph.shortest_chain(top, sink)
        assert [key[1] for key in chain] == ["top", "sink"]

    def test_chain_is_none_when_unreachable(self):
        graph = _graph({
            "a.py": "def a():\n    pass\ndef b():\n    pass\n",
        })
        (a,) = [k for k in graph.functions if k[1] == "a"]
        (b,) = [k for k in graph.functions if k[1] == "b"]
        assert graph.shortest_chain(a, b) is None
