"""Tests for the content-hash result cache and the ``--jobs`` path."""

import json
import time

import pytest

from repro.instrument.cache import (
    cache_key,
    load_cached_result,
    store_result,
)
from repro.instrument.cli import main
from repro.instrument.diagnostics import Diagnostic, LintResult
from repro.instrument.lint import load_files, run_lint


ASYNC_DEFECT = "import time\n\nasync def handler():\n    time.sleep(1)\n"


def _result_with(*diags, parse_errors=(), suppressed=(), files_scanned=1):
    result = LintResult()
    result.files_scanned = files_scanned
    result.parse_errors = list(parse_errors)
    result.diagnostics = list(diags)
    result.suppressed = list(suppressed)
    return result


class TestCacheKey:
    def test_content_change_changes_key(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        before = cache_key([str(target)], ["LP001"])
        target.write_text("x = 2\n")
        assert cache_key([str(target)], ["LP001"]) != before

    def test_rule_selection_changes_key(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        paths = [str(target)]
        assert cache_key(paths, ["LP001"]) != cache_key(paths, ["AS001"])

    def test_key_is_stable_and_order_insensitive(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("x = 1\n")
        b.write_text("y = 2\n")
        key = cache_key([str(a), str(b)], ["LP001", "AS001"])
        assert cache_key([str(b), str(a)], ["AS001", "LP001"]) == key

    def test_unreadable_file_still_produces_key(self, tmp_path):
        missing = tmp_path / "gone.py"
        key = cache_key([str(missing)], ["LP001"])
        assert isinstance(key, str) and len(key) == 40


class TestStoreLoad:
    def test_round_trip_preserves_result(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        diag = Diagnostic(
            rule_id="AS001", path="mod.py", line=4, col=4,
            message="blocking call time.sleep() reachable", hint="offload",
        )
        muted = Diagnostic(
            rule_id="RC001", path="mod.py", line=9, col=8, message="racy write",
        )
        stored = _result_with(
            diag, parse_errors=["bad.py: boom"], suppressed=[muted],
            files_scanned=3,
        )
        store_result(cache, "k1", stored)
        loaded = load_cached_result(cache, "k1")
        assert loaded is not None
        assert loaded.files_scanned == 3
        assert loaded.parse_errors == ["bad.py: boom"]
        assert loaded.diagnostics == [diag]
        assert loaded.suppressed == [muted]
        assert loaded.diagnostics[0].severity == diag.severity
        assert not loaded.clean  # parse errors survive the round trip

    def test_miss_returns_none(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        store_result(cache, "k1", _result_with())
        assert load_cached_result(cache, "other") is None
        assert load_cached_result(str(tmp_path / "absent.json"), "k1") is None

    def test_corrupt_cache_returns_none(self, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        assert load_cached_result(str(cache), "k1") is None
        cache.write_text(json.dumps({"format": 999, "entries": {}}))
        assert load_cached_result(str(cache), "k1") is None

    def test_old_entries_are_evicted(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        for i in range(12):
            store_result(cache, f"k{i}", _result_with(files_scanned=i))
        assert load_cached_result(cache, "k0") is None
        newest = load_cached_result(cache, "k11")
        assert newest is not None and newest.files_scanned == 11


class TestCliCache:
    def _lint(self, tree, cache, *extra, capsys=None):
        code = main([str(tree), "--cache", str(cache), "--json", *extra])
        out = capsys.readouterr().out
        return code, json.loads(out)

    def test_warm_run_replays_identical_report(self, tmp_path, capsys):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text(ASYNC_DEFECT)
        cache = tmp_path / "cache.json"
        code1, cold = self._lint(tree, cache, capsys=capsys)
        assert code1 == 1 and cache.exists()
        code2, warm = self._lint(tree, cache, capsys=capsys)
        assert code2 == 1
        assert warm == cold

    def test_edit_invalidates_cache(self, tmp_path, capsys):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text(ASYNC_DEFECT)
        cache = tmp_path / "cache.json"
        self._lint(tree, cache, capsys=capsys)
        (tree / "mod.py").write_text(
            ASYNC_DEFECT + "\nasync def again():\n    time.sleep(2)\n"
        )
        _, report = self._lint(tree, cache, capsys=capsys)
        assert len(report["findings"]) == 2

    def test_no_cache_never_touches_cache_file(self, tmp_path, capsys):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        code, report = self._lint(tree, cache, "--no-cache", capsys=capsys)
        assert code == 0 and report["clean"]
        assert not cache.exists()

    def test_registry_flag_partitions_cache(self, tmp_path, capsys):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        registry = tmp_path / "registry.json"
        registry.write_text("[]")
        self._lint(tree, cache, capsys=capsys)
        # Same tree + a registry must not replay the registry-less entry.
        _, report = self._lint(
            tree, cache, "--registry", str(registry), capsys=capsys
        )
        assert report["clean"]
        payload = json.loads(cache.read_text())
        assert len(payload["entries"]) == 2


class TestJobs:
    def test_parallel_collection_matches_serial(self, tmp_path):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "a.py").write_text(ASYNC_DEFECT)
        (tree / "b.py").write_text("def f(:\n")  # syntax error
        (tree / "c.py").write_text("y = 2\n")
        serial = run_lint([str(tree)], jobs=1)
        parallel = run_lint([str(tree)], jobs=2)
        assert parallel.diagnostics == serial.diagnostics
        assert parallel.parse_errors == serial.parse_errors
        assert parallel.files_scanned == serial.files_scanned

    def test_load_files_parallel_order_is_deterministic(self, tmp_path):
        for name in ("z.py", "a.py", "m.py"):
            (tmp_path / name).write_text("x = 1\n")
        files, _ = load_files([str(tmp_path)], jobs=2)
        assert [f.path for f in files] == sorted(f.path for f in files)


@pytest.mark.lint
def test_warm_full_tree_lint_is_fast(tmp_path, capsys):
    """Acceptance: a warm cached lint of src/repro finishes in < 5s."""
    cache = tmp_path / "cache.json"
    assert main(["src/repro", "--cache", str(cache), "--json"]) == 0
    capsys.readouterr()
    start = time.monotonic()
    assert main(["src/repro", "--cache", str(cache), "--json"]) == 0
    elapsed = time.monotonic() - start
    capsys.readouterr()
    assert elapsed < 5.0, f"warm lint took {elapsed:.2f}s"
