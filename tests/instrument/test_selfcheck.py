"""Tier-1 selfcheck: saadlint must run clean over the real simulators.

Every simulated server (HDFS, HBase, Cassandra, LSM) plus the simulation
kernel is linted with all rules enabled.  Any unbaselined diagnostic is a
regression: either fix the instrumentation defect or, for a deliberate
exception, add an inline ``# saadlint: disable=RULE`` with a comment
explaining why.
"""

import os

import pytest

from repro.instrument import run_lint
from repro.instrument.cli import main as lint_cli

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src", "repro")

#: The trees ISSUE'd for verification: all four servers + the sim kernel.
SIM_TREES = ["hdfs", "hbase", "cassandra", "lsm", "simsys"]

pytestmark = pytest.mark.lint


@pytest.mark.parametrize("tree", SIM_TREES)
def test_sim_tree_lints_clean(tree):
    result = run_lint([os.path.join(SRC, tree)])
    assert result.parse_errors == []
    messages = "\n".join(
        f"{d.path}:{d.line}: {d.rule_id} {d.message}" for d in result.diagnostics
    )
    assert result.diagnostics == [], f"unbaselined saadlint findings:\n{messages}"


def test_whole_package_lints_clean():
    result = run_lint([SRC])
    assert result.files_scanned > 50  # the walk really covered the package
    assert result.clean, [d.as_dict() for d in result.diagnostics]


def test_cli_selfcheck_exits_zero(capsys):
    assert lint_cli([SRC]) == 0
    assert "clean" in capsys.readouterr().out


def test_design_doc_rule_table_matches_registry():
    """DESIGN.md §9's rule table must stay in lockstep with RULES."""
    from repro.instrument.diagnostics import RULES, severity_name

    design = os.path.join(REPO_ROOT, "DESIGN.md")
    with open(design, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    documented = {}
    for line in lines:
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) >= 3 and cells[0] in RULES:
            documented[cells[0]] = cells[1]

    missing = sorted(set(RULES) - set(documented))
    assert not missing, f"rules absent from the DESIGN.md table: {missing}"
    for rule_id, severity in sorted(documented.items()):
        expected = severity_name(RULES[rule_id].severity)
        assert severity == expected, (
            f"DESIGN.md lists {rule_id} as '{severity}', "
            f"registry says '{expected}'"
        )
