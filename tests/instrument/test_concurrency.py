"""Unit tests for the five whole-program concurrency rules.

The defect-tree fixtures (``test_lint.py``) pin each rule to exact
lines in realistic code; these tests probe the rule *boundaries* —
what must fire, and just as importantly what must stay quiet.
"""

from repro.instrument.facts import collect_file
from repro.instrument.lint import LintEngine, lint_source


def _lint_tree(sources, select):
    files = [collect_file(path, text) for path, text in sorted(sources.items())]
    return LintEngine(select=select).run_collected(files).diagnostics


class TestAS001:
    def test_direct_blocking_call(self):
        diags = lint_source(
            "import time\n"
            "async def handle():\n"
            "    time.sleep(1)\n",
            select={"AS001"},
        )
        assert [(d.rule_id, d.line) for d in diags] == [("AS001", 3)]
        assert diags[0].hint  # every finding ships a fix hint

    def test_transitive_through_sync_helper(self):
        diags = lint_source(
            "import time\n"
            "def helper():\n"
            "    time.sleep(1)\n"
            "async def handle():\n"
            "    helper()\n",
            select={"AS001"},
        )
        assert [(d.rule_id, d.line) for d in diags] == [("AS001", 3)]
        assert "handle" in diags[0].message and "helper" in diags[0].message

    def test_spawned_work_does_not_count(self):
        diags = lint_source(
            "import time, threading\n"
            "def helper():\n"
            "    time.sleep(1)\n"
            "async def handle():\n"
            "    threading.Thread(target=helper).start()\n",
            select={"AS001"},
        )
        assert diags == []

    def test_plain_functions_are_out_of_scope(self):
        diags = lint_source(
            "import time\n"
            "def handle():\n"
            "    time.sleep(1)\n",
            select={"AS001"},
        )
        assert diags == []

    def test_inline_suppression(self):
        diags = lint_source(
            "import time\n"
            "async def handle():\n"
            "    time.sleep(1)  # saadlint: disable=AS001\n",
            select={"AS001"},
        )
        assert diags == []


class TestRC001:
    GUARDED = (
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self.total += 1\n"
    )

    def test_unguarded_write_is_flagged(self):
        diags = lint_source(
            self.GUARDED + "    def reset(self):\n        self.total = 0\n",
            select={"RC001"},
        )
        assert [(d.rule_id, d.line) for d in diags] == [("RC001", 10)]
        assert "total" in diags[0].message and "_lock" in diags[0].message

    def test_writes_under_the_lock_are_clean(self):
        assert lint_source(self.GUARDED, select={"RC001"}) == []

    def test_constructor_writes_are_exempt(self):
        # __init__ assigns self.total without the lock; no finding.
        diags = lint_source(self.GUARDED, select={"RC001"})
        assert diags == []

    def test_reads_are_not_flagged(self):
        diags = lint_source(
            self.GUARDED + "    def peek(self):\n        return self.total\n",
            select={"RC001"},
        )
        assert diags == []

    def test_unguarded_attributes_are_free(self):
        diags = lint_source(
            self.GUARDED + "    def tag(self):\n        self.label = 'x'\n",
            select={"RC001"},
        )
        assert diags == []

    def test_spawn_target_is_named_in_message(self):
        diags = lint_source(
            self.GUARDED
            + "    def _spin(self):\n"
            + "        self.total -= 1\n"
            + "    def start(self):\n"
            + "        threading.Thread(target=self._spin).start()\n",
            select={"RC001"},
        )
        assert len(diags) == 1
        assert "thread" in diags[0].message.lower()


class TestDL001:
    def test_opposite_nested_order_flags_both_sites(self):
        diags = lint_source(
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.Lock()\n"
            "    def ab(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
            "    def ba(self):\n"
            "        with self.b:\n"
            "            with self.a:\n"
            "                pass\n",
            select={"DL001"},
        )
        assert [d.rule_id for d in diags] == ["DL001", "DL001"]
        assert {d.line for d in diags} == {8, 12}

    def test_consistent_order_is_clean(self):
        diags = lint_source(
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.Lock()\n"
            "    def one(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
            "    def two(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n",
            select={"DL001"},
        )
        assert diags == []

    def test_cycle_through_a_call_under_lock(self):
        diags = lint_source(
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.Lock()\n"
            "    def _grab_b(self):\n"
            "        with self.b:\n"
            "            pass\n"
            "    def fwd(self):\n"
            "        with self.a:\n"
            "            self._grab_b()\n"
            "    def rev(self):\n"
            "        with self.b:\n"
            "            with self.a:\n"
            "                pass\n",
            select={"DL001"},
        )
        assert diags and all(d.rule_id == "DL001" for d in diags)
        joined = " ".join(d.message for d in diags)
        assert "Box.a" in joined and "Box.b" in joined


class TestSP001:
    def test_lock_in_process_args(self):
        diags = lint_source(
            "import threading\n"
            "import multiprocessing as mp\n"
            "def child(payload):\n"
            "    pass\n"
            "def launch(items):\n"
            "    guard = threading.Lock()\n"
            "    mp.Process(target=child, args=(items, guard)).start()\n",
            select={"SP001"},
        )
        assert [(d.rule_id, d.line) for d in diags] == [("SP001", 7)]
        assert "guard" in diags[0].message

    def test_plain_data_payload_is_clean(self):
        diags = lint_source(
            "import multiprocessing as mp\n"
            "def child(payload):\n"
            "    pass\n"
            "def launch(items):\n"
            "    mp.Process(target=child, args=(list(items),)).start()\n",
            select={"SP001"},
        )
        assert diags == []

    def test_mutated_module_table_sent_over_pipe(self):
        diags = lint_source(
            "import multiprocessing as mp\n"
            "CACHE = {}\n"
            "def remember(key, value):\n"
            "    CACHE[key] = value\n"
            "def ship():\n"
            "    parent, child = mp.Pipe()\n"
            "    parent.send(CACHE)\n",
            select={"SP001"},
        )
        assert [(d.rule_id, d.line) for d in diags] == [("SP001", 7)]
        assert "CACHE" in diags[0].message

    def test_immutable_module_constant_is_clean(self):
        diags = lint_source(
            "import multiprocessing as mp\n"
            "LIMIT = 64\n"
            "def ship():\n"
            "    parent, child = mp.Pipe()\n"
            "    parent.send(LIMIT)\n",
            select={"SP001"},
        )
        assert diags == []


class TestWP001:
    def test_pack_without_unpack(self):
        diags = lint_source(
            "import struct\n"
            "HEADER = struct.Struct('<IH')\n"
            "def emit(a, b):\n"
            "    return HEADER.pack(a, b)\n",
            select={"WP001"},
        )
        assert len(diags) == 1 and diags[0].rule_id == "WP001"

    def test_matching_unpack_is_clean(self):
        diags = lint_source(
            "import struct\n"
            "HEADER = struct.Struct('<IH')\n"
            "def emit(a, b):\n"
            "    return HEADER.pack(a, b)\n"
            "def parse(blob):\n"
            "    return HEADER.unpack(blob)\n",
            select={"WP001"},
        )
        assert diags == []

    def test_byte_order_prefix_is_ignored_when_matching(self):
        diags = _lint_tree({
            "writer.py": (
                "import struct\n"
                "def emit(a, b):\n"
                "    return struct.pack('<IH', a, b)\n"
            ),
            "reader.py": (
                "import struct\n"
                "def parse(blob):\n"
                "    return struct.unpack('!IH', blob)\n"
            ),
        }, select={"WP001"})
        assert diags == []

    def test_unpack_may_live_in_another_file(self):
        diags = _lint_tree({
            "writer.py": (
                "import struct\n"
                "RECORD = struct.Struct('<QQ')\n"
                "def emit(a, b):\n"
                "    return RECORD.pack(a, b)\n"
            ),
            "reader.py": (
                "import struct\n"
                "RECORD = struct.Struct('<QQ')\n"
                "def parse(blob):\n"
                "    return RECORD.unpack(blob)\n"
            ),
        }, select={"WP001"})
        assert diags == []

    def test_factory_built_format_matches_reader(self):
        diags = lint_source(
            "import struct\n"
            "READER = struct.Struct('<Hi')\n"
            "def table_format(n):\n"
            "    return struct.Struct('<' + 'Hi' * n)\n"
            "def emit(rows, n):\n"
            "    return table_format(n).pack(*rows)\n"
            "def parse(blob):\n"
            "    return READER.unpack(blob)\n",
            select={"WP001"},
        )
        assert diags == []
