"""Tests for saadlint: every rule positive + negative, the seeded-defect
fixture tree, baselines, suppressions, reporters, and the CLI."""

import json
import os

import pytest

from repro.core import LogPointRegistry
from repro.instrument import (
    Baseline,
    Diagnostic,
    RULES,
    lint_source,
    render_json,
    render_rule_table,
    render_text,
    run_lint,
)
from repro.instrument.cli import main as lint_cli

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
DEFECT_TREE = os.path.join(FIXTURES, "defect_tree")
DRIFT_TREE = os.path.join(FIXTURES, "drift_tree")
CLEAN_TREE = os.path.join(FIXTURES, "clean_tree")

#: Inventory preamble giving tests resolvable ``lps.<name>`` entries.
INVENTORY = '''
class Points:
    def __init__(self, saad):
        def lp(template):
            return saad.logpoints.register(template)
        self.alpha = lp("alpha event %s")
        self.beta = lp("beta event %d")
'''


def rules_of(diagnostics):
    return sorted(d.rule_id for d in diagnostics)


class TestLP001:
    def test_dynamic_template_flagged(self):
        diags = lint_source("def f(log, msg):\n    log.info(build(msg))\n")
        assert rules_of(diags) == ["LP001"]
        assert "not statically resolvable" in diags[0].message

    def test_unknown_inventory_attribute_flagged(self):
        diags = lint_source(
            "def f(log, lps):\n    log.info(lps.missing.template)\n"
        )
        assert rules_of(diags) == ["LP001"]
        assert "missing" in diags[0].message

    def test_literal_fstring_percent_and_inventory_ok(self):
        source = INVENTORY + (
            "def f(log, lps, x):\n"
            '    log.info("plain %s", x)\n'
            '    log.debug(f"got {x!r} items")\n'
            '    log.warn("count %d" % x)\n'
            "    log.error(lps.alpha.template, x, lpid=lps.alpha.lpid)\n"
        )
        assert lint_source(source) == []


class TestLP002:
    def test_duplicate_inventory_definition_flagged(self):
        source = INVENTORY.replace(
            'self.beta = lp("beta event %d")',
            'self.beta = lp("alpha event %s")',
        )
        diags = lint_source(source)
        assert rules_of(diags) == ["LP002"]
        assert "alpha event %s" in diags[0].message

    def test_duplicate_literal_templates_flagged(self):
        diags = lint_source(
            'def f(log):\n    log.info("same text")\n\n'
            'def g(log):\n    log.debug("same text")\n'
        )
        assert rules_of(diags) == ["LP002"]

    def test_same_inventory_point_at_two_sites_ok(self):
        source = INVENTORY + (
            "def f(log, lps):\n"
            "    log.info(lps.alpha.template, 1, lpid=lps.alpha.lpid)\n"
            "def g(log, lps):\n"
            "    log.info(lps.alpha.template, 2, lpid=lps.alpha.lpid)\n"
        )
        assert lint_source(source) == []


class TestLP003:
    def test_template_lpid_mismatch_flagged(self):
        source = INVENTORY + (
            "def f(log, lps):\n"
            "    log.info(lps.alpha.template, lpid=lps.beta.lpid)\n"
        )
        diags = lint_source(source)
        assert rules_of(diags) == ["LP003"]
        assert "alpha" in diags[0].message and "beta" in diags[0].message

    def test_colliding_integer_lpids_flagged(self):
        diags = lint_source(
            'def f(log):\n'
            '    log.info("a", lpid=3)\n'
            '    log.info("b", lpid=3)\n'
        )
        assert rules_of(diags) == ["LP003"]
        assert "collides" in diags[0].message

    def test_out_of_order_integer_lpids_flagged(self):
        diags = lint_source(
            'def f(log):\n'
            '    log.info("a", lpid=5)\n'
            '    log.info("b", lpid=2)\n'
        )
        assert rules_of(diags) == ["LP003"]
        assert "source-order" in diags[0].message

    def test_consistent_lpids_ok(self):
        assert lint_source(
            'def f(log):\n'
            '    log.info("a", lpid=0)\n'
            '    log.info("b", lpid=1)\n'
        ) == []


class TestLP004:
    def _registry(self):
        with open(os.path.join(DRIFT_TREE, "registry.json")) as handle:
            return LogPointRegistry.from_json(handle.read())

    def test_drift_both_directions_flagged(self):
        result = run_lint(
            [DRIFT_TREE], registry=self._registry(), registry_label="registry.json"
        )
        by_rule = {}
        for diag in result.diagnostics:
            by_rule.setdefault(diag.rule_id, []).append(diag)
        assert set(by_rule) == {"LP004"}
        messages = " | ".join(d.message for d in by_rule["LP004"])
        assert "added template %d" in messages  # in source, not registry
        assert "removed template" in messages  # in registry, not source
        assert len(by_rule["LP004"]) == 2

    def test_matching_registry_ok(self):
        registry = LogPointRegistry()
        registry.register("kept template %s")
        registry.register("added template %d")
        result = run_lint([DRIFT_TREE], registry=registry)
        assert result.diagnostics == []

    def test_no_registry_skips_rule(self):
        assert run_lint([DRIFT_TREE]).diagnostics == []


class TestST001:
    def test_run_class_without_context_flagged(self):
        diags = lint_source(
            "class Stage:\n"
            "    def run(self):\n"
            '        self.log.info("working")\n'
        )
        assert "ST001" in rules_of(diags)

    def test_dequeue_loop_without_context_flagged(self):
        diags = lint_source(
            "def consumer(log, task_queue):\n"
            "    while True:\n"
            "        task = task_queue.get()\n"
            '        log.debug("handling %s", task)\n'
        )
        assert rules_of(diags) == ["ST001"]

    def test_run_class_with_context_ok(self):
        assert lint_source(
            "class Stage:\n"
            "    def run(self):\n"
            '        self.runtime.set_context("Stage")\n'
            '        self.log.info("working")\n'
        ) == []

    def test_run_class_without_logs_ok(self):
        assert lint_source(
            "class Stepper:\n"
            "    def run(self):\n"
            "        self.step()\n"
        ) == []

    def test_sim_driver_run_with_args_ignored(self):
        # run(self, until) is a simulation driver, not a thread body.
        assert lint_source(
            "class Cluster:\n"
            "    def run(self, until):\n"
            '        self.log.info("stepping to %s", until)\n'
        ) == []


class TestST002:
    def test_log_before_context_flagged(self):
        diags = lint_source(
            "def stage(runtime, log):\n"
            '    log.debug("early")\n'
            '    runtime.set_context("S")\n'
            '    log.debug("late")\n'
        )
        assert rules_of(diags) == ["ST002"]
        assert diags[0].line == 2

    def test_log_after_context_ok(self):
        assert lint_source(
            "def stage(runtime, log):\n"
            '    runtime.set_context("S")\n'
            '    log.debug("fine")\n'
        ) == []

    def test_branch_bypassing_context_flagged(self):
        diags = lint_source(
            "def stage(runtime, log, fast):\n"
            "    if not fast:\n"
            '        runtime.set_context("S")\n'
            '    log.debug("maybe uncovered")\n'
        )
        assert rules_of(diags) == ["ST002"]

    def test_function_without_context_not_analyzed(self):
        # Helpers may be called from within a stage; only functions that
        # manage context themselves are checked.
        assert lint_source('def helper(log):\n    log.debug("x")\n') == []


class TestST003:
    def test_exception_path_bypassing_end_task_flagged(self):
        diags = lint_source(
            "def stage(runtime):\n"
            '    runtime.set_context("S")\n'
            "    risky()\n"
            "    runtime.end_task()\n"
        )
        assert rules_of(diags) == ["ST003"]

    def test_end_task_in_finally_ok(self):
        assert lint_source(
            "def stage(runtime):\n"
            '    runtime.set_context("S")\n'
            "    try:\n"
            "        risky()\n"
            "    finally:\n"
            "        runtime.end_task()\n"
        ) == []

    def test_catch_all_handler_ending_task_ok(self):
        assert lint_source(
            "def stage(runtime):\n"
            '    runtime.set_context("S")\n'
            "    try:\n"
            "        risky()\n"
            "    except Exception:\n"
            "        pass\n"
            "    runtime.end_task()\n"
        ) == []

    def test_inferred_termination_not_flagged(self):
        # No end_task at all: termination is inferred (set_context
        # re-entry / thread exit), the paper's default — not a defect.
        assert lint_source(
            "def stage(runtime, log):\n"
            '    runtime.set_context("S")\n'
            "    risky()\n"
        ) == []


class TestCC001:
    def test_time_sleep_in_generator_flagged(self):
        diags = lint_source(
            "import time\n"
            "def handler(env):\n"
            "    yield env.timeout(1)\n"
            "    time.sleep(0.1)\n"
        )
        assert rules_of(diags) == ["CC001"]

    def test_aliased_sleep_import_flagged(self):
        diags = lint_source(
            "from time import sleep as snooze\n"
            "def handler(env):\n"
            "    yield env.timeout(1)\n"
            "    snooze(2)\n"
        )
        assert rules_of(diags) == ["CC001"]

    def test_stdlib_queue_in_generator_flagged(self):
        diags = lint_source(
            "import queue\n"
            "def handler(env):\n"
            "    q = queue.Queue()\n"
            "    item = q.get()\n"
            "    yield env.timeout(1)\n"
        )
        assert rules_of(diags) == ["CC001"]
        assert "queue.Queue" in diags[0].message

    def test_simqueue_get_ok(self):
        assert lint_source(
            "def handler(env, packets):\n"
            "    item = yield packets.get()\n"
        ) == []

    def test_sleep_outside_handler_code_ok(self):
        # Plain functions are not event handlers; blocking is fine there.
        assert lint_source(
            "import time\n"
            "def warmup():\n"
            "    time.sleep(0.1)\n"
        ) == []

    def test_simsys_module_checked_even_without_yield(self):
        diags = lint_source(
            "import time\ndef tick():\n    time.sleep(1)\n",
            path="simsys/engine.py",
        )
        assert rules_of(diags) == ["CC001"]


class TestTM001:
    def test_augmented_write_flagged(self):
        diags = lint_source(
            "def probe(detector):\n"
            "    detector.tasks_seen += 1\n"
        )
        assert rules_of(diags) == ["TM001"]
        assert "tasks_seen" in diags[0].message

    def test_plain_assignment_flagged(self):
        diags = lint_source(
            "def reset(stream):\n"
            "    stream.bytes_streamed = 0\n"
        )
        assert rules_of(diags) == ["TM001"]

    def test_self_write_flagged(self):
        diags = lint_source(
            "class Shadow:\n"
            "    def bump(self):\n"
            "        self.windows_closed += 1\n"
        )
        assert rules_of(diags) == ["TM001"]

    def test_private_backing_field_ok(self):
        # The blessed pattern: owning classes mutate the private field.
        assert lint_source(
            "class Detector:\n"
            "    def observe(self):\n"
            "        self._tasks_seen += 1\n"
        ) == []

    def test_unrelated_attribute_ok(self):
        assert lint_source(
            "def track(stats):\n"
            "    stats.tasks_started += 1\n"
        ) == []

    def test_read_is_not_a_mutation(self):
        assert lint_source(
            "def report(detector):\n"
            "    return detector.tasks_seen\n"
        ) == []

    def test_suppression_comment(self):
        assert lint_source(
            "def probe(detector):\n"
            "    detector.tasks_seen += 1  # saadlint: disable=TM001\n"
        ) == []


class TestTR001:
    def test_manual_span_in_generator_handler_flagged(self):
        diags = lint_source(
            "def handler(env, tracer):\n"
            "    tracer.begin_span('work')\n"
            "    yield env.timeout(1.0)\n"
        )
        assert rules_of(diags) == ["TR001"]
        assert "tracer.begin_span" in diags[0].message

    def test_manual_finish_in_simsys_flagged(self):
        diags = lint_source(
            "def tick(self, task):\n"
            "    self.tracer.finish(task, [])\n",
            path="simsys/engine.py",
        )
        assert rules_of(diags) == ["TR001"]

    def test_tracker_plumbing_out_of_scope(self):
        # Non-generator code outside simsys (the tracker itself) may
        # legitimately drive the tracer.
        assert lint_source(
            "def _finalize(self, synopsis, events):\n"
            "    self.tracer.finish(synopsis, events)\n"
        ) == []

    def test_non_span_tracer_methods_ok(self):
        assert lint_source(
            "def handler(env, tracer):\n"
            "    yield env.timeout(1.0)\n"
            "    tracer.set_model(None)\n"
            "    tracer.traces()\n"
        ) == []

    def test_non_tracer_receiver_ok(self):
        assert lint_source(
            "def handler(env, journal, task):\n"
            "    journal.record(task)\n"
            "    yield env.timeout(1.0)\n"
        ) == []

    def test_advisory_severity(self):
        diags = lint_source(
            "def handler(env, tracer):\n"
            "    tracer.record(object())\n"
            "    yield env.timeout(1.0)\n"
        )
        assert diags[0].severity_name == "info"

    def test_suppression_comment(self):
        assert lint_source(
            "def handler(env, tracer):\n"
            "    tracer.record(x)  # saadlint: disable=TR001\n"
            "    yield env.timeout(1.0)\n"
        ) == []


class TestSH001:
    def test_direct_construction_in_shard_package_flagged(self):
        diags = lint_source(
            "def boot(model):\n"
            "    return AnomalyDetector(model)\n",
            path="repro/shard/worker.py",
        )
        assert rules_of(diags) == ["SH001"]
        assert "shard_detector" in diags[0].hint

    def test_attribute_form_flagged(self):
        diags = lint_source(
            "import repro.core.detector as det\n"
            "def boot(model):\n"
            "    return det.AnomalyDetector(model)\n",
            path="shard/worker.py",
        )
        assert rules_of(diags) == ["SH001"]

    def test_factory_call_ok(self):
        assert lint_source(
            "from repro.shard.factory import shard_detector\n"
            "def boot(model):\n"
            "    return shard_detector(model, shard_id=2)\n",
            path="repro/shard/worker.py",
        ) == []

    def test_outside_shard_package_out_of_scope(self):
        # Single-process deployments construct detectors directly; the
        # factory contract only binds code living in a shard package.
        assert lint_source(
            "def boot(model):\n"
            "    return AnomalyDetector(model)\n",
            path="repro/core/pipeline.py",
        ) == []

    def test_advisory_severity(self):
        diags = lint_source(
            "def boot(model):\n"
            "    return AnomalyDetector(model)\n",
            path="shard/worker.py",
        )
        assert diags[0].severity_name == "info"

    def test_suppression_comment(self):
        assert lint_source(
            "def boot(model):\n"
            "    return AnomalyDetector(model)  # saadlint: disable=SH001\n",
            path="shard/worker.py",
        ) == []


@pytest.mark.lint
class TestFL001:
    def test_bare_partition_call_in_fleet_package_flagged(self):
        diags = lint_source(
            "from repro.shard.partition import shard_for\n"
            "def route(stage_id, members):\n"
            "    return shard_for(stage_id, len(members))\n",
            path="repro/fleet/router.py",
        )
        assert rules_of(diags) == ["FL001"]
        assert "HashRing" in diags[0].hint

    def test_attribute_form_flagged(self):
        diags = lint_source(
            "import repro.shard.partition as partition\n"
            "def table_for(members):\n"
            "    return partition.shard_table(len(members))\n",
            path="fleet/router.py",
        )
        assert rules_of(diags) == ["FL001"]

    def test_ring_routing_ok(self):
        assert lint_source(
            "def route(ring, stage_id):\n"
            "    return ring.owner(stage_id), ring.table()\n",
            path="repro/fleet/router.py",
        ) == []

    def test_out_of_scope_package_ignored(self):
        # The shard coordinator itself may build the legacy table.
        assert lint_source(
            "def table_for(shards):\n"
            "    return shard_table(shards)\n",  # noqa fixture
            path="repro/shard/partition_compat.py",
        ) == []

    def test_advisory_severity(self):
        diags = lint_source(
            "def route(stage_id, n):\n"
            "    return shard_for(stage_id, n)\n",
            path="fleet/router.py",
        )
        assert diags[0].severity_name == "warning"

    def test_suppression_comment(self):
        assert lint_source(
            "def route(stage_id, n):\n"
            "    return shard_for(stage_id, n)  # saadlint: disable=FL001\n",
            path="fleet/router.py",
        ) == []


class TestCP001:
    def test_observe_loop_in_shard_package_flagged(self):
        diags = lint_source(
            "def drain(detector, trace):\n"
            "    for synopsis in trace:\n"
            "        detector.observe(synopsis)\n",
            path="repro/shard/worker.py",
        )
        assert rules_of(diags) == ["CP001"]
        assert "detector.observe()" in diags[0].message
        assert "observe_batch" in diags[0].hint

    def test_classify_loop_in_benchmark_file_flagged(self):
        diags = lint_source(
            "def leg(model, rows):\n"
            "    while rows:\n"
            "        model.classify(*rows.pop())\n",
            path="benchmarks/test_throughput.py",
        )
        assert rules_of(diags) == ["CP001"]

    def test_outside_shard_or_bench_out_of_scope(self):
        # Application code feeding a detector object-by-object is the
        # documented scalar API; only hot ingest paths are held to CP001.
        assert lint_source(
            "def drain(detector, trace):\n"
            "    for synopsis in trace:\n"
            "        detector.observe(synopsis)\n",
            path="repro/core/pipeline.py",
        ) == []

    def test_batch_call_ok(self):
        assert lint_source(
            "def drain(detector, blobs):\n"
            "    for blob in blobs:\n"
            "        detector.observe_batch(blob)\n",
            path="repro/shard/worker.py",
        ) == []

    def test_call_outside_loop_ok(self):
        assert lint_source(
            "def check(detector, synopsis):\n"
            "    detector.observe(synopsis)\n",
            path="repro/shard/worker.py",
        ) == []

    def test_nested_def_resets_loop_scope(self):
        # A callback defined inside a loop body runs once per call, not
        # per iteration; the rule must not fire on its body.
        assert lint_source(
            "def build(detector, traces):\n"
            "    sinks = []\n"
            "    for trace in traces:\n"
            "        def sink(synopsis):\n"
            "            detector.observe(synopsis)\n"
            "        sinks.append(sink)\n"
            "    return sinks\n",
            path="repro/shard/worker.py",
        ) == []

    def test_advisory_severity(self):
        diags = lint_source(
            "def drain(detector, trace):\n"
            "    for synopsis in trace:\n"
            "        detector.observe(synopsis)\n",
            path="shard/worker.py",
        )
        assert diags[0].severity_name == "info"

    def test_suppression_comment(self):
        assert lint_source(
            "def drain(detector, trace):\n"
            "    for synopsis in trace:\n"
            "        detector.observe(synopsis)  # saadlint: disable=CP001\n",
            path="shard/worker.py",
        ) == []


class TestSeededDefectTree:
    """The analyzer must find every planted defect — and nothing else."""

    EXPECTED = {
        ("LP001", "seeded_sim.py", 19),
        ("LP003", "seeded_sim.py", 25),
        ("ST002", "seeded_sim.py", 31),
        ("ST003", "seeded_sim.py", 37),
        ("ST001", "seeded_sim.py", 42),  # run-method heuristic
        ("ST001", "seeded_sim.py", 43),  # dequeue-loop heuristic
        ("CC001", "seeded_sim.py", 51),
        ("TM001", "seeded_sim.py", 55),
        ("TR001", "seeded_sim.py", 59),
        ("TR001", "seeded_sim.py", 61),
        ("LP002", "logpoints.py", 12),
        ("SH001", "seeded_shard.py", 14),
        ("SH001", "seeded_shard.py", 20),
        ("CP001", "seeded_shard.py", 31),
        ("FL001", "seeded_fleet.py", 13),
        ("FL001", "seeded_fleet.py", 19),
        ("CP001", "seeded_bench.py", 14),
        ("AS001", "seeded_concurrency.py", 23),  # handle -> _drain -> sleep
        ("RC001", "seeded_concurrency.py", 42),  # _spin writes sans lock
        ("DL001", "seeded_concurrency.py", 53),  # _alock -> _block
        ("DL001", "seeded_concurrency.py", 58),  # _block -> _alock
        ("SP001", "seeded_spawn.py", 30),  # Lock in Process args
        ("SP001", "seeded_spawn.py", 33),  # interning table over Pipe
        ("WP001", "seeded_wire.py", 20),  # TRAILER packed, never unpacked
        ("SL001", "seeded_wire.py", 15),  # disable=WP999 typo
    }

    def test_finds_every_planted_defect(self):
        result = run_lint([DEFECT_TREE])
        found = {
            (d.rule_id, os.path.basename(d.path), d.line)
            for d in result.diagnostics
        }
        assert found == self.EXPECTED

    def test_clean_control_tree_stays_clean(self):
        result = run_lint([CLEAN_TREE])
        assert result.diagnostics == []


class TestSuppression:
    def test_inline_disable_comment(self):
        diags = lint_source(
            "def f(log, msg):\n"
            "    log.info(build(msg))  # saadlint: disable=LP001\n"
        )
        assert diags == []

    def test_disable_only_listed_rule(self):
        diags = lint_source(
            "def f(log, msg):\n"
            "    log.info(build(msg))  # saadlint: disable=ST002\n"
        )
        assert rules_of(diags) == ["LP001"]

    def test_select_and_ignore(self):
        source = "def f(log, msg):\n    log.info(build(msg))\n"
        assert lint_source(source, select=["ST002"]) == []
        assert lint_source(source, ignore=["LP001"]) == []
        assert rules_of(lint_source(source, select=["LP001"])) == ["LP001"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            lint_source("x = 1\n", select=["LP999"])


class TestBaseline:
    def test_roundtrip_filters_known_findings(self, tmp_path):
        result = run_lint([DEFECT_TREE])
        assert result.diagnostics
        baseline = Baseline.from_result(result)
        path = str(tmp_path / "baseline.json")
        baseline.save(path)
        filtered, unmatched = Baseline.load(path).apply(result)
        assert filtered.diagnostics == []
        assert unmatched == []
        assert len(filtered.suppressed) == len(result.diagnostics)

    def test_fixed_findings_reported_as_unmatched(self):
        result = run_lint([DEFECT_TREE])
        baseline = Baseline.from_result(result)
        clean = run_lint([CLEAN_TREE])
        filtered, unmatched = baseline.apply(clean)
        assert filtered.diagnostics == []
        assert len(unmatched) == len(baseline.fingerprints)

    def test_new_findings_not_masked(self):
        clean = run_lint([CLEAN_TREE])
        baseline = Baseline.from_result(clean)  # empty baseline
        result = run_lint([DEFECT_TREE])
        filtered, _ = baseline.apply(result)
        assert len(filtered.diagnostics) == len(result.diagnostics)

    def test_fingerprint_stable_under_line_drift(self):
        a = Diagnostic("LP001", "f.py", 10, 0, "same message")
        b = Diagnostic("LP001", "f.py", 99, 4, "same message")
        assert a.fingerprint() == b.fingerprint()
        c = Diagnostic("LP002", "f.py", 10, 0, "same message")
        assert a.fingerprint() != c.fingerprint()


class TestReporters:
    def test_text_report_lists_findings_and_summary(self):
        result = run_lint([DEFECT_TREE])
        text = render_text(result)
        assert "seeded_sim.py:19" in text
        assert "LP001" in text and "hint:" in text
        assert "finding(s)" in text

    def test_json_report_parses(self):
        result = run_lint([DEFECT_TREE])
        payload = json.loads(render_json(result))
        assert payload["tool"] == "saadlint"
        assert payload["clean"] is False
        assert payload["counts"]["ST001"] == 2
        assert all("fingerprint" in f for f in payload["findings"])

    def test_rule_table_covers_all_rules(self):
        table = render_rule_table()
        for rule_id in RULES:
            assert rule_id in table


class TestCLI:
    def test_clean_tree_exits_zero(self, capsys):
        code = lint_cli([CLEAN_TREE])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = lint_cli([DEFECT_TREE, "--no-baseline"])
        assert code == 1
        assert "LP001" in capsys.readouterr().out

    def test_json_flag(self, capsys):
        code = lint_cli([DEFECT_TREE, "--no-baseline", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["CC001"] == 1

    def test_missing_path_exits_two(self):
        assert lint_cli(["does/not/exist"]) == 2

    def test_unknown_rule_exits_nonzero(self):
        with pytest.raises(SystemExit):
            lint_cli([DEFECT_TREE, "--select", "NOPE1"])

    def test_registry_drift_via_cli(self, capsys):
        code = lint_cli(
            [DRIFT_TREE, "--registry", os.path.join(DRIFT_TREE, "registry.json")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "LP004" in out

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        baseline = str(tmp_path / "bl.json")
        assert lint_cli([DEFECT_TREE, "--write-baseline", "--baseline", baseline]) == 0
        capsys.readouterr()
        code = lint_cli([DEFECT_TREE, "--baseline", baseline])
        assert code == 0
        out = capsys.readouterr().out
        assert "suppressed" in out

    def test_select_restricts_rules(self, capsys):
        code = lint_cli([DEFECT_TREE, "--no-baseline", "--select", "CC001", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["counts"]) == {"CC001"}
