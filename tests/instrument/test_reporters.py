"""Reporter output contracts and suppression-comment parsing edge cases."""

import json

from repro.instrument.diagnostics import (
    Diagnostic,
    ERROR,
    LintResult,
    RULES,
    WARNING,
)
from repro.instrument.facts import parse_suppressions, suppressed_rules
from repro.instrument.lint import lint_source
from repro.instrument.reporters import (
    render_json,
    render_rule_table,
    render_text,
)


def _sample_result():
    result = LintResult()
    result.files_scanned = 2
    result.diagnostics = [
        Diagnostic(
            rule_id="AS001", path="svc/gateway.py", line=23, col=8,
            message="blocking call time.sleep() reachable from async handle()",
            hint="offload via asyncio.to_thread or use an async equivalent",
            severity=ERROR,
        ),
        Diagnostic(
            rule_id="RC001", path="svc/counter.py", line=42, col=8,
            message="attribute 'total' written without holding SharedCounter._lock",
            severity=WARNING,
        ),
    ]
    result.suppressed = [
        Diagnostic(
            rule_id="LP002", path="svc/gateway.py", line=7, col=0,
            message="duplicate template", severity=WARNING,
        ),
    ]
    result.parse_errors = ["svc/broken.py: invalid syntax (line 3)"]
    return result


class TestJsonReporter:
    GOLDEN = {
        "tool": "saadlint",
        "files_scanned": 2,
        "findings": [
            {
                "rule": "AS001",
                "severity": "error",
                "path": "svc/gateway.py",
                "line": 23,
                "col": 8,
                "message": (
                    "blocking call time.sleep() reachable from async handle()"
                ),
                "hint": (
                    "offload via asyncio.to_thread or use an async equivalent"
                ),
                "fingerprint": "0469d054a421a759",
            },
            {
                "rule": "RC001",
                "severity": "warning",
                "path": "svc/counter.py",
                "line": 42,
                "col": 8,
                "message": (
                    "attribute 'total' written without holding "
                    "SharedCounter._lock"
                ),
                "hint": "",
                "fingerprint": "1b6686cdb5e2645d",
            },
        ],
        "suppressed": [
            {
                "rule": "LP002",
                "severity": "warning",
                "path": "svc/gateway.py",
                "line": 7,
                "col": 0,
                "message": "duplicate template",
                "hint": "",
                "fingerprint": "ea8bb2bc67bb1776",
            },
        ],
        "parse_errors": ["svc/broken.py: invalid syntax (line 3)"],
        "counts": {"AS001": 1, "RC001": 1},
        "clean": False,
    }

    def test_schema_golden(self):
        assert json.loads(render_json(_sample_result())) == self.GOLDEN

    def test_output_is_deterministic(self):
        assert render_json(_sample_result()) == render_json(_sample_result())

    def test_clean_result_shape(self):
        result = LintResult()
        result.files_scanned = 5
        payload = json.loads(render_json(result))
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["counts"] == {}


class TestTextReporter:
    def test_locations_hints_and_summary(self):
        text = render_text(_sample_result())
        assert "svc/gateway.py:23:8: error AS001" in text
        assert "    hint: offload via asyncio.to_thread" in text
        assert "parse error: svc/broken.py" in text
        assert "2 finding(s) in 2 file(s) [AS001:1, RC001:1], 1 suppressed" in text

    def test_verbose_lists_suppressed(self):
        quiet = render_text(_sample_result(), verbose=False)
        loud = render_text(_sample_result(), verbose=True)
        assert "suppressed findings:" not in quiet
        assert "suppressed findings:" in loud
        assert "svc/gateway.py:7: LP002 duplicate template" in loud

    def test_rule_table_covers_registry(self):
        table = render_rule_table()
        for rule_id in RULES:
            assert rule_id in table


class TestSuppressionParsing:
    def test_multiple_rules_on_one_line(self):
        found = parse_suppressions(
            ["q.put(x)  # saadlint: disable=ST001, lp002,CC001"]
        )
        assert found == {1: {"ST001", "LP002", "CC001"}}

    def test_trailing_comment_after_rule_list(self):
        found = parse_suppressions(
            ["q.put(x)  # saadlint: disable=ST001  # legacy shim, see #88"]
        )
        assert found == {1: {"ST001"}}

    def test_prose_mentioning_syntax_is_not_a_directive(self):
        found = parse_suppressions(
            ['"""Use ``# saadlint: disable=RULE[,RULE]`` to mute a line."""']
        )
        assert found == {}

    def test_non_alnum_token_invalidates_line(self):
        assert parse_suppressions(["x  # saadlint: disable=ST-001"]) == {}

    def test_empty_rule_list_is_ignored(self):
        assert parse_suppressions(["x  # saadlint: disable="]) == {}

    def test_suppressed_rules_line_bounds(self):
        lines = ["a = 1", "b = 2  # saadlint: disable=TM001"]
        assert suppressed_rules(lines, 2) == {"TM001"}
        assert suppressed_rules(lines, 1) == set()
        assert suppressed_rules(lines, 99) == set()


class TestUnknownRuleWarning:
    def test_unknown_rule_id_flags_sl001(self):
        diags = lint_source(
            "import struct\n"
            "FMT = struct.Struct('<Q')  # saadlint: disable=WP999\n"
        )
        sl = [d for d in diags if d.rule_id == "SL001"]
        assert len(sl) == 1
        assert "WP999" in sl[0].message
        assert sl[0].line == 2

    def test_known_rule_ids_do_not_trigger_sl001(self):
        diags = lint_source(
            "import struct\n"
            "FMT = struct.Struct('<Q')  # saadlint: disable=WP001,SL001\n"
        )
        assert [d.rule_id for d in diags] == []

    def test_mixed_known_and_unknown_flags_only_unknown(self):
        diags = lint_source(
            "import struct\n"
            "FMT = struct.Struct('<Q')  # saadlint: disable=WP001,ZZ123\n"
        )
        assert [d.rule_id for d in diags] == ["SL001"]
        assert "ZZ123" in diags[0].message

    def test_sl001_itself_is_suppressible(self):
        diags = lint_source(
            "import struct\n"
            "FMT = struct.Struct('<Q')"
            "  # saadlint: disable=WP001,WP999,SL001\n"
        )
        assert diags == []
