"""Tests for the lightweight per-function CFG used by saadlint."""

import ast

import pytest

from repro.instrument.cfg import build_cfg


def _cfg_for(source: str):
    tree = ast.parse(source)
    func = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(func)


def _nodes_calling(cfg, name):
    def predicate(stmt):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == name:
                    return True
                if isinstance(func, ast.Attribute) and func.attr == name:
                    return True
        return False

    return cfg.nodes_matching(predicate)


class TestConstruction:
    def test_straight_line(self):
        cfg = _cfg_for("def f():\n    a()\n    b()\n")
        assert len(cfg.stmt_nodes()) == 2
        (a,) = sorted(_nodes_calling(cfg, "a"))
        (b,) = sorted(_nodes_calling(cfg, "b"))
        assert (b, False) in cfg.successors[a]

    def test_rejects_non_function(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1").body[0])

    def test_calls_get_exception_edges(self):
        cfg = _cfg_for("def f():\n    a()\n")
        (a,) = _nodes_calling(cfg, "a")
        assert (cfg.raise_exit, True) in cfg.successors[a]

    def test_pass_cannot_raise(self):
        cfg = _cfg_for("def f():\n    pass\n")
        (node,) = (n.index for n in cfg.stmt_nodes())
        assert (cfg.raise_exit, True) not in cfg.successors[node]

    def test_async_function_supported(self):
        cfg = _cfg_for("async def f():\n    await a()\n")
        assert len(cfg.stmt_nodes()) == 1


class TestBranching:
    SRC = """
def f(x):
    if x:
        a()
    else:
        b()
    c()
"""

    def test_if_both_arms_reach_join(self):
        cfg = _cfg_for(self.SRC)
        (a,) = _nodes_calling(cfg, "a")
        (b,) = _nodes_calling(cfg, "b")
        (c,) = _nodes_calling(cfg, "c")
        assert (c, False) in cfg.successors[a]
        assert (c, False) in cfg.successors[b]

    def test_if_without_else_skips(self):
        cfg = _cfg_for("def f(x):\n    if x:\n        a()\n    c()\n")
        (c,) = _nodes_calling(cfg, "c")
        reachable = cfg.reachable_avoiding(cfg.entry, _nodes_calling(cfg, "a"))
        assert c in reachable  # the false arm bypasses a()

    def test_return_cuts_fallthrough(self):
        cfg = _cfg_for("def f(x):\n    if x:\n        return\n    a()\n")
        (a,) = _nodes_calling(cfg, "a")
        assert cfg.exit in cfg.reachable_avoiding(cfg.entry, {a})


class TestLoops:
    def test_while_true_only_exits_via_break(self):
        cfg = _cfg_for(
            "def f():\n"
            "    while True:\n"
            "        if done():\n"
            "            break\n"
            "        a()\n"
            "    after()\n"
        )
        (after,) = _nodes_calling(cfg, "after")
        # after() is reachable (through break) ...
        assert after in cfg.reachable_avoiding(cfg.entry, set())
        # ... but only through the conditional that breaks.
        assert after not in cfg.reachable_avoiding(
            cfg.entry, _nodes_calling(cfg, "done")
        )

    def test_loop_body_repeats(self):
        cfg = _cfg_for("def f(xs):\n    for x in xs:\n        a()\n")
        (a,) = _nodes_calling(cfg, "a")
        # Back edge: a() reaches itself through the loop head.
        assert a in cfg.reachable_avoiding(a, set()) - {a} or any(
            a in cfg.reachable_avoiding(succ, set())
            for succ, _ in cfg.successors[a]
        )


class TestMatch:
    SRC = """
def f(cmd):
    match cmd:
        case "start":
            a()
        case "stop":
            b()
    c()
"""

    def test_case_bodies_branch_from_match_head(self):
        cfg = _cfg_for(self.SRC)
        (a,) = _nodes_calling(cfg, "a")
        (b,) = _nodes_calling(cfg, "b")
        (c,) = _nodes_calling(cfg, "c")
        assert (c, False) in cfg.successors[a]
        assert (c, False) in cfg.successors[b]
        # The arms are alternatives, not straight-line code.
        assert (b, False) not in cfg.successors[a]

    def test_no_case_falls_through(self):
        cfg = _cfg_for(self.SRC)
        (c,) = _nodes_calling(cfg, "c")
        blocked = _nodes_calling(cfg, "a") | _nodes_calling(cfg, "b")
        # With no irrefutable case, c() is reachable without entering
        # any case body.
        assert c in cfg.reachable_avoiding(cfg.entry, blocked)

    def test_wildcard_case_blocks_fallthrough(self):
        cfg = _cfg_for(
            "def f(cmd):\n"
            "    match cmd:\n"
            "        case 'start':\n"
            "            a()\n"
            "        case _:\n"
            "            b()\n"
            "    c()\n"
        )
        (c,) = _nodes_calling(cfg, "c")
        blocked = _nodes_calling(cfg, "a") | _nodes_calling(cfg, "b")
        assert c not in cfg.reachable_avoiding(cfg.entry, blocked)

    def test_guard_keeps_wildcard_refutable(self):
        cfg = _cfg_for(
            "def f(cmd):\n"
            "    match cmd:\n"
            "        case x if x:\n"
            "            a()\n"
            "    c()\n"
        )
        (c,) = _nodes_calling(cfg, "c")
        assert c in cfg.reachable_avoiding(cfg.entry, _nodes_calling(cfg, "a"))

    def test_st002_seen_through_match(self):
        from repro.instrument import lint_source

        diags = lint_source(
            "def f(runtime, log, cmd):\n"
            "    match cmd:\n"
            "        case 'init':\n"
            "            runtime.set_context('stage')\n"
            "        case _:\n"
            "            pass\n"
            "    log.info('working')\n",
            select={"ST002"},
        )
        # The wildcard arm reaches the log call without set_context.
        assert [d.rule_id for d in diags] == ["ST002"]

    def test_st002_clean_when_all_cases_set_context(self):
        from repro.instrument import lint_source

        diags = lint_source(
            "def f(runtime, log, cmd):\n"
            "    match cmd:\n"
            "        case 'init':\n"
            "            runtime.set_context('a')\n"
            "        case _:\n"
            "            runtime.set_context('b')\n"
            "    log.info('working')\n",
            select={"ST002"},
        )
        assert diags == []


class TestExceptions:
    def test_raise_in_body_reaches_handler(self):
        cfg = _cfg_for(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        cleanup()\n"
        )
        (work,) = _nodes_calling(cfg, "work")
        (cleanup,) = _nodes_calling(cfg, "cleanup")
        assert cleanup in cfg.reachable_avoiding(work, set())

    def test_uncaught_exception_escapes(self):
        cfg = _cfg_for("def f():\n    work()\n")
        (work,) = _nodes_calling(cfg, "work")
        assert cfg.reachable_via_exception_avoiding(work, cfg.raise_exit, set())

    def test_catch_all_stops_propagation(self):
        cfg = _cfg_for(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
            "    done()\n"
        )
        (work,) = _nodes_calling(cfg, "work")
        (done,) = _nodes_calling(cfg, "done")
        # done() itself can raise, so exclude it: nothing from the try
        # block escapes the catch-all handler.
        assert not cfg.reachable_via_exception_avoiding(
            cfg.entry, cfg.raise_exit, {done}
        )
        assert done in cfg.reachable_avoiding(work, set())

    def test_finally_on_exception_path(self):
        cfg = _cfg_for(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        release()\n"
        )
        (release,) = _nodes_calling(cfg, "release")
        # The exceptional exit is only reachable through the finally body.
        assert not cfg.reachable_via_exception_avoiding(
            cfg.entry, cfg.raise_exit, {release}
        )
        assert cfg.reachable_via_exception_avoiding(
            cfg.entry, cfg.raise_exit, set()
        )

    def test_specific_handler_still_propagates(self):
        cfg = _cfg_for(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert cfg.reachable_via_exception_avoiding(
            cfg.entry, cfg.raise_exit, set()
        )
