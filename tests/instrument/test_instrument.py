"""Tests for the static instrumentation tooling."""

import pytest

from repro.instrument import (
    build_registry,
    instrument_source,
    scan_source,
    verify_instrumentation,
)

SAMPLE = '''\
class Stage:
    def run(self):
        log.info("Receiving block blk_%s", bid)
        if empty:
            log.debug("Receiving empty packet for blk_%s", bid)
        log.error("IOException on blk_%s", bid)


def consumer(task_queue):
    while True:
        task = task_queue.get()
        log.debug("handling %s", task)
'''


class TestScanner:
    def test_finds_all_log_calls(self):
        result = scan_source(SAMPLE)
        templates = [c.template for c in result.log_calls]
        assert "Receiving block blk_%s" in templates
        assert "Receiving empty packet for blk_%s" in templates
        assert "IOException on blk_%s" in templates
        assert "handling %s" in templates

    def test_levels_inferred_from_method(self):
        result = scan_source(SAMPLE)
        by_template = {c.template: c for c in result.log_calls}
        from repro.loglib import DEBUG, ERROR, INFO

        assert by_template["Receiving block blk_%s"].level == INFO
        assert by_template["handling %s"].level == DEBUG
        assert by_template["IOException on blk_%s"].level == ERROR

    def test_finds_run_method_stage_candidate(self):
        result = scan_source(SAMPLE)
        runs = [c for c in result.stage_candidates if c.kind == "run-method"]
        assert len(runs) == 1
        assert runs[0].name == "Stage"

    def test_finds_dequeue_stage_candidate(self):
        result = scan_source(SAMPLE)
        dequeues = [c for c in result.stage_candidates if c.kind == "dequeue"]
        assert len(dequeues) == 1

    def test_fstring_template_normalized(self):
        result = scan_source('log.info(f"got {x} items")\n')
        assert result.log_calls[0].template == "got %s items"

    def test_non_literal_first_arg_skipped(self):
        result = scan_source("log.info(message)\n")
        assert result.log_calls == []

    def test_build_registry_assigns_source_order_ids(self):
        registry, result = build_registry(SAMPLE, "sample.py")
        assert len(registry) == 4
        assert registry.get(0).template == "Receiving block blk_%s"
        assert registry.get(0).source_file == "sample.py"


class TestRewriter:
    def test_rewrite_adds_lpids(self):
        instrumented, registry = instrument_source(SAMPLE)
        assert verify_instrumentation(instrumented)
        assert "lpid=0" in instrumented
        assert "lpid=3" in instrumented
        # The rewritten source still parses.
        compile(instrumented, "<test>", "exec")

    def test_rewrite_is_idempotent(self):
        once, _ = instrument_source(SAMPLE)
        twice, _ = instrument_source(once)
        assert once == twice

    def test_ids_match_registry(self):
        instrumented, registry = instrument_source(SAMPLE)
        # Each template's lpid appears on the same line as its call.
        for point in registry:
            assert f"lpid={point.lpid}" in instrumented

    def test_verify_detects_uninstrumented(self):
        assert not verify_instrumentation(SAMPLE)


class TestRoundTrip:
    def test_instrumented_code_logs_with_ids(self):
        """End-to-end: rewrite source, exec it against loglib, check ids."""
        source = 'log.info("hello %s", name)\nlog.debug("done")\n'
        instrumented, registry = instrument_source(source)
        from repro.loglib import DEBUG, LoggerRepository

        repo = LoggerRepository(root_level=DEBUG, clock=lambda: 0.0)
        calls = []

        class Interceptor:
            def on_log(self, call):
                calls.append(call.lpid)

        repo.add_interceptor(Interceptor())
        namespace = {"log": repo.get_logger("test"), "name": "world"}
        exec(instrumented, namespace)
        assert calls == [0, 1]
