"""Tests for the static instrumentation tooling."""

import dataclasses

import pytest

from repro.instrument import (
    RewriteWarning,
    build_registry,
    instrument_source,
    scan_source,
    verify_instrumentation,
)

SAMPLE = '''\
class Stage:
    def run(self):
        log.info("Receiving block blk_%s", bid)
        if empty:
            log.debug("Receiving empty packet for blk_%s", bid)
        log.error("IOException on blk_%s", bid)


def consumer(task_queue):
    while True:
        task = task_queue.get()
        log.debug("handling %s", task)
'''


class TestScanner:
    def test_finds_all_log_calls(self):
        result = scan_source(SAMPLE)
        templates = [c.template for c in result.log_calls]
        assert "Receiving block blk_%s" in templates
        assert "Receiving empty packet for blk_%s" in templates
        assert "IOException on blk_%s" in templates
        assert "handling %s" in templates

    def test_levels_inferred_from_method(self):
        result = scan_source(SAMPLE)
        by_template = {c.template: c for c in result.log_calls}
        from repro.loglib import DEBUG, ERROR, INFO

        assert by_template["Receiving block blk_%s"].level == INFO
        assert by_template["handling %s"].level == DEBUG
        assert by_template["IOException on blk_%s"].level == ERROR

    def test_finds_run_method_stage_candidate(self):
        result = scan_source(SAMPLE)
        runs = [c for c in result.stage_candidates if c.kind == "run-method"]
        assert len(runs) == 1
        assert runs[0].name == "Stage"

    def test_finds_dequeue_stage_candidate(self):
        result = scan_source(SAMPLE)
        dequeues = [c for c in result.stage_candidates if c.kind == "dequeue"]
        assert len(dequeues) == 1

    def test_fstring_template_normalized(self):
        result = scan_source('log.info(f"got {x} items")\n')
        assert result.log_calls[0].template == "got %s items"

    def test_non_literal_first_arg_skipped(self):
        result = scan_source("log.info(message)\n")
        assert result.log_calls == []

    def test_build_registry_assigns_source_order_ids(self):
        registry, result = build_registry(SAMPLE, "sample.py")
        assert len(registry) == 4
        assert registry.get(0).template == "Receiving block blk_%s"
        assert registry.get(0).source_file == "sample.py"


class TestRewriter:
    def test_rewrite_adds_lpids(self):
        instrumented, registry = instrument_source(SAMPLE)
        assert verify_instrumentation(instrumented)
        assert "lpid=0" in instrumented
        assert "lpid=3" in instrumented
        # The rewritten source still parses.
        compile(instrumented, "<test>", "exec")

    def test_rewrite_is_idempotent(self):
        once, _ = instrument_source(SAMPLE)
        twice, _ = instrument_source(once)
        assert once == twice

    def test_ids_match_registry(self):
        instrumented, registry = instrument_source(SAMPLE)
        # Each template's lpid appears on the same line as its call.
        for point in registry:
            assert f"lpid={point.lpid}" in instrumented

    def test_verify_detects_uninstrumented(self):
        assert not verify_instrumentation(SAMPLE)


class TestScannerSatellites:
    def test_async_run_method_is_stage_candidate(self):
        source = (
            "class AsyncStage:\n"
            "    async def run(self):\n"
            '        log.info("async working")\n'
        )
        result = scan_source(source)
        runs = [c for c in result.stage_candidates if c.kind == "run-method"]
        assert [c.name for c in runs] == ["AsyncStage"]

    def test_stage_candidates_deduplicated(self):
        # Two dequeues in one function: one candidate, not two.
        source = (
            "def consumer(task_queue):\n"
            "    while True:\n"
            "        first = task_queue.get()\n"
            "        second = task_queue.get()\n"
            '        log.debug("pair %s %s", first, second)\n'
        )
        result = scan_source(source)
        dequeues = [c for c in result.stage_candidates if c.kind == "dequeue"]
        assert len(dequeues) == 1

    def test_bare_logger_names_from_loglib_import(self):
        source = (
            "from repro.loglib import debug, info as note\n"
            'debug("bare call %s", x)\n'
            'note("aliased call")\n'
        )
        result = scan_source(source)
        templates = sorted(c.template for c in result.log_calls)
        assert templates == ["aliased call", "bare call %s"]
        from repro.loglib import DEBUG, INFO

        by_template = {c.template: c for c in result.log_calls}
        assert by_template["bare call %s"].level == DEBUG
        assert by_template["aliased call"].level == INFO

    def test_unrelated_bare_names_not_logged(self):
        result = scan_source(
            "from os.path import join\n" 'join("not a template", "x")\n'
        )
        assert result.log_calls == []


class TestRewriterLayouts:
    def test_trailing_comma_not_doubled(self):
        instrumented, _ = instrument_source('log.debug("x",)\n')
        assert instrumented == 'log.debug("x", lpid=0)\n'
        compile(instrumented, "<test>", "exec")
        assert verify_instrumentation(instrumented)

    def test_trailing_comma_idempotent(self):
        once, _ = instrument_source('log.debug("x",)\n')
        twice, _ = instrument_source(once)
        assert once == twice

    def test_multiline_call_rewrites_on_last_argument_line(self):
        source = (
            "log.info(\n"
            '    "Receiving block blk_%s",\n'
            "    bid,\n"
            ")\n"
        )
        instrumented, _ = instrument_source(source)
        compile(instrumented, "<test>", "exec")
        assert verify_instrumentation(instrumented)
        # lpid reuses the trailing comma on the last argument line.
        assert "    bid, lpid=0\n" in instrumented

    def test_multiline_call_idempotent(self):
        source = 'log.info(\n    "block %s",\n    bid\n)\n'
        once, _ = instrument_source(source)
        twice, _ = instrument_source(once)
        assert once == twice
        assert '    bid, lpid=0\n' in once

    def test_fstring_with_conversion_round_trips(self):
        source = 'log.debug(f"queued {task!r} at {depth}")\n'
        instrumented, registry = instrument_source(source)
        compile(instrumented, "<test>", "exec")
        assert verify_instrumentation(instrumented)
        assert registry.get(0).template == "queued %s at %s"

    def test_already_instrumented_source_untouched(self):
        source = 'log.info("hello %s", name, lpid=0)\nlog.debug("done", lpid=1)\n'
        assert verify_instrumentation(source)
        instrumented, _ = instrument_source(source)
        assert instrumented == source

    def test_mixed_instrumented_and_fresh_calls(self):
        source = 'log.info("old", lpid=0)\nlog.debug("new")\n'
        instrumented, _ = instrument_source(source)
        assert 'log.debug("new", lpid=1)' in instrumented
        assert verify_instrumentation(instrumented)

    def test_unexpected_layout_warns_instead_of_silently_skipping(self, monkeypatch):
        import repro.instrument.rewriter as rewriter

        real_build = rewriter.build_registry

        def skewed(source, source_file):
            registry, result = real_build(source, source_file)
            result.log_calls = [
                dataclasses.replace(call, end_col=call.end_col + 7)
                for call in result.log_calls
            ]
            return registry, result

        monkeypatch.setattr(rewriter, "build_registry", skewed)
        with pytest.warns(RewriteWarning, match="cannot instrument"):
            instrumented, _ = rewriter.instrument_source('log.info("x")\n')
        assert "lpid" not in instrumented


class TestRoundTrip:
    def test_instrumented_code_logs_with_ids(self):
        """End-to-end: rewrite source, exec it against loglib, check ids."""
        source = 'log.info("hello %s", name)\nlog.debug("done")\n'
        instrumented, registry = instrument_source(source)
        from repro.loglib import DEBUG, LoggerRepository

        repo = LoggerRepository(root_level=DEBUG, clock=lambda: 0.0)
        calls = []

        class Interceptor:
            def on_log(self, call):
                calls.append(call.lpid)

        repo.add_interceptor(Interceptor())
        namespace = {"log": repo.get_logger("test"), "name": "world"}
        exec(instrumented, namespace)
        assert calls == [0, 1]
