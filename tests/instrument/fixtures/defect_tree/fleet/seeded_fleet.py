"""Seeded FL001 defects: static partition routing in fleet code.

Planted defects (line numbers are asserted in test_lint.py):

* line 13 — bare ``shard_for(...)`` lookup (FL001)
* line 19 — attribute form ``partition.shard_table(...)`` (FL001)

The ring-routed sites below must stay quiet.
"""


def route_stage(stage_id, members):
    owner = shard_for(stage_id, len(members))  # noqa: F821 -- lint fixture

    return owner


def build_static_table(partition, members):
    table = partition.shard_table(len(members))
    return table


def sanctioned_sites(ring, stage_id):
    owner = ring.owner(stage_id)
    table = ring.table()
    return owner, table
