"""Fixture negative control: a fully conforming stage body."""


def good_stage(runtime, log, lps):
    runtime.set_context("Worker")
    try:
        log.info(lps.known_start.template, "host", lpid=lps.known_start.lpid)
        log.debug(lps.known_done.template, lpid=lps.known_done.lpid)
    finally:
        runtime.end_task()


def good_sim_handler(env, runtime, log, lps):
    runtime.set_context("Worker")
    yield env.timeout(0.5)
    log.debug(lps.known_done.template, lpid=lps.known_done.lpid)
