"""Seeded wire-protocol defects (WP001) and a bad suppression (SL001).

Planted defects (asserted line-exactly by TestSeededDefectTree):

* WP001 — ``TRAILER`` ("<Q") is packed in ``encode`` but never
  unpacked anywhere in the tree (the TRAILER.pack call line).
* SL001 — the ``FOOTER`` line carries a suppression naming the
  nonexistent rule WP999.
"""

import struct

RECORD = struct.Struct("<IHB")
TRAILER = struct.Struct("<Q")
FOOTER = struct.Struct("<4s")  # saadlint: disable=WP999


def encode(seq, kind, flag, stamp):
    head = RECORD.pack(seq, kind, flag)
    tail = TRAILER.pack(stamp)
    return head + tail + FOOTER.size * b"\x00"


def decode(blob):
    return RECORD.unpack_from(blob, 0)
