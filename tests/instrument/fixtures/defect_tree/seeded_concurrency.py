"""Seeded concurrency defects for the whole-program pass.

Planted defects (asserted line-exactly by TestSeededDefectTree):

* AS001 — ``Gateway.handle`` is async; ``Gateway._drain`` (reached via
  the call graph) calls ``time.sleep`` (line 23).
* RC001 — ``SharedCounter.total`` is guarded by ``self._lock`` in
  ``bump`` but written without it in the thread body ``_spin``
  (line 42).
* DL001 — ``Ledger.credit`` nests ``_block`` under ``_alock`` while
  ``Ledger.debit`` nests them in the opposite order (lines 53 and 58).
"""

import threading
import time


class Gateway:
    async def handle(self, frame):
        return self._drain(frame)

    def _drain(self, frame):
        time.sleep(0.05)
        return len(frame)


class SharedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0
        self._worker = threading.Thread(target=self._spin)

    def start(self):
        self._worker.start()

    def bump(self):
        with self._lock:
            self.total += 1

    def _spin(self):
        for _ in range(1000):
            self.total -= 1


class Ledger:
    def __init__(self):
        self._alock = threading.Lock()
        self._block = threading.Lock()
        self.balance = 0

    def credit(self, amount):
        with self._alock:
            with self._block:
                self.balance += amount

    def debit(self, amount):
        with self._block:
            with self._alock:
                self.balance -= amount
