"""Seeded SH001 defects: detector construction inside a shard package.

Planted defects (line numbers are asserted in test_lint.py):

* line 13 — bare ``AnomalyDetector(...)`` in worker code (SH001)
* line 19 — attribute form ``detector_mod.AnomalyDetector(...)`` (SH001)

The factory call below must stay quiet.
"""


def build_worker_detector(model, detector_mod):
    bare = AnomalyDetector(model)  # noqa: F821 -- lint fixture

    return bare


def build_worker_detector_via_module(model, detector_mod):
    qualified = detector_mod.AnomalyDetector(model)
    return qualified


def sanctioned_sites(model, shard_detector):
    from_factory = shard_detector(model, shard_id=0)
    return from_factory
