"""Seeded SH001/CP001 defects: shard-package detector misuse.

Planted defects (line numbers are asserted in test_lint.py):

* line 14 — bare ``AnomalyDetector(...)`` in worker code (SH001)
* line 20 — attribute form ``detector_mod.AnomalyDetector(...)`` (SH001)
* line 31 — per-task ``detector.observe(...)`` loop (CP001)

The factory call and the batch replay below must stay quiet.
"""


def build_worker_detector(model, detector_mod):
    bare = AnomalyDetector(model)  # noqa: F821 -- lint fixture

    return bare


def build_worker_detector_via_module(model, detector_mod):
    qualified = detector_mod.AnomalyDetector(model)
    return qualified


def sanctioned_sites(model, shard_detector):
    from_factory = shard_detector(model, shard_id=0)
    return from_factory


def replay_per_task(detector, trace):
    for synopsis in trace:
        detector.observe(synopsis)
    return detector.flush()


def replay_batched(detector, blob):
    return detector.observe_batch(blob)
