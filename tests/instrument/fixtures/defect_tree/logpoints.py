"""Fixture inventory: one planted LP002 duplicate-template defect."""


class DefectLogPoints:
    def __init__(self, saad):
        def lp(template, level=0, logger="", line=0):
            return saad.logpoints.register(template, level, logger, line=line)

        self.known_start = lp("worker starting on %s")
        self.known_done = lp("worker done")
        self.dup_a = lp("duplicated template")
        self.dup_b = lp("duplicated template")  # planted: LP002 (line 12)
