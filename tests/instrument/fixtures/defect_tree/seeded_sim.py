"""Fixture server code with one planted defect per saadlint rule.

Planted defects (asserted line-exactly by test_lint.py):

* ``untrackable``  LP001 — dynamically built template
* ``mismatched``   LP003 — template/lpid name different inventory entries
* ``early_log``    ST002 — log call before any set_context
* ``leaky_stage``  ST003 — exception path bypasses end_task
* ``OrphanStage``  ST001 — stage run() logs without set_context (twice:
  once via the run-method heuristic, once via the dequeue-loop heuristic)
* ``sim_handler``  CC001 — real time.sleep inside sim event-handler code
* ``impatient``    TM001 — direct write to a telemetry-backed counter
* ``eager_spans``  TR001 — manual tracer span calls in a sim handler
"""
import time


def untrackable(log, payload):
    log.info(build_message(payload))


def mismatched(runtime, log, lps):
    runtime.set_context("Worker")
    try:
        log.info(lps.known_start.template, "x", lpid=lps.known_done.lpid)
    finally:
        runtime.end_task()


def early_log(runtime, log):
    log.debug("before any context")
    runtime.set_context("Worker")
    log.debug("inside context")


def leaky_stage(runtime, log, lps):
    runtime.set_context("Worker")
    do_risky_work()
    runtime.end_task()


class OrphanStage:
    def run(self):
        while True:
            task = self.task_queue.get()
            self.log.info("handling %s", task)


def sim_handler(env):
    yield env.timeout(1.0)
    time.sleep(0.01)


def impatient(detector):
    detector.tasks_seen += 1


def eager_spans(env, tracer, task):
    tracer.begin_span("handle")
    yield env.timeout(1.0)
    tracer.finish(task, [])
