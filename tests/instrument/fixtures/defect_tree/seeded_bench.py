"""Seeded CP001 defect: per-task classification in benchmark code.

Planted defects (line numbers are asserted in test_lint.py):

* line 14 — ``model.classify(...)`` inside the timing loop (CP001)

The columnar leg below must stay quiet.
"""


def scalar_leg(model, rows):
    labels = []
    for stage_key, signature, duration in rows:
        labels.append(model.classify(stage_key, signature, duration))
    return labels


def columnar_leg(detector, blob):
    return detector.observe_batch(blob)
