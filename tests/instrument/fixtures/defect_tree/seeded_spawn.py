"""Seeded spawn-safety defects (SP001).

Planted defects (asserted line-exactly by TestSeededDefectTree):

* SP001 — ``launch`` passes a ``threading.Lock`` into ``mp.Process``
  args (the Process(...) call line).
* SP001 — ``launch`` sends the module-level interning table ``_INTERN``
  (mutated after import by ``_remember``) over an ``mp.Pipe``
  (the parent.send(...) call line).
"""

import multiprocessing as mp
import threading

_INTERN = {}


def _remember(key):
    _INTERN[key] = len(_INTERN)
    return _INTERN[key]


def _child(records, guard):
    with guard:
        return list(records)


def launch(records):
    guard = threading.Lock()
    worker = mp.Process(target=_child, args=(records, guard))
    worker.start()
    parent, child = mp.Pipe()
    parent.send(_INTERN)
    return worker, parent, child
