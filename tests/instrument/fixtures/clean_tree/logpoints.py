"""Fixture inventory for the clean (zero-findings) control tree."""


class CleanLogPoints:
    def __init__(self, saad):
        def lp(template):
            return saad.logpoints.register(template)

        self.known_start = lp("worker starting on %s")
        self.known_done = lp("worker done")
