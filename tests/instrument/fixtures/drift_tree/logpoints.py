"""Fixture inventory for the LP004 registry-drift check."""


class DriftLogPoints:
    def __init__(self, saad):
        def lp(template):
            return saad.logpoints.register(template)

        self.kept = lp("kept template %s")
        self.added = lp("added template %d")
