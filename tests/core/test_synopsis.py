"""Unit and property-based tests for the synopsis wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TaskSynopsis, decode_batch, encode_batch


def make_synopsis(**overrides):
    base = dict(
        host_id=1,
        stage_id=4,
        uid=1234,
        start_time=100.5,
        duration=0.010,
        log_points={1: 1, 2: 5, 4: 1},
    )
    base.update(overrides)
    return TaskSynopsis(**base)


class TestSynopsis:
    def test_signature_is_distinct_log_points(self):
        synopsis = make_synopsis(log_points={3: 10, 7: 1})
        assert synopsis.signature == frozenset({3, 7})

    def test_total_log_calls(self):
        assert make_synopsis().total_log_calls == 7

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_synopsis(duration=-1.0)

    def test_host_id_must_fit_byte(self):
        with pytest.raises(ValueError):
            make_synopsis(host_id=300)

    def test_encoded_size_matches_encoding(self):
        synopsis = make_synopsis()
        assert synopsis.encoded_size() == len(synopsis.encode())

    def test_synopsis_is_tens_of_bytes(self):
        # The paper's headline: a synopsis is a few tens of bytes.
        assert make_synopsis().encoded_size() < 64

    def test_round_trip(self):
        synopsis = make_synopsis()
        decoded = TaskSynopsis.decode(synopsis.encode())
        assert decoded.host_id == synopsis.host_id
        assert decoded.stage_id == synopsis.stage_id
        assert decoded.uid == synopsis.uid
        assert decoded.log_points == synopsis.log_points
        assert decoded.start_time == pytest.approx(synopsis.start_time, abs=1e-3)
        assert decoded.duration == pytest.approx(synopsis.duration, abs=1e-6)

    def test_decode_trailing_bytes_rejected(self):
        payload = make_synopsis().encode() + b"\x00"
        with pytest.raises(ValueError):
            TaskSynopsis.decode(payload)

    def test_decode_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            TaskSynopsis.decode(b"\x01\x02")

    def test_decode_truncated_entries_rejected(self):
        payload = make_synopsis().encode()
        with pytest.raises(ValueError):
            TaskSynopsis.decode(payload[:-3])

    def test_batch_round_trip(self):
        batch = [make_synopsis(uid=i, log_points={i: i + 1}) for i in range(1, 6)]
        decoded = decode_batch(encode_batch(batch))
        assert [s.uid for s in decoded] == [1, 2, 3, 4, 5]
        assert [s.log_points for s in decoded] == [s.log_points for s in batch]

    def test_empty_batch(self):
        assert decode_batch(b"") == []

    def test_large_lpid_rejected(self):
        with pytest.raises(ValueError):
            make_synopsis(log_points={70000: 1}).encode()


@settings(max_examples=200, deadline=None)
@given(
    host_id=st.integers(0, 255),
    stage_id=st.integers(0, 255),
    uid=st.integers(0, 2**32 - 1),
    start_ms=st.integers(0, 2**31),
    duration_us=st.integers(0, 2**31 - 1),
    log_points=st.dictionaries(
        st.integers(0, 0xFFFF), st.integers(1, 2**31 - 1), max_size=40
    ),
)
def test_codec_round_trip_property(
    host_id, stage_id, uid, start_ms, duration_us, log_points
):
    synopsis = TaskSynopsis(
        host_id=host_id,
        stage_id=stage_id,
        uid=uid,
        start_time=start_ms / 1000.0,
        duration=duration_us / 1_000_000.0,
        log_points=log_points,
    )
    decoded = TaskSynopsis.decode(synopsis.encode())
    assert decoded.host_id == host_id
    assert decoded.stage_id == stage_id
    assert decoded.uid == uid
    assert decoded.log_points == log_points
    assert decoded.signature == synopsis.signature
    assert abs(decoded.start_time - synopsis.start_time) < 2e-3
    assert abs(decoded.duration - synopsis.duration) < 2e-6
