"""Tests for reporting, streaming, registries, and the SAAD facade."""

import pytest

from repro.core import (
    FLOW,
    PERFORMANCE,
    AnomalyEvent,
    AnomalyReporter,
    LogPointRegistry,
    SAAD,
    SAADConfig,
    StageRegistry,
    SynopsisCollector,
    SynopsisStream,
    TaskSynopsis,
    format_signature,
)
from repro.loglib import DEBUG, WARN


def synopsis(stage=0, host=0, uid=0, start=0.0, duration=0.01, lps=(0, 1)):
    return TaskSynopsis(
        host_id=host, stage_id=stage, uid=uid, start_time=start,
        duration=duration, log_points={lp: 1 for lp in lps},
    )


class TestRegistries:
    def test_logpoint_ids_dense_and_stable(self):
        registry = LogPointRegistry()
        a = registry.register("first %s")
        b = registry.register("second")
        assert (a.lpid, b.lpid) == (0, 1)
        assert registry.register("first %s") is a  # idempotent

    def test_logpoint_json_round_trip(self):
        registry = LogPointRegistry()
        registry.register("msg %d", DEBUG, "Table", "f.py", 12)
        registry.register("warn!", WARN, "GC", "g.py", 40)
        clone = LogPointRegistry.from_json(registry.to_json())
        assert len(clone) == 2
        assert clone.get(0).template == "msg %d"
        assert clone.get(1).level == WARN
        assert clone.get(1).source_file == "g.py"

    def test_unknown_logpoint_raises(self):
        with pytest.raises(KeyError):
            LogPointRegistry().get(5)

    def test_stage_registry(self):
        stages = StageRegistry()
        table = stages.register("Table")
        assert stages.register("Table") is table
        assert stages.by_name("Table").stage_id == 0
        assert stages.get(0).name == "Table"
        with pytest.raises(KeyError):
            stages.by_name("Nope")

    def test_stage_model_validation(self):
        stages = StageRegistry()
        with pytest.raises(ValueError):
            stages.register("X", model="weird-model")


class TestStreams:
    def test_stream_counts_and_retains(self):
        stream = SynopsisStream()
        stream.sink(synopsis(uid=1))
        stream.sink(synopsis(uid=2))
        assert stream.count == 2
        assert [s.uid for s in stream.synopses] == [1, 2]
        assert stream.bytes_streamed > 0

    def test_wire_format_round_trips(self):
        stream = SynopsisStream(wire_format=True)
        original = synopsis(uid=42, lps=(3, 4))
        stream.sink(original)
        received = stream.synopses[0]
        assert received.uid == 42
        assert received.signature == original.signature
        assert stream.bytes_streamed == original.encoded_size()

    def test_collector_merges_node_streams(self):
        collector = SynopsisCollector()
        streams = [SynopsisStream(retain=False) for _ in range(3)]
        for stream in streams:
            collector.attach(stream)
        for i, stream in enumerate(streams):
            stream.sink(synopsis(host=i, uid=i))
        assert collector.count == 3
        assert {s.host_id for s in collector.synopses} == {0, 1, 2}

    def test_subscribers_see_live_synopses(self):
        stream = SynopsisStream(retain=False)
        seen = []
        stream.subscribe(seen.append)
        stream.sink(synopsis(uid=7))
        assert seen[0].uid == 7

    def test_drain_clears(self):
        stream = SynopsisStream()
        stream.sink(synopsis())
        assert len(stream.drain()) == 1
        assert stream.synopses == []

    def test_wire_stream_encodes_once_and_batches_frames(self):
        frames = []
        stream = SynopsisStream(wire_format=True, flush_size=3, frame_sink=frames.append)
        originals = [synopsis(uid=i) for i in range(7)]
        for s in originals:
            stream.sink(s)
        # 7 synopses at flush_size=3: two full frames out, one pending.
        assert stream.frames_flushed == 2
        assert len(frames) == 2
        assert stream.pending_wire_count == 1
        # bytes_streamed accounts the single encode per synopsis.
        assert stream.bytes_streamed == sum(s.encoded_size() for s in originals)
        tail = stream.flush_wire()
        assert tail != b""
        assert stream.pending_wire_count == 0
        assert stream.flush_wire() == b""  # idempotent when empty

    def test_frames_decode_at_the_collector(self):
        collector = SynopsisCollector()
        stream = SynopsisStream(
            wire_format=True, retain=False, flush_size=2,
            frame_sink=lambda frame: collector.receive_frame(frame),
        )
        for i in range(4):
            stream.sink(synopsis(uid=i, lps=(3, 4)))
        assert collector.frames_received == 2
        assert [s.uid for s in collector.synopses] == [0, 1, 2, 3]
        assert collector.synopses[0].signature == frozenset({3, 4})
        assert collector.bytes_received == stream.frame_bytes

    def test_bad_flush_size_rejected(self):
        with pytest.raises(ValueError):
            SynopsisStream(wire_format=True, flush_size=0)


class TestCollectorShutdown:
    """flush()/close() ordering: the last wire batch must not be lost."""

    def make_pipeline(self, flush_size=10):
        collector = SynopsisCollector()
        stream = SynopsisStream(
            wire_format=True, retain=False, flush_size=flush_size,
            frame_sink=collector.feed,
        )
        collector.attach(stream)
        return collector, stream

    def test_feed_reassembles_split_frames(self):
        collector = SynopsisCollector()
        stream = SynopsisStream(wire_format=True, retain=False, flush_size=10)
        for i in range(3):
            stream.sink(synopsis(uid=i))
        frame = stream.flush_wire()
        # deliver in dribs: nothing decodes until the frame completes
        assert collector.feed(frame[:4]) == []
        assert collector.pending_bytes == 4
        assert collector.feed(frame[4:10]) == []
        decoded = collector.feed(frame[10:])
        assert [s.uid for s in decoded] == [0, 1, 2]
        assert collector.pending_bytes == 0
        assert collector.frames_received == 1

    def test_flush_drains_partial_stream_batches(self):
        collector, stream = self.make_pipeline(flush_size=10)
        for i in range(4):  # under flush_size: still pending in the stream
            stream.sink(synopsis(uid=i))
        assert collector.count == 0
        flushed = collector.flush()
        assert [s.uid for s in flushed] == [0, 1, 2, 3]
        assert collector.count == 4
        assert collector.flush() == []  # nothing new

    def test_close_flushes_then_seals(self):
        collector, stream = self.make_pipeline(flush_size=10)
        stream.sink(synopsis(uid=9))
        collector.close()
        assert collector.closed
        assert collector.count == 1
        collector.close()  # idempotent

    def test_truncated_frame_fails_loudly_at_flush(self):
        collector, stream = self.make_pipeline(flush_size=2)
        for i in range(2):
            stream.sink(synopsis(uid=i))
        # a transport that died mid-frame: only half the bytes arrived
        tail_stream = SynopsisStream(wire_format=True, retain=False, flush_size=2)
        tail_stream.sink(synopsis(uid=7))
        frame = tail_stream.flush_wire()
        collector.feed(frame[: len(frame) // 2])
        assert collector.pending_bytes > 0
        with pytest.raises(ValueError, match="truncated frame"):
            collector.flush()
        with pytest.raises(ValueError, match="truncated frame"):
            collector.close()
        assert not collector.closed


class TestReporter:
    def make_reporter(self):
        stages = StageRegistry()
        stages.register("Table")
        logpoints = LogPointRegistry()
        logpoints.register("MemTable is already frozen")
        logpoints.register("Start applying update")
        return AnomalyReporter(stages, logpoints, {0: "host4"})

    def test_render_event_contains_names(self):
        reporter = self.make_reporter()
        event = AnomalyEvent(
            kind=FLOW, host_id=0, stage_id=0, window_start=0.0,
            window_end=60.0, outliers=10, n=100, baseline=0.01,
            p_value=1e-9, new_signatures=(frozenset({0}),),
        )
        text = reporter.render_event(event)
        assert "Table(host4)" in text
        assert "MemTable is already frozen" in text
        assert "[FLOW]" in text

    def test_render_empty(self):
        reporter = self.make_reporter()
        assert "No anomalies" in reporter.render([])

    def test_signature_comparison_marks_membership(self):
        reporter = self.make_reporter()
        text = reporter.signature_comparison(0, frozenset({0, 1}), frozenset({0}))
        lines = text.splitlines()
        frozen_row = [l for l in lines if "frozen" in l][0]
        apply_row = [l for l in lines if "applying" in l][0]
        assert frozen_row.count("x") == 2  # present in both flows
        assert apply_row.count("x") == 1  # normal flow only

    def test_unknown_ids_render_gracefully(self):
        reporter = self.make_reporter()
        event = AnomalyEvent(
            kind=PERFORMANCE, host_id=9, stage_id=9, window_start=0.0,
            window_end=60.0, outliers=1, n=10, baseline=0.01, p_value=1e-4,
            offending_signatures=(frozenset({99}),),
        )
        text = reporter.render_event(event)
        assert "stage9" in text
        assert "host9" in text
        assert "unknown log point" in text

    def test_format_signature(self):
        assert format_signature(frozenset({3, 1})) == "{L1,L3}"


class TestSAADFacade:
    def test_end_to_end_train_detect_report(self):
        saad = SAAD(SAADConfig(window_s=10.0, min_window_tasks=5))
        node = saad.add_node("h1")
        saad.stages.register("S")
        lp_a = saad.logpoints.register("step a")
        lp_b = saad.logpoints.register("step b")
        log = node.logger("S")

        def run_task(start_offset, include_b=True):
            node.set_context("S")
            log.debug("step a", lpid=lp_a.lpid)
            if include_b:
                log.debug("step b", lpid=lp_b.lpid)
            node.end_task()

        for i in range(200):
            run_task(i)
        saad.train()
        saad.collector.drain()
        for i in range(50):
            run_task(i, include_b=(i % 2 == 0))  # 50% truncated flow
        anomalies = saad.detect(saad.collector.synopses)
        assert anomalies
        assert anomalies[0].kind == FLOW
        text = saad.reporter().render(anomalies)
        assert "S(h1)" in text

    def test_duplicate_node_rejected(self):
        saad = SAAD()
        saad.add_node("h1")
        with pytest.raises(ValueError):
            saad.add_node("h1")

    def test_detector_requires_training(self):
        saad = SAAD()
        with pytest.raises(RuntimeError):
            saad.detector()

    def test_disabled_tracker_produces_nothing(self):
        saad = SAAD()
        node = saad.add_node("h1", tracker_enabled=False)
        saad.stages.register("S")
        node.set_context("S")
        assert node.end_task() is None
        assert saad.collector.count == 0
