"""Columnar batch detect path: scalar/batch equivalence suite.

The contract under test (DESIGN §13): ``observe_batch`` must produce
**bit-identical** ordered :class:`AnomalyEvent` output to the scalar
``observe``/``observe_frame`` path for any wire input — including
exemplar pins when tracing is on, error messages and partial state on
truncated frames, and all the fallback ladders (no numpy, tracing,
guard-tripped chunks).
"""

import random

import pytest

from repro.core import (
    AnomalyDetector,
    OutlierModel,
    SAADConfig,
    TaskSynopsis,
    compile_model,
)
from repro.core.columnar import NO_CUT, exact_duration_cut
from repro.core import columnar
from repro.core.synopsis import FRAME_HEADER, encode_frame

pytestmark = pytest.mark.columnar


def synopsis(stage=1, host=0, uid=0, start=0.0, duration=0.01, lps=(1, 2, 4, 5)):
    return TaskSynopsis(
        host_id=host,
        stage_id=stage,
        uid=uid,
        start_time=start,
        duration=duration,
        log_points={lp: 1 for lp in lps},
    )


def make_stream(tasks=1500, hosts=2, stages=(1, 2)):
    """Deterministic faulted workload: novel-signature burst + slowdown."""
    rng = random.Random(23)
    stream = []
    for i in range(tasks):
        lps = (1, 2, 4, 5)
        duration = 0.01 * rng.lognormvariate(0, 0.3)
        if i > tasks // 2:
            if i % 2:  # novel signature burst
                lps = (1, 2, 3, 4, 5, 6)
            else:  # sustained slowdown
                duration *= 6
        stream.append(
            synopsis(
                stage=stages[i % len(stages)],
                host=i % hosts,
                uid=i,
                start=i * 0.05,
                duration=duration,
                lps=lps,
            )
        )
    return stream


def train_model(config=None, tasks=3000, hosts=2, stages=(1, 2)):
    rng = random.Random(11)
    trace = []
    for i in range(tasks):
        lps = (1, 2, 4, 5) if rng.random() > 0.01 else (1, 2, 3, 4, 5)
        trace.append(
            synopsis(
                stage=stages[i % len(stages)],
                host=i % hosts,
                uid=i,
                start=i * 0.05,
                duration=0.01 * rng.lognormvariate(0, 0.3),
                lps=lps,
            )
        )
    config = config or SAADConfig(window_s=60.0, min_window_tasks=8)
    return OutlierModel(config).train(trace)


@pytest.fixture(scope="module")
def model():
    return train_model()


def scalar_run(model, stream, **kwargs):
    detector = AnomalyDetector(model, **kwargs)
    mid = [e for s in stream for e in detector.observe(s)]
    tail = detector.flush()
    return detector, mid, tail


def batch_run(model, blob, offset=0, **kwargs):
    detector = AnomalyDetector(model, **kwargs)
    mid = detector.observe_batch(blob, offset=offset)
    tail = detector.flush()
    return detector, mid, tail


def frames_of(stream, chunk=97):
    """The stream as a multi-frame wire blob (ragged frame sizes)."""
    return b"".join(
        encode_frame(stream[i : i + chunk]) for i in range(0, len(stream), chunk)
    )


def assert_equivalent(scalar, batch):
    s_det, s_mid, s_tail = scalar
    b_det, b_mid, b_tail = batch
    assert b_mid == s_mid
    assert b_tail == s_tail
    assert b_det.anomalies == s_det.anomalies
    assert b_det.tasks_seen == s_det.tasks_seen
    assert b_det.windows_closed == s_det.windows_closed


class TestBatchEquivalence:
    def test_identical_ordered_events_on_faulted_stream(self, model):
        stream = make_stream()
        scalar = scalar_run(model, stream)
        assert scalar[0].anomalies, "workload must trip the detector"
        batch = batch_run(model, frames_of(stream))
        assert_equivalent(scalar, batch)

    def test_single_frame_and_iterable_of_frames(self, model):
        stream = make_stream(tasks=400)
        scalar = scalar_run(model, stream)
        one = batch_run(model, encode_frame(stream))
        assert_equivalent(scalar, one)
        many = batch_run(
            model, [encode_frame(stream[i : i + 50]) for i in range(0, 400, 50)]
        )
        assert_equivalent(scalar, many)

    def test_offset_skips_prefix(self, model):
        stream = make_stream(tasks=300)
        blob = frames_of(stream)
        plain = batch_run(model, blob)
        padded = batch_run(model, b"\xff" * 13 + blob, offset=13)
        assert_equivalent(plain, padded)

    def test_per_host_false(self):
        config = SAADConfig(window_s=60.0, min_window_tasks=8, per_host=False)
        model = train_model(config=config)
        stream = make_stream()
        scalar = scalar_run(model, stream)
        batch = batch_run(model, frames_of(stream))
        assert_equivalent(scalar, batch)
        assert all(e.stage_key[0] == 0 for e in batch[0].anomalies)

    def test_boundary_adversarial_timestamps(self, model):
        # Starts landing exactly on / just around window boundaries, in
        # every representable-millisecond neighborhood the wire format
        # can produce.  Window indexing must agree with the scalar
        # float-floordiv expression for each of them.
        starts = []
        for base in (0.0, 60.0, 120.0, 3600.0, 86400.0, 1.7e9):
            for nudge in (-0.001, -0.0005, 0.0, 0.0005, 0.001, 0.999, 1.0):
                starts.append(max(0.0, base + nudge))
        stream = [
            synopsis(uid=i, start=start, lps=(1, 9) if i % 7 == 0 else (1, 2, 4, 5))
            for i, start in enumerate(sorted(starts))
        ]
        scalar = scalar_run(model, stream)
        batch = batch_run(model, frames_of(stream, chunk=11))
        assert_equivalent(scalar, batch)

    def test_lateness_and_out_of_order_arrivals(self, model):
        rng = random.Random(7)
        stream = make_stream(tasks=800)
        rng.shuffle(stream)  # heavy event-time disorder
        scalar = scalar_run(model, stream, lateness_s=45.0)
        batch = batch_run(model, frames_of(stream), lateness_s=45.0)
        assert_equivalent(scalar, batch)

    def test_batch_counters_account_every_task(self, model):
        stream = make_stream(tasks=600)
        detector, _, _ = batch_run(model, frames_of(stream))
        assert detector._columnar_tasks == 600
        batches = detector.registry.get("columnar_batches")
        assert batches.value == 1


class TestBatchErrors:
    """Truncation errors must match the scalar path, message and state."""

    def test_truncated_frame_header(self, model):
        frame = encode_frame([synopsis(uid=1), synopsis(uid=2)])
        detector = AnomalyDetector(model)
        with pytest.raises(ValueError, match="truncated frame header"):
            detector.observe_batch(frame[:4])
        assert detector.tasks_seen == 0

    def test_truncated_frame_payload(self, model):
        frame = encode_frame([synopsis(uid=1), synopsis(uid=2)])
        detector = AnomalyDetector(model)
        with pytest.raises(ValueError, match="truncated frame payload"):
            detector.observe_batch(frame[:-3])
        assert detector.tasks_seen == 0

    def test_frame_count_mismatch(self, model):
        frame = encode_frame([synopsis(uid=1), synopsis(uid=2)])
        payload = frame[FRAME_HEADER.size :]
        lying = FRAME_HEADER.pack(len(payload), 3) + payload
        detector = AnomalyDetector(model)
        with pytest.raises(ValueError, match="count mismatch"):
            detector.observe_batch(lying)

    def test_error_message_and_partial_state_match_scalar(self, model):
        stream = make_stream(tasks=400)
        good = encode_frame(stream[:200])
        bad = encode_frame(stream[200:])[:-3]

        s_det = AnomalyDetector(model)
        s_det.observe_frame(good)
        with pytest.raises(ValueError) as scalar_err:
            s_det.observe_frame(bad)

        b_det = AnomalyDetector(model)
        with pytest.raises(ValueError) as batch_err:
            b_det.observe_batch(good + bad)

        assert str(batch_err.value) == str(scalar_err.value)
        assert b_det.tasks_seen == s_det.tasks_seen == 200
        s_det.flush()
        b_det.flush()
        assert b_det.anomalies == s_det.anomalies


class TestFallbacks:
    def test_no_numpy_whole_batch_fallback(self, model, monkeypatch):
        monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
        stream = make_stream()
        scalar = scalar_run(model, stream)
        batch = batch_run(model, frames_of(stream))
        assert_equivalent(scalar, batch)
        assert batch[0]._columnar_fallback_tasks == len(stream)

    def test_tracing_fallback_pins_identical_exemplars(self, model):
        from repro.tracing import Tracer

        stream = make_stream()

        def run(feed):
            tracer = Tracer(capacity=4096, registry=None)
            tracer.set_model(model)
            for s in stream:
                tracer.finish(s, [(lp, s.start_time) for lp in sorted(s.log_points)])
            detector = AnomalyDetector(model, tracer=tracer)
            feed(detector)
            detector.flush()
            return detector

        s_det = run(lambda d: [d.observe(s) for s in stream])
        b_det = run(lambda d: d.observe_batch(frames_of(stream)))
        assert s_det.anomalies and any(e.exemplars for e in s_det.anomalies)

        def keys(detector):
            return [
                [(t.host_id, t.uid) for t in e.exemplars]
                for e in detector.anomalies
            ]

        assert keys(b_det) == keys(s_det)
        assert b_det._columnar_fallback_tasks == len(stream)


class TestCompiledModel:
    def test_compiled_classify_matches_classify_parts(self, model):
        compiled = compile_model(model)
        durations_us = [0, 1, 5000, 10_000, 50_000, 2_000_000]
        for stage_key, stage_model in model.stages.items():
            host_id, stage_id = stage_key
            for signature, profile in stage_model.signatures.items():
                sig_id = compiled.space.id_of(signature)
                if profile.duration_threshold is not None:
                    cut = exact_duration_cut(profile.duration_threshold)
                    durations = durations_us + [cut - 1, cut, cut + 1]
                else:
                    durations = durations_us
                for duration_us in durations:
                    if not 0 <= duration_us < 2**31:
                        continue
                    want = model.classify_parts(
                        stage_key, signature, duration_us / 1e6
                    )
                    got = compiled.classify(host_id, stage_id, sig_id, duration_us)
                    assert got == want, (stage_key, signature, duration_us)

    def test_unknown_signature_and_stage_are_novel(self, model):
        compiled = compile_model(model)
        label = compiled.classify(0, 1, len(compiled.space) + 5, 1000)
        assert label.new_signature and not label.flow_outlier
        label = compiled.classify(99, 77, 0, 1000)
        assert label.new_signature

    def test_untrained_model_rejected(self):
        with pytest.raises(RuntimeError, match="trained"):
            compile_model(OutlierModel(SAADConfig()))

    def test_exact_duration_cut_is_tight(self):
        for threshold in (0.0, 0.01, 0.012345, 1e-7, 3.2e-7, 123.456789, -0.5):
            cut = exact_duration_cut(threshold)
            assert cut / 1e6 <= threshold
            assert (cut + 1) / 1e6 > threshold
        assert exact_duration_cut(1e9) == NO_CUT
        assert exact_duration_cut(-1e9) == -NO_CUT

    def test_generation_bump_invalidates_detector_cache(self, model):
        detector = AnomalyDetector(model)
        first = detector.compiled_model()
        assert detector.compiled_model() is first  # cached
        rng = random.Random(3)
        model.train(
            [
                synopsis(uid=i, start=i * 0.05, duration=0.01 * rng.lognormvariate(0, 0.3))
                for i in range(500)
            ]
        )
        assert first.stale
        second = detector.compiled_model()
        assert second is not first
        assert second.generation == model.generation
        # The id space survives recompiles: ids stay valid.
        assert second.space is first.space

    def test_retrained_detection_still_matches_scalar(self, model):
        # After the cache invalidation above, batch results must still
        # track the (new) model exactly.
        stream = make_stream(tasks=500)
        scalar = scalar_run(model, stream)
        batch = batch_run(model, frames_of(stream))
        assert_equivalent(scalar, batch)
