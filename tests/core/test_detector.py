"""Tests for the streaming anomaly detector."""

import random

import pytest

from repro.core import (
    FLOW,
    PERFORMANCE,
    AnomalyDetector,
    OutlierModel,
    SAADConfig,
    TaskSynopsis,
)


def synopsis(stage=1, host=0, uid=0, start=0.0, duration=0.01, lps=(1, 2, 4, 5)):
    return TaskSynopsis(
        host_id=host,
        stage_id=stage,
        uid=uid,
        start_time=start,
        duration=duration,
        log_points={lp: 1 for lp in lps},
    )


@pytest.fixture
def model():
    """One stage, dominant signature + 1% rare signature, log-normal durations."""
    rng = random.Random(11)
    trace = []
    for i in range(2000):
        lps = (1, 2, 4, 5) if rng.random() > 0.01 else (1, 2, 3, 4, 5)
        trace.append(
            synopsis(uid=i, duration=0.01 * rng.lognormvariate(0, 0.3), lps=lps)
        )
    config = SAADConfig(window_s=60.0, min_window_tasks=8)
    return OutlierModel(config).train(trace)


def feed(detector, synopses):
    for s in synopses:
        detector.observe(s)
    detector.flush()
    return detector.anomalies


class TestFlowDetection:
    def test_quiet_stream_has_no_anomalies(self, model):
        rng = random.Random(5)
        stream = [
            synopsis(uid=i, start=i * 0.1, duration=0.01 * rng.lognormvariate(0, 0.3))
            for i in range(600)
        ]
        anomalies = feed(AnomalyDetector(model), stream)
        assert anomalies == []

    def test_surge_of_rare_signature_is_flow_anomaly(self, model):
        stream = []
        for i in range(200):
            lps = (1, 2, 3, 4, 5) if i % 2 else (1, 2, 4, 5)  # 50% rare vs 1% trained
            stream.append(synopsis(uid=i, start=i * 0.1, lps=lps))
        anomalies = feed(AnomalyDetector(model), stream)
        assert any(a.kind == FLOW for a in anomalies)

    def test_new_signature_always_flags(self, model):
        stream = [synopsis(uid=i, start=i * 0.1) for i in range(50)]
        stream.append(synopsis(uid=99, start=2.0, lps=(1, 9)))  # never trained
        anomalies = feed(AnomalyDetector(model), stream)
        flow = [a for a in anomalies if a.kind == FLOW]
        assert len(flow) == 1
        assert frozenset({1, 9}) in flow[0].new_signatures

    def test_trained_rate_of_rare_signature_is_tolerated(self, model):
        # ~1% rare matches the training distribution: no anomaly.
        rng = random.Random(23)
        stream = []
        for i in range(1000):
            lps = (1, 2, 3, 4, 5) if rng.random() < 0.01 else (1, 2, 4, 5)
            stream.append(
                synopsis(uid=i, start=i * 0.05, duration=0.01 * rng.lognormvariate(0, 0.3), lps=lps)
            )
        anomalies = feed(AnomalyDetector(model), stream)
        assert not [a for a in anomalies if a.kind == FLOW]


class TestPerformanceDetection:
    def test_slowdown_is_performance_anomaly(self, model):
        rng = random.Random(9)
        stream = [
            synopsis(
                uid=i, start=i * 0.1, duration=0.05 * rng.lognormvariate(0, 0.3)
            )  # 5x slower than training median
            for i in range(300)
        ]
        anomalies = feed(AnomalyDetector(model), stream)
        perf = [a for a in anomalies if a.kind == PERFORMANCE]
        assert perf
        assert frozenset({1, 2, 4, 5}) in perf[0].offending_signatures

    def test_normal_speed_is_quiet(self, model):
        rng = random.Random(13)
        stream = [
            synopsis(uid=i, start=i * 0.1, duration=0.01 * rng.lognormvariate(0, 0.3))
            for i in range(300)
        ]
        anomalies = feed(AnomalyDetector(model), stream)
        assert not [a for a in anomalies if a.kind == PERFORMANCE]


class TestWindowing:
    def test_windows_close_on_watermark(self, model):
        detector = AnomalyDetector(model)
        # Window 0 gets a new signature; emitted once time passes 60s.
        detector.observe(synopsis(uid=0, start=1.0, lps=(1, 9)))
        for i in range(20):
            emitted = detector.observe(synopsis(uid=i + 1, start=2.0 + i * 0.1))
            assert emitted == []
        emitted = detector.observe(synopsis(uid=100, start=61.0))
        assert len(emitted) == 1
        assert emitted[0].window_start == 0.0
        assert emitted[0].window_end == 60.0

    def test_small_windows_skip_proportion_tests(self, model):
        detector = AnomalyDetector(model)
        # 3 tasks (< min_window_tasks) of the rare-but-known signature:
        # the proportion test is skipped, no anomaly.
        for i in range(3):
            detector.observe(synopsis(uid=i, start=1.0 + i, lps=(1, 2, 3, 4, 5)))
        detector.flush()
        assert detector.anomalies == []

    def test_small_windows_still_report_new_signatures(self, model):
        # A never-trained signature is a flow anomaly regardless of
        # window volume (paper Sec. 3.3.3).
        detector = AnomalyDetector(model)
        detector.observe(synopsis(uid=0, start=1.0, lps=(1, 9)))
        detector.flush()
        assert len(detector.anomalies) == 1
        assert detector.anomalies[0].kind == FLOW
        assert frozenset({1, 9}) in detector.anomalies[0].new_signatures

    def test_anomaly_attributed_to_correct_stage_and_host(self, model):
        detector = AnomalyDetector(model)
        for i in range(20):
            detector.observe(synopsis(uid=i, start=i * 0.5, lps=(1, 9)))
        detector.flush()
        assert detector.anomalies
        event = detector.anomalies[0]
        assert event.host_id == 0
        assert event.stage_id == 1
        assert event.stage_key == (0, 1)

    def test_flush_is_idempotent(self, model):
        detector = AnomalyDetector(model)
        for i in range(20):
            detector.observe(synopsis(uid=i, start=i * 0.5, lps=(1, 9)))
        first = detector.flush()
        second = detector.flush()
        assert len(first) == 1
        assert second == []

    def test_flush_resets_open_window_gauge(self, model):
        # Regression: flush() closes every remaining bucket but used to
        # leave the windows_open gauge at its pre-flush value.
        detector = AnomalyDetector(model)
        for host in range(5):
            detector.observe(synopsis(host=host, uid=host, start=1.0))
        gauge = detector.registry.get("detector_windows_open")
        assert gauge.value == 5
        detector.flush()
        assert gauge.value == 0


class TestHeapWindowing:
    """The detector must not scan every open bucket on every observe."""

    def test_observe_probe_count_independent_of_open_buckets(self, model):
        detector = AnomalyDetector(model)
        # Open 40 buckets (40 stage keys, one window) that never ripen...
        for host in range(40):
            detector.observe(synopsis(host=host, uid=host, start=1.0))
        # ...then keep observing into the same window.  The seed scanned
        # all 40 open buckets on each of these calls (>= 4000 visits);
        # the heap peeks at one deadline per observe.
        before = detector.bucket_probe_count
        for i in range(100):
            detector.observe(synopsis(host=i % 40, uid=100 + i, start=2.0 + i * 0.01))
        assert detector.bucket_probe_count - before <= 100

    def test_streaming_matches_flush_only_detection(self, model):
        # Closing windows incrementally by watermark must yield exactly
        # the anomalies a flush-at-end pass produces.
        rng = random.Random(42)
        stream = []
        for i in range(800):
            lps = (1, 9) if i % 190 == 0 else (1, 2, 4, 5)
            stream.append(
                synopsis(
                    uid=i,
                    host=i % 3,
                    start=i * 0.5,
                    duration=0.01 * rng.lognormvariate(0, 0.3),
                    lps=lps,
                )
            )
        streaming = AnomalyDetector(model)
        for s in stream:
            streaming.observe(s)
        streaming.flush()
        flush_only = AnomalyDetector(model, lateness_s=float("inf"))
        for s in stream:
            flush_only.observe(s)
        flush_only.flush()
        assert streaming.anomalies == flush_only.anomalies
        assert streaming.windows_closed == flush_only.windows_closed

    def test_out_of_order_arrivals_within_lateness(self, model):
        detector = AnomalyDetector(model, lateness_s=30.0)
        detector.observe(synopsis(uid=0, start=65.0))
        # Late task for window 0 arrives after watermark passed 60s but
        # within the allowed lateness: its window must still be open.
        emitted = detector.observe(synopsis(uid=1, start=5.0, lps=(1, 9)))
        assert emitted == []
        emitted = detector.observe(synopsis(uid=2, start=100.0))
        assert any(frozenset({1, 9}) in e.new_signatures for e in emitted)


class TestWireIngest:
    """observe_frame: the fused bytes path must mirror the object path."""

    def make_stream(self, tasks=1500):
        rng = random.Random(23)
        stream = []
        for i in range(tasks):
            lps = (1, 2, 4, 5)
            duration = 0.01 * rng.lognormvariate(0, 0.3)
            if i > tasks // 2:
                if i % 2:  # novel signature burst
                    lps = (1, 2, 3, 4, 5, 6)
                else:  # sustained slowdown
                    duration *= 6
            stream.append(
                synopsis(
                    uid=i, host=i % 2, start=i * 0.05, duration=duration, lps=lps
                )
            )
        return stream

    def test_frame_path_matches_object_path(self, model):
        from repro.core.synopsis import encode_frame

        stream = self.make_stream()
        object_path = AnomalyDetector(model)
        for s in stream:
            object_path.observe(s)
        object_path.flush()
        assert object_path.anomalies, "workload must trip the detector"

        wire_path = AnomalyDetector(model)
        for start in range(0, len(stream), 100):
            wire_path.observe_frame(encode_frame(stream[start : start + 100]))
        wire_path.flush()

        assert wire_path.anomalies == object_path.anomalies
        assert wire_path.windows_closed == object_path.windows_closed

    def test_frame_offset_skips_prefix(self, model):
        from repro.core.synopsis import encode_frame

        stream = self.make_stream(tasks=200)
        frame = encode_frame(stream)
        padded = b"\x00" * 11 + frame
        plain = AnomalyDetector(model)
        plain.observe_frame(frame)
        offsetted = AnomalyDetector(model)
        offsetted.observe_frame(padded, offset=11)
        assert offsetted.tasks_seen == plain.tasks_seen == 200

    def test_truncated_frames_rejected(self, model):
        from repro.core.synopsis import FRAME_HEADER, encode_frame

        detector = AnomalyDetector(model)
        frame = encode_frame([synopsis(uid=1), synopsis(uid=2)])
        with pytest.raises(ValueError, match="truncated frame header"):
            detector.observe_frame(frame[:4])
        with pytest.raises(ValueError, match="truncated frame payload"):
            detector.observe_frame(frame[:-3])

        payload = frame[FRAME_HEADER.size :]
        lying = FRAME_HEADER.pack(len(payload), 3) + payload
        with pytest.raises(ValueError, match="count mismatch"):
            detector.observe_frame(lying)
