"""Tests for the signature intern table."""

import pytest

from repro.core import (
    InternedSignature,
    OutlierModel,
    TaskSynopsis,
    canonical_tuple,
    clear_intern_table,
    intern_signature,
    intern_table_size,
    model_from_json,
    model_to_json,
)


def synopsis(lps=(1, 2, 4), uid=0):
    return TaskSynopsis(
        host_id=0,
        stage_id=1,
        uid=uid,
        start_time=0.0,
        duration=0.01,
        log_points={lp: 1 for lp in lps},
    )


class TestInternTable:
    def test_same_elements_same_object(self):
        a = intern_signature([3, 1, 2])
        b = intern_signature({2: 5, 1: 1, 3: 9})  # dict iterates keys
        assert a is b

    def test_behaves_like_plain_frozenset(self):
        interned = intern_signature([1, 2, 4])
        plain = frozenset({1, 2, 4})
        assert interned == plain
        assert hash(interned) == hash(plain)
        assert interned in {plain}
        assert plain in {interned}
        assert isinstance(interned, frozenset)

    def test_canonical_tuple_is_sorted(self):
        interned = intern_signature([9, 1, 5])
        assert interned.canonical == (1, 5, 9)
        assert canonical_tuple(interned) == (1, 5, 9)
        # Plain frozensets get the tuple computed on demand.
        assert canonical_tuple(frozenset({9, 1, 5})) == (1, 5, 9)

    def test_table_size_and_clear(self):
        clear_intern_table()
        assert intern_table_size() == 0
        intern_signature([1])
        intern_signature([1])
        intern_signature([2])
        assert intern_table_size() == 2
        clear_intern_table()
        assert intern_table_size() == 0


class TestInterningAcrossLayers:
    def test_two_decodes_share_signature_identity(self):
        # The satellite micro-test: two independent decodes of the same
        # task shape yield identity-equal signatures.
        payload1 = synopsis(uid=1).encode()
        payload2 = synopsis(uid=2).encode()
        sig1 = TaskSynopsis.decode(payload1).signature
        sig2 = TaskSynopsis.decode(payload2).signature
        assert sig1 is sig2
        assert isinstance(sig1, InternedSignature)

    def test_synopsis_signature_is_cached(self):
        s = synopsis()
        assert s.signature is s.signature

    def test_model_keys_are_interned(self):
        trace = [synopsis(uid=i) for i in range(30)]
        model = OutlierModel().train(trace)
        (sig,) = model.stages[(0, 1)].signatures
        assert sig is intern_signature([1, 2, 4])

    def test_persistence_round_trip_interns(self):
        trace = [synopsis(uid=i) for i in range(30)]
        model = OutlierModel().train(trace)
        clone = model_from_json(model_to_json(model))
        (sig,) = clone.stages[(0, 1)].signatures
        assert sig is intern_signature([1, 2, 4])


class TestClassifyWithPlainFrozensets:
    def test_plain_frozenset_lookup_still_matches(self):
        trace = [synopsis(uid=i) for i in range(30)]
        model = OutlierModel().train(trace)
        label = model.classify_parts((0, 1), frozenset({1, 2, 4}), 0.01)
        assert not label.new_signature
