"""Compiled rule export: golden file, round-trip, and the CLI.

The golden file pins the exact text ``python -m repro rules`` emits for
a deterministic model — format drift must be a conscious edit of
``tests/core/golden/rules_demo.txt``, never an accident.  The
round-trip tests prove the text is faithful: :func:`parse_rules` on the
rendered output classifies identically to the compiled tables it came
from.
"""

import os

import pytest

from repro.core import (
    OutlierModel,
    SAADConfig,
    TaskSynopsis,
    compile_model,
    parse_rules,
    render_rules,
    save_model,
)
from repro.core.rules import FORMAT_LINE, main as rules_cli

pytestmark = pytest.mark.columnar

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "rules_demo.txt")


def synopsis(stage=1, host=0, uid=0, start=0.0, duration=0.01, lps=(1, 2, 4, 5)):
    return TaskSynopsis(
        host_id=host,
        stage_id=stage,
        uid=uid,
        start_time=start,
        duration=duration,
        log_points={lp: 1 for lp in lps},
    )


def golden_model():
    """Fully deterministic (no RNG): arithmetic durations, fixed mix.

    Four stage groups (2 hosts x 2 stages) and three signatures chosen
    to exercise every verdict the format can express: a dominant normal
    signature with a perf cut, a rare-but-tolerated signature, and a
    single-occurrence flow outlier.
    """
    trace = []
    for i in range(480):
        if i == 0:
            lps = (1, 2, 3, 4, 5, 6)  # single occurrence: flow outlier
        elif i % 40 == 2:
            lps = (1, 2, 3, 4, 5)  # rare but tolerated
        else:
            lps = (1, 2, 4, 5)
        trace.append(
            synopsis(
                stage=1 + i % 2,
                host=(i // 2) % 2,
                uid=i,
                start=i * 0.05,
                duration=0.005 + (i % 20) * 0.0005,
                lps=lps,
            )
        )
    config = SAADConfig(window_s=60.0, min_window_tasks=8)
    return OutlierModel(config).train(trace)


class TestGoldenFile:
    def test_rendered_rules_match_golden_file(self):
        text = render_rules(compile_model(golden_model()))
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert text == handle.read()

    def test_cli_prints_the_same_text(self, tmp_path, capsys):
        path = str(tmp_path / "model.json")
        save_model(golden_model(), path)
        assert rules_cli([path]) == 0
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert capsys.readouterr().out == handle.read()

    def test_cli_out_flag_writes_file(self, tmp_path, capsys):
        model_path = str(tmp_path / "model.json")
        out_path = str(tmp_path / "rules.txt")
        save_model(golden_model(), model_path)
        assert rules_cli([model_path, "--out", out_path]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(out_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert text.startswith(FORMAT_LINE)


class TestRoundTrip:
    def test_parsed_rules_classify_identically(self):
        model = golden_model()
        compiled = compile_model(model)
        parsed = parse_rules(render_rules(compiled))
        assert parsed.per_host == compiled.per_host
        assert parsed.generation == compiled.generation

        signatures = {
            signature
            for stage_model in model.stages.values()
            for signature in stage_model.signatures
        }
        signatures.add(frozenset({1, 99}))  # novel at compile time
        grid = [0, 1, 4999, 5000, 5001, 9_000, 14_500, 14_501, 100_000]
        for stage_key, stage in compiled.stages.items():
            host_id, stage_id = stage.stage_key
            for signature in signatures:
                sig_id = compiled.space.id_of(signature)
                for duration_us in grid:
                    want = compiled.classify(host_id, stage_id, sig_id, duration_us)
                    got = parsed.classify(host_id, stage_id, signature, duration_us)
                    assert got == want, (stage_key, signature, duration_us)

    def test_round_trip_covers_exact_cut_boundaries(self):
        compiled = compile_model(golden_model())
        parsed = parse_rules(render_rules(compiled))
        for stage in compiled.stages.values():
            host_id, stage_id = stage.stage_key
            for sig_id, flag in enumerate(stage.flags):
                if not flag:
                    continue
                cut = stage.cuts[sig_id]
                signature = compiled.space.signature_of(sig_id)
                for duration_us in (cut - 1, cut, cut + 1):
                    if not 0 <= duration_us < 2**31:
                        continue
                    assert parsed.classify(
                        host_id, stage_id, signature, duration_us
                    ) == compiled.classify(host_id, stage_id, sig_id, duration_us)


class TestParseErrors:
    def test_wrong_header_rejected(self):
        with pytest.raises(ValueError, match="not a saad compiled rules"):
            parse_rules("bogus\n")

    def test_sig_outside_stage_rejected(self):
        with pytest.raises(ValueError, match="outside any stage"):
            parse_rules(FORMAT_LINE + "\n  sig 1,2 -> normal\n")

    def test_unknown_verdict_rejected(self):
        with pytest.raises(ValueError, match="unknown verdict"):
            parse_rules(
                FORMAT_LINE + "\nstage host=0 id=1 tasks=1 flow_share=0.0\n"
                "  sig 1,2 -> maybe\n"
            )

    def test_unrecognized_line_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            parse_rules(FORMAT_LINE + "\nwat\n")
