"""Tests for the task execution tracker, on real and simulated threads."""

import pytest

from repro.core import SimThreadContext, TaskExecutionTracker
from repro.loglib import INFO, LoggerRepository
from repro.simsys import Environment, Executor, SimThread, spawn_worker


class SinkList(list):
    def sink(self, synopsis):
        self.append(synopsis)


def make_tracker(**kwargs):
    sink = SinkList()
    tracker = TaskExecutionTracker(host_id=0, sink=sink.sink, **kwargs)
    return tracker, sink


class TestRealThreadTracking:
    def test_explicit_task_lifecycle(self):
        times = iter([100.0, 100.2, 100.5, 101.0])
        tracker, sink = make_tracker(clock=lambda: next(times))
        repo = LoggerRepository(root_level=INFO, clock=lambda: 0.0)
        repo.add_interceptor(tracker)

        tracker.set_context(3)  # t=100.0
        log = repo.get_logger("stage")
        # Log call times come from the repo clock; drive tracker directly to
        # control timestamps precisely.
        from repro.loglib.record import LogCall

        tracker.on_log(LogCall(lpid=1, level=INFO, logger_name="stage", time=100.2))
        tracker.on_log(LogCall(lpid=2, level=INFO, logger_name="stage", time=100.5))
        tracker.on_log(LogCall(lpid=1, level=INFO, logger_name="stage", time=100.9))
        synopsis = tracker.end_task()

        assert synopsis is not None
        assert synopsis.stage_id == 3
        assert synopsis.log_points == {1: 2, 2: 1}
        assert synopsis.start_time == 100.0
        assert synopsis.duration == pytest.approx(0.9)
        assert sink == [synopsis]

    def test_set_context_reentry_finalizes_previous_task(self):
        clock_value = [0.0]
        tracker, sink = make_tracker(clock=lambda: clock_value[0])
        tracker.set_context(1)
        clock_value[0] = 5.0
        tracker.set_context(1)  # thread reuse: implicit end of task 1
        assert len(sink) == 1
        assert sink[0].stage_id == 1
        tracker.end_task()
        assert len(sink) == 2

    def test_end_task_without_context_is_noop(self):
        tracker, sink = make_tracker()
        assert tracker.end_task() is None
        assert sink == []

    def test_disabled_tracker_ignores_everything(self):
        tracker, sink = make_tracker(enabled=False)
        tracker.set_context(1)
        assert tracker.end_task() is None
        assert sink == []
        assert tracker.stats.tasks_started == 0

    def test_untracked_log_calls_counted(self):
        from repro.loglib.record import LogCall

        tracker, _ = make_tracker()
        tracker.on_log(LogCall(lpid=5, level=INFO, logger_name="x", time=0.0))
        assert tracker.stats.log_calls_untracked == 1

    def test_log_call_without_lpid_ignored(self):
        from repro.loglib.record import LogCall

        tracker, sink = make_tracker()
        tracker.set_context(1)
        tracker.on_log(LogCall(lpid=None, level=INFO, logger_name="x", time=0.0))
        synopsis = tracker.end_task()
        assert synopsis.log_points == {}

    def test_uids_are_unique_and_increasing(self):
        tracker, sink = make_tracker()
        for _ in range(3):
            tracker.set_context(0)
            tracker.end_task()
        assert [s.uid for s in sink] == [0, 1, 2]

    def test_duration_zero_when_no_log_points(self):
        tracker, sink = make_tracker()
        tracker.set_context(2)
        synopsis = tracker.end_task()
        assert synopsis.duration == 0.0


class TestSimThreadTracking:
    def test_executor_thread_reuse_produces_one_synopsis_per_task(self):
        env = Environment()
        sink = SinkList()
        tracker = TaskExecutionTracker(
            host_id=0,
            sink=sink.sink,
            context=SimThreadContext(env),
            clock=lambda: env.now,
        )
        repo = LoggerRepository(root_level=INFO, clock=lambda: env.now)
        repo.add_interceptor(tracker)
        log = repo.get_logger("stage")
        executor = Executor(env, pool_size=1, name="pool")

        def task(lpid):
            def body():
                tracker.set_context(9)
                yield env.timeout(1.0)
                log.info("work", lpid=lpid)

            return body

        for lpid in (1, 2, 3):
            executor.try_submit(task(lpid))
        env.run(until=100.0)
        executor.shutdown()
        env.run()
        # Two tasks closed by set_context re-entry; the last by thread exit.
        assert len(sink) == 3
        assert [s.log_points for s in sink] == [{1: 1}, {2: 1}, {3: 1}]
        assert all(s.stage_id == 9 for s in sink)
        assert all(s.duration == pytest.approx(1.0) for s in sink)

    def test_dispatcher_worker_thread_exit_finalizes(self):
        env = Environment()
        sink = SinkList()
        tracker = TaskExecutionTracker(
            host_id=0,
            sink=sink.sink,
            context=SimThreadContext(env),
            clock=lambda: env.now,
        )
        from repro.loglib.record import LogCall

        def worker_body():
            tracker.set_context(4)
            yield env.timeout(2.0)
            tracker.on_log(LogCall(lpid=8, level=INFO, logger_name="w", time=env.now))

        spawn_worker(env, worker_body(), name="worker-1")
        env.run()
        assert len(sink) == 1
        assert sink[0].stage_id == 4
        assert sink[0].log_points == {8: 1}
        assert sink[0].duration == pytest.approx(2.0)

    def test_interleaved_threads_do_not_mix_counts(self):
        env = Environment()
        sink = SinkList()
        tracker = TaskExecutionTracker(
            host_id=0,
            sink=sink.sink,
            context=SimThreadContext(env),
            clock=lambda: env.now,
        )
        from repro.loglib.record import LogCall

        def worker(stage_id, lpid, delay):
            def body():
                tracker.set_context(stage_id)
                for _ in range(3):
                    yield env.timeout(delay)
                    tracker.on_log(
                        LogCall(lpid=lpid, level=INFO, logger_name="w", time=env.now)
                    )

            return body()

        spawn_worker(env, worker(1, 11, 1.0), name="a")
        spawn_worker(env, worker(2, 22, 1.5), name="b")
        env.run()
        by_stage = {s.stage_id: s for s in sink}
        assert by_stage[1].log_points == {11: 3}
        assert by_stage[2].log_points == {22: 3}
