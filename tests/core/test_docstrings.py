"""Docstring coverage of the public analyzer API surfaces.

Every symbol exported via ``__all__`` of the covered packages
(``repro.core``, ``repro.shard``, ``repro.telemetry``, ``repro.tracing``,
``repro.health``) — and every public method and property those classes
expose — must carry a non-empty docstring.  This keeps
``help(repro.core.X)`` useful and stops new public surface from landing
undocumented.
"""

import inspect

import pytest

import repro.core
import repro.health
import repro.shard
import repro.telemetry
import repro.tracing

PACKAGES = [repro.core, repro.health, repro.shard, repro.telemetry, repro.tracing]


@pytest.fixture(params=PACKAGES, ids=lambda module: module.__name__)
def package(request):
    """One covered package per parametrized run."""
    return request.param


def _documented(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def _public_members(cls):
    """(name, member) pairs for public methods/properties defined by ``cls``.

    Inherited members (``object.__eq__``, dataclass machinery, named-tuple
    plumbing) are only reported against the class that defines them if
    that class is itself part of the public API.
    """
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member
        elif isinstance(member, (staticmethod, classmethod)):
            yield name, member.__func__
        elif inspect.isfunction(member):
            yield name, member


def test_module_itself_is_documented(package):
    assert _documented(package)


def test_every_public_symbol_has_a_docstring(package):
    undocumented = []
    for name in package.__all__:
        symbol = getattr(package, name)
        # Classes and functions only: type aliases (Signature, StageKey)
        # and constants (FLOW, NULL_TRACER) carry their docs in the
        # defining module.
        if inspect.isclass(symbol) or inspect.isroutine(symbol):
            if not _documented(symbol):
                undocumented.append(name)
    assert not undocumented, f"undocumented public symbols: {undocumented}"


def test_every_public_method_and_property_has_a_docstring(package):
    undocumented = []
    for name in package.__all__:
        symbol = getattr(package, name)
        if not inspect.isclass(symbol):
            continue
        for member_name, member in _public_members(symbol):
            if not _documented(member):
                undocumented.append(f"{name}.{member_name}")
    assert not undocumented, f"undocumented public members: {undocumented}"


def test_all_list_is_accurate(package):
    for name in package.__all__:
        assert hasattr(package, name), f"__all__ exports missing name {name}"


def test_every_submodule_is_documented(package):
    """Each module inside a covered package needs a module docstring.

    The package-level tests only see what ``__all__`` re-exports; this
    closes the gap for surfaces addressed by module path (e.g.
    ``repro.shard.shedding``, ``repro.shard.server``'s protocol notes),
    which is how DESIGN.md and OPERATIONS.md reference them.
    """
    import importlib
    import pkgutil

    undocumented = []
    for info in pkgutil.iter_modules(package.__path__):
        module = importlib.import_module(f"{package.__name__}.{info.name}")
        if not _documented(module):
            undocumented.append(module.__name__)
    assert not undocumented, f"undocumented submodules: {undocumented}"
