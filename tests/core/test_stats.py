"""Tests for the analyzer's statistical primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kfold_splits, percentile, proportion_exceeds_test


class TestProportionTest:
    def test_clear_excess_rejects(self):
        # 30% outliers against a 1% baseline over 200 tasks: unambiguous.
        result = proportion_exceeds_test(60, 200, 0.01, alpha=0.001)
        assert result.reject
        assert result.p_value < 0.001

    def test_at_baseline_does_not_reject(self):
        result = proportion_exceeds_test(2, 200, 0.01, alpha=0.001)
        assert not result.reject

    def test_below_baseline_does_not_reject(self):
        result = proportion_exceeds_test(0, 200, 0.05)
        assert not result.reject
        assert result.p_value == 1.0

    def test_empty_sample_never_rejects(self):
        result = proportion_exceeds_test(0, 0, 0.01)
        assert not result.reject

    def test_single_observation_never_rejects(self):
        result = proportion_exceeds_test(1, 1, 0.01)
        assert not result.reject

    def test_all_outliers_with_low_baseline_rejects(self):
        result = proportion_exceeds_test(50, 50, 0.01, alpha=0.001)
        assert result.reject

    def test_all_outliers_small_n_does_not_reject(self):
        # 2/2 outliers against a 20% baseline: 0.2^2 = 0.04 > 0.001.
        result = proportion_exceeds_test(2, 2, 0.2, alpha=0.001)
        assert not result.reject

    def test_invalid_successes_rejected(self):
        with pytest.raises(ValueError):
            proportion_exceeds_test(5, 3, 0.01)

    def test_invalid_baseline_rejected(self):
        with pytest.raises(ValueError):
            proportion_exceeds_test(1, 10, 1.5)

    def test_small_excess_needs_large_n(self):
        # 2% vs 1% baseline: not significant at n=100 at alpha=0.001 ...
        assert not proportion_exceeds_test(2, 100, 0.01, alpha=0.001).reject
        # ... but overwhelming at n=100000.
        assert proportion_exceeds_test(2000, 100000, 0.01, alpha=0.001).reject

    @settings(max_examples=100, deadline=None)
    @given(
        n=st.integers(2, 500),
        k=st.integers(0, 500),
        baseline=st.floats(0.0, 1.0),
    )
    def test_pvalue_in_unit_interval(self, n, k, baseline):
        k = min(k, n)
        result = proportion_exceeds_test(k, n, baseline)
        assert 0.0 <= result.p_value <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(n=st.integers(10, 300), baseline=st.floats(0.01, 0.5))
    def test_monotone_in_successes(self, n, baseline):
        # More outliers never makes the p-value larger.  The k == n endpoint
        # is excluded: there the implementation switches from the t
        # approximation to the exact binomial tail (sample variance is zero),
        # which is slightly more conservative than the t limit.
        previous = 1.0
        for k in range(0, n, max(1, n // 7)):
            p = proportion_exceeds_test(k, n, baseline).p_value
            assert p <= previous + 1e-12
            previous = p
        # The degenerate endpoint still rejects for large n at a tiny alpha.
        if n >= 30:
            assert proportion_exceeds_test(n, n, baseline, alpha=0.001).reject


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
        q=st.floats(0.0, 1.0),
    )
    def test_percentile_within_range(self, values, q):
        result = percentile(values, q)
        tolerance = 1e-9 * max(1.0, abs(min(values)), abs(max(values)))
        assert min(values) - tolerance <= result <= max(values) + tolerance

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(0, 1e6), min_size=2, max_size=50))
    def test_percentile_monotone_in_q(self, values):
        qs = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0]
        results = [percentile(values, q) for q in qs]
        tolerance = 1e-9 * max(1.0, abs(results[0]), abs(results[-1]))
        for earlier, later in zip(results, results[1:]):
            assert later >= earlier - tolerance


class TestKFold:
    def test_covers_all_indices_without_overlap(self):
        splits = kfold_splits(10, 3)
        covered = []
        for start, end in splits:
            covered.extend(range(start, end))
        assert covered == list(range(10))

    def test_fold_sizes_balanced(self):
        splits = kfold_splits(11, 5)
        sizes = [end - start for start, end in splits]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 11

    def test_k_larger_than_n_clamped(self):
        splits = kfold_splits(3, 10)
        assert len(splits) == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kfold_splits(0, 5)
        with pytest.raises(ValueError):
            kfold_splits(10, 1)

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 200), k=st.integers(2, 12))
    def test_partition_property(self, n, k):
        splits = kfold_splits(n, k)
        assert splits[0][0] == 0
        assert splits[-1][1] == n
        for (s1, e1), (s2, e2) in zip(splits, splits[1:]):
            assert e1 == s2
