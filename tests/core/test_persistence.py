"""Tests for outlier-model persistence."""

import random

import pytest

from repro.core import OutlierModel, SAADConfig, TaskSynopsis
from repro.core.persistence import (
    load_model,
    model_from_json,
    model_to_json,
    save_model,
)


def make_model(config=None):
    rng = random.Random(7)
    trace = []
    for i in range(500):
        lps = (1, 2, 4) if rng.random() > 0.01 else (1, 2, 3, 4)
        trace.append(
            TaskSynopsis(
                host_id=i % 2,
                stage_id=1,
                uid=i,
                start_time=i * 0.1,
                duration=0.01 * rng.lognormvariate(0, 0.3),
                log_points={lp: 1 for lp in lps},
            )
        )
    return OutlierModel(config or SAADConfig()).train(trace)


class TestModelPersistence:
    def test_round_trip_preserves_stages(self):
        model = make_model()
        clone = model_from_json(model_to_json(model))
        assert set(clone.stages) == set(model.stages)
        for key, stage in model.stages.items():
            clone_stage = clone.stages[key]
            assert clone_stage.total_tasks == stage.total_tasks
            assert clone_stage.flow_outlier_share == pytest.approx(
                stage.flow_outlier_share
            )
            assert set(clone_stage.signatures) == set(stage.signatures)

    def test_round_trip_preserves_classification(self):
        from repro.core import FeatureVector

        model = make_model()
        clone = model_from_json(model_to_json(model))
        features = [
            FeatureVector(0, 0, 1, frozenset({1, 2, 4}), 0.01, 0.0),
            FeatureVector(1, 0, 1, frozenset({1, 2, 3, 4}), 0.01, 0.0),
            FeatureVector(2, 0, 1, frozenset({9}), 0.01, 0.0),
            FeatureVector(3, 0, 1, frozenset({1, 2, 4}), 99.0, 0.0),
        ]
        for feature in features:
            assert clone.classify(feature) == model.classify(feature)

    def test_round_trip_preserves_config(self):
        config = SAADConfig(flow_percentile=0.95, window_s=42.0, per_host=False)
        model = make_model(config)
        clone = model_from_json(model_to_json(model))
        assert clone.config.flow_percentile == 0.95
        assert clone.config.window_s == 42.0
        assert clone.config.per_host is False

    def test_untrained_model_rejected(self):
        with pytest.raises(ValueError):
            model_to_json(OutlierModel())

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            model_from_json('{"format_version": 99}')

    def test_file_round_trip(self, tmp_path):
        model = make_model()
        path = str(tmp_path / "model.json")
        save_model(model, path)
        clone = load_model(path)
        assert set(clone.stages) == set(model.stages)

    def test_loaded_model_drives_detector(self):
        from repro.core import AnomalyDetector

        model = make_model()
        clone = model_from_json(model_to_json(model))
        detector = AnomalyDetector(clone)
        for i in range(30):
            detector.observe(
                TaskSynopsis(
                    host_id=0, stage_id=1, uid=i, start_time=i * 1.0,
                    duration=0.01, log_points={7: 1},
                )
            )
        detector.flush()
        assert detector.anomalies  # the new signature flags
