"""Property-style round-trip tests for the batch and frame codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TaskSynopsis,
    decode_batch,
    decode_frame,
    decode_frames,
    encode_batch,
    encode_frame,
)
from repro.core.synopsis import FRAME_HEADER, MAX_LOG_POINT_ENTRIES, MAX_UID


def make_synopsis(**overrides):
    base = dict(
        host_id=1,
        stage_id=4,
        uid=1234,
        start_time=100.5,
        duration=0.010,
        log_points={1: 1, 2: 5, 4: 1},
    )
    base.update(overrides)
    return TaskSynopsis(**base)


synopsis_strategy = st.builds(
    TaskSynopsis,
    host_id=st.integers(0, 255),
    stage_id=st.integers(0, 255),
    uid=st.integers(0, MAX_UID),
    start_time=st.integers(0, 2**40).map(lambda ms: ms / 1000.0),
    duration=st.integers(0, 2**31 - 1).map(lambda us: us / 1_000_000.0),
    log_points=st.dictionaries(
        st.integers(0, 0xFFFF), st.integers(1, 2**31 - 1), max_size=30
    ),
)


def assert_equivalent(decoded, original):
    assert decoded.host_id == original.host_id
    assert decoded.stage_id == original.stage_id
    assert decoded.uid == original.uid
    assert decoded.log_points == original.log_points
    assert decoded.signature == original.signature
    assert abs(decoded.start_time - original.start_time) < 2e-3
    assert abs(decoded.duration - original.duration) < 2e-6


@settings(max_examples=100, deadline=None)
@given(st.lists(synopsis_strategy, max_size=8))
def test_batch_round_trip_property(synopses):
    decoded = decode_batch(encode_batch(synopses))
    assert len(decoded) == len(synopses)
    for got, want in zip(decoded, synopses):
        assert_equivalent(got, want)


@settings(max_examples=100, deadline=None)
@given(st.lists(synopsis_strategy, max_size=8))
def test_frame_round_trip_property(synopses):
    frame = encode_frame(synopses)
    decoded, consumed = decode_frame(frame)
    assert consumed == len(frame)
    assert len(decoded) == len(synopses)
    for got, want in zip(decoded, synopses):
        assert_equivalent(got, want)


@settings(max_examples=50, deadline=None)
@given(st.lists(synopsis_strategy, min_size=1, max_size=4), st.integers(1, 18))
def test_truncated_batch_rejected(synopses, cut):
    # Cutting fewer bytes than one header leaves the trailing synopsis
    # partial no matter how the batch is laid out.
    payload = encode_batch(synopses)
    with pytest.raises(ValueError):
        decode_batch(payload[:-cut])


class TestUidAndTimestampLimits:
    def test_uid_out_of_range_raises(self):
        # The seed silently wrapped uid & 0xFFFFFFFF, round-tripping to a
        # *different* synopsis; now it is an error.
        with pytest.raises(ValueError, match="uid"):
            make_synopsis(uid=2**32).encode()

    def test_negative_uid_raises(self):
        with pytest.raises(ValueError, match="uid"):
            make_synopsis(uid=-1).encode()

    def test_near_limit_uid_round_trips(self):
        original = make_synopsis(uid=MAX_UID)
        assert TaskSynopsis.decode(original.encode()).uid == MAX_UID

    def test_wall_clock_start_time_round_trips(self):
        # A real epoch timestamp (~2026) overflows the seed's 32-bit ms
        # field; the widened 64-bit field keeps it exact to the ms.
        original = make_synopsis(start_time=1_785_900_000.123)
        decoded = TaskSynopsis.decode(original.encode())
        assert decoded.start_time == pytest.approx(original.start_time, abs=1e-3)

    def test_negative_start_time_raises(self):
        with pytest.raises(ValueError, match="start_time"):
            make_synopsis(start_time=-5.0).encode()


class TestEntryLimit:
    def test_max_entries_round_trip(self):
        log_points = {lpid: 1 for lpid in range(MAX_LOG_POINT_ENTRIES)}
        original = make_synopsis(log_points=log_points)
        decoded = TaskSynopsis.decode(original.encode())
        assert decoded.log_points == log_points

    def test_over_limit_rejected(self):
        log_points = {lpid: 1 for lpid in range(MAX_LOG_POINT_ENTRIES + 1)}
        with pytest.raises(ValueError, match="too many"):
            make_synopsis(log_points=log_points).encode()


class TestFrameErrors:
    def test_truncated_frame_header(self):
        with pytest.raises(ValueError, match="frame header"):
            decode_frame(b"\x01\x02")

    def test_truncated_frame_payload(self):
        frame = encode_frame([make_synopsis()])
        with pytest.raises(ValueError, match="frame payload"):
            decode_frame(frame[:-1])

    def test_count_mismatch_rejected(self):
        payload = make_synopsis().encode()
        bogus = FRAME_HEADER.pack(len(payload), 2) + payload
        with pytest.raises(ValueError, match="count mismatch"):
            decode_frame(bogus)

    def test_multi_frame_stream(self):
        frames = encode_frame([make_synopsis(uid=1)]) + encode_frame(
            [make_synopsis(uid=2), make_synopsis(uid=3)]
        )
        assert [s.uid for s in decode_frames(frames)] == [1, 2, 3]
