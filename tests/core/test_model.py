"""Tests for outlier-model training and classification."""

import random

import pytest

from repro.core import FeatureVector, OutlierModel, SAADConfig, TaskSynopsis


def synopsis(stage=1, host=0, uid=0, start=0.0, duration=0.01, lps=(1, 2, 3)):
    return TaskSynopsis(
        host_id=host,
        stage_id=stage,
        uid=uid,
        start_time=start,
        duration=duration,
        log_points={lp: 1 for lp in lps},
    )


def make_training_trace(
    n_common=990, n_rare=10, common_duration=0.01, rng_seed=7
):
    """A stage with one dominant signature and one rare signature."""
    rng = random.Random(rng_seed)
    trace = []
    for i in range(n_common):
        trace.append(
            synopsis(
                uid=i,
                duration=common_duration * rng.lognormvariate(0, 0.3),
                lps=(1, 2, 4, 5),
            )
        )
    for i in range(n_rare):
        trace.append(
            synopsis(uid=n_common + i, duration=common_duration, lps=(1, 2, 3, 4, 5))
        )
    return trace


class TestTraining:
    def test_dominant_signature_is_normal(self):
        model = OutlierModel().train(make_training_trace())
        stage = model.stages[(0, 1)]
        common = stage.signatures[frozenset({1, 2, 4, 5})]
        assert not common.is_flow_outlier
        assert common.share > 0.95

    def test_rare_signature_is_flow_outlier(self):
        model = OutlierModel().train(make_training_trace())
        stage = model.stages[(0, 1)]
        rare = stage.signatures[frozenset({1, 2, 3, 4, 5})]
        assert rare.is_flow_outlier
        assert stage.flow_outlier_share == pytest.approx(0.01)

    def test_flow_percentile_config_respected(self):
        # With a 90th-percentile threshold, a 1%-share signature is still an
        # outlier; with a 50%... flow_percentile must stay in [0.5, 1).
        config = SAADConfig(flow_percentile=0.9)
        model = OutlierModel(config).train(make_training_trace(n_common=900, n_rare=100))
        stage = model.stages[(0, 1)]
        rare = stage.signatures[frozenset({1, 2, 3, 4, 5})]
        # 10% share is not below the 10% cutoff.
        assert not rare.is_flow_outlier

    def test_duration_threshold_learned_for_big_signatures(self):
        model = OutlierModel().train(make_training_trace())
        stage = model.stages[(0, 1)]
        common = stage.signatures[frozenset({1, 2, 4, 5})]
        assert common.duration_threshold is not None
        assert common.duration_threshold > 0.01  # above the median
        assert common.perf_eligible

    def test_small_signatures_not_perf_eligible(self):
        model = OutlierModel().train(make_training_trace(n_rare=5))
        stage = model.stages[(0, 1)]
        rare = stage.signatures[frozenset({1, 2, 3, 4, 5})]
        assert rare.duration_threshold is None
        assert not rare.perf_eligible

    def test_kfold_discards_unstable_distribution(self):
        # For iid samples the held-out exceedance rate of a p99 threshold is
        # ~1% regardless of shape, so the k-fold check specifically catches
        # *non-stationary* durations: thresholds learned on part of the trace
        # do not transfer.  Simulate a drifting stage: the last fifth of the
        # trace is 10x slower.
        rng = random.Random(3)
        trace = []
        for i in range(1000):
            median = 0.01 if i < 800 else 0.1
            trace.append(
                synopsis(uid=i, duration=median * rng.lognormvariate(0, 0.2))
            )
        model = OutlierModel(SAADConfig(kfold_discard_factor=1.5)).train(trace)
        profile = model.stages[(0, 1)].signatures[frozenset({1, 2, 3})]
        assert profile.cv_outlier_rate is not None
        # The slow fold blows past thresholds learned from the fast folds.
        assert profile.cv_outlier_rate > 0.015
        assert not profile.perf_eligible

    def test_per_host_models_are_separate(self):
        trace = [synopsis(host=0, uid=i) for i in range(50)]
        trace += [synopsis(host=1, uid=i, lps=(7, 8)) for i in range(50)]
        model = OutlierModel().train(trace)
        assert (0, 1) in model.stages
        assert (1, 1) in model.stages
        assert frozenset({7, 8}) not in model.stages[(0, 1)].signatures

    def test_pooled_model_when_per_host_false(self):
        trace = [synopsis(host=h, uid=i) for h in (0, 1) for i in range(10)]
        model = OutlierModel(SAADConfig(per_host=False)).train(trace)
        assert list(model.stages) == [(0, 1)]
        assert model.stages[(0, 1)].total_tasks == 20


class TestSingleSortFit:
    def naive_fit(self, durations, config):
        """The seed's copy-per-fold reference implementation."""
        from repro.core import kfold_splits, percentile

        threshold = percentile(durations, config.duration_percentile)
        share = sum(1 for d in durations if d > threshold) / len(durations)
        rates = []
        for start, end in kfold_splits(len(durations), config.kfold):
            held_out = durations[start:end]
            training = durations[:start] + durations[end:]
            if not held_out or len(training) < 2:
                continue
            fold_threshold = percentile(training, config.duration_percentile)
            rates.append(
                sum(1 for d in held_out if d > fold_threshold) / len(held_out)
            )
        cv_rate = sum(rates) / len(rates) if rates else None
        return threshold, share, cv_rate

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [20, 21, 97, 500])
    def test_matches_copy_per_fold_reference(self, seed, n):
        # The single-sort fit must agree exactly with the seed's
        # slice-copy-and-resort implementation, duplicates included.
        rng = random.Random(seed)
        durations = [
            round(0.01 * rng.lognormvariate(0, 0.4), 4 if seed % 2 else 17)
            for _ in range(n)
        ]
        config = SAADConfig()
        model = OutlierModel(config)
        from repro.core import SignatureProfile

        profile = SignatureProfile(
            signature=frozenset({1}), count=n, share=1.0, is_flow_outlier=False
        )
        model._fit_duration(profile, durations)
        threshold, share, cv_rate = self.naive_fit(durations, config)
        assert profile.duration_threshold == pytest.approx(threshold, rel=0, abs=0)
        assert profile.perf_outlier_share == share
        assert profile.cv_outlier_rate == pytest.approx(cv_rate, rel=0, abs=0)


class TestClassification:
    @pytest.fixture
    def model(self):
        return OutlierModel().train(make_training_trace())

    def feature(self, duration=0.01, lps=(1, 2, 4, 5)):
        return FeatureVector(
            uid=0,
            host_id=0,
            stage_id=1,
            signature=frozenset(lps),
            duration=duration,
            start_time=0.0,
        )

    def test_normal_task(self, model):
        label = model.classify(self.feature())
        assert not label.flow_outlier
        assert not label.new_signature
        assert not label.perf_outlier
        assert label.perf_eligible

    def test_rare_signature_is_flow_outlier(self, model):
        label = model.classify(self.feature(lps=(1, 2, 3, 4, 5)))
        assert label.flow_outlier
        assert label.any_flow

    def test_new_signature_detected(self, model):
        label = model.classify(self.feature(lps=(1, 2)))
        assert label.new_signature
        assert label.any_flow

    def test_slow_task_is_perf_outlier(self, model):
        label = model.classify(self.feature(duration=10.0))
        assert label.perf_outlier
        assert not label.flow_outlier

    def test_unknown_stage_is_new_flow(self, model):
        feature = FeatureVector(
            uid=0, host_id=0, stage_id=99, signature=frozenset({1}),
            duration=0.0, start_time=0.0,
        )
        label = model.classify(feature)
        assert label.new_signature

    def test_untrained_model_raises(self):
        with pytest.raises(RuntimeError):
            OutlierModel().classify(
                FeatureVector(0, 0, 0, frozenset(), 0.0, 0.0)
            )


class TestIntrospection:
    def test_signature_distribution_sorted(self):
        model = OutlierModel().train(make_training_trace())
        dist = model.signature_distribution((0, 1))
        assert len(dist) == 2
        assert dist[0][1] >= dist[1][1]
        assert sum(share for _, share in dist) == pytest.approx(1.0)

    def test_summary(self):
        model = OutlierModel().train(make_training_trace())
        assert model.summary()[(0, 1)] == (1000, 2)
