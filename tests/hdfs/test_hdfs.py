"""Tests for the HDFS simulation: pipeline, recovery bug, stages."""

import pytest

from repro.hdfs import CLOSE_PACKET, HdfsCluster, NameNode


def run_gen(cluster, generator):
    box = {}

    def wrapper():
        box["value"] = yield from generator

    cluster.env.process(wrapper())
    cluster.env.run(until=cluster.env.now + 300.0)
    return box.get("value")


class TestNameNode:
    def test_add_block_pipeline_local_first(self):
        nn = NameNode(["h1", "h2", "h3", "h4"], replication=3)
        block = nn.add_block(client_host="h3")
        assert block.pipeline[0] == "h3"
        assert len(block.pipeline) == 3
        assert len(set(block.pipeline)) == 3

    def test_add_block_nonlocal_client(self):
        nn = NameNode(["h1", "h2"], replication=2)
        block = nn.add_block(client_host="elsewhere")
        assert sorted(block.pipeline) == ["h1", "h2"]

    def test_finalize_records_size(self):
        nn = NameNode(["h1"], replication=1)
        block = nn.add_block()
        nn.finalize_block(block.block_id, 12345)
        assert nn.blocks[block.block_id].finalized
        assert nn.blocks[block.block_id].size == 12345

    def test_generation_bump(self):
        nn = NameNode(["h1"], replication=1)
        block = nn.add_block()
        assert nn.bump_generation(block.block_id) == 2

    def test_blocks_on(self):
        nn = NameNode(["h1", "h2", "h3"], replication=2)
        block = nn.add_block(client_host="h2")
        assert block in nn.blocks_on("h2")


class TestWritePipeline:
    def test_file_write_replicates_to_three_nodes(self):
        cluster = HdfsCluster.standalone(n_datanodes=4, seed=3)
        client = cluster.client_for("host2")
        ok = run_gen(cluster, client.write_file(1 << 20))
        assert ok is True
        block = next(iter(cluster.namenode.blocks.values()))
        assert block.finalized
        assert block.pipeline[0] == "host2"
        # Every pipeline node persisted the payload.
        for name in block.pipeline:
            disk = cluster.sim_cluster[name].disk
            assert disk.stats.written_bytes >= 1 << 20

    def test_stream_sync_acknowledges(self):
        cluster = HdfsCluster.standalone(n_datanodes=3, seed=5)
        client = cluster.client_for("host1")

        def scenario():
            stream = client.open_stream()
            ok1 = yield from stream.write_sync(64 * 1024)
            ok2 = yield from stream.write_sync(64 * 1024)
            closed = yield from stream.close()
            return ok1 and ok2 and closed

        assert run_gen(cluster, scenario()) is True

    def test_pipeline_stages_emit_synopses(self):
        cluster = HdfsCluster.standalone(n_datanodes=3, seed=7)
        client = cluster.client_for("host1")
        run_gen(cluster, client.write_file(512 * 1024))
        cluster.env.run(until=cluster.env.now + 30.0)
        seen = {
            cluster.saad.stages.get(s.stage_id).name
            for s in cluster.saad.collector.synopses
        }
        for stage in (
            "DataXceiver",
            "PacketResponder",
            "DataStreamer",
            "ResponseProcessor",
            "Handler",
        ):
            assert stage in seen, f"missing stage {stage}"

    def test_xceiver_signature_matches_fig3(self):
        """Normal DataXceiver flow: recv block, packets, writes, close."""
        cluster = HdfsCluster.standalone(n_datanodes=3, seed=9)
        client = cluster.client_for("host1")
        run_gen(cluster, client.write_file(512 * 1024))
        cluster.env.run(until=cluster.env.now + 30.0)
        lps = cluster.lps
        stage = cluster.saad.stages.by_name("DataXceiver")
        signatures = {
            s.signature
            for s in cluster.saad.collector.synopses
            if s.stage_id == stage.stage_id
        }
        expected_subset = {
            lps.xc_recv_block.lpid,
            lps.xc_recv_packet.lpid,
            lps.xc_write.lpid,
            lps.xc_close.lpid,
        }
        assert any(expected_subset <= sig for sig in signatures)

    def test_dead_datanode_fails_sync(self):
        cluster = HdfsCluster.standalone(n_datanodes=3, seed=11)
        client = cluster.client_for("host1")

        def scenario():
            stream = client.open_stream()
            ok = yield from stream.write_sync(64 * 1024)
            assert ok
            cluster.datanodes["host2"].crash()
            ok2 = yield from stream.write_sync(64 * 1024, timeout_s=1.0)
            return ok2

        # host2 is in the pipeline (3 nodes, RF=3): sync must fail.
        assert run_gen(cluster, scenario()) is False


class TestRecoveryBug:
    def test_recovery_in_progress_reply(self):
        cluster = HdfsCluster.standalone(n_datanodes=3, seed=13)
        dn = cluster.datanodes["host1"]
        block = cluster.namenode.add_block(client_host="host1")
        results = []

        def scenario():
            first = dn.recover_block(block.block_id)
            yield cluster.env.timeout(0.5)  # first still running (takes ~3s)
            second = dn.recover_block(block.block_id)
            yield second
            results.append(second.value)
            yield first
            results.append(first.value)

        cluster.env.process(scenario())
        cluster.env.run(until=60.0)
        assert results[0] == "in-progress"
        assert results[1] == "ok"

    def test_buggy_client_exhausts_retries(self):
        cluster = HdfsCluster.standalone(n_datanodes=3, seed=15)
        client = cluster.client_for("host1", recovery_max_retries=5)
        block = cluster.namenode.add_block(client_host="host1")
        outcome = run_gen(cluster, client.recover_block_with_bug(block))
        # Attempt timeout (1s) < recovery duration (~3s): the loop burns
        # its retries on "in-progress" replies and gives up.
        assert outcome is False

    def test_recovery_storm_visible_in_recoverblocks_stage(self):
        cluster = HdfsCluster.standalone(n_datanodes=3, seed=17)
        client = cluster.client_for("host1", recovery_max_retries=5)
        block = cluster.namenode.add_block(client_host="host1")
        run_gen(cluster, client.recover_block_with_bug(block))
        cluster.env.run(until=cluster.env.now + 30.0)
        lps = cluster.lps
        stage = cluster.saad.stages.by_name("RecoverBlocks")
        in_progress_tasks = [
            s
            for s in cluster.saad.collector.synopses
            if s.stage_id == stage.stage_id
            and lps.rb_in_progress.lpid in s.signature
        ]
        assert len(in_progress_tasks) >= 3
