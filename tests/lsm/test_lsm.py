"""Unit and property tests for the LSM storage engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm import LSMStore, MemTable, SSTable, WriteAheadLog, merge_entries
from repro.simsys import Environment, FaultInjector, FaultSpec, SimDisk, SimulatedIOError


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def disk(env):
    return SimDisk(env, seed=5)


def run(env, generator):
    """Drive one process generator to completion, returning its value."""
    box = {}

    def wrapper():
        box["value"] = yield from generator

    env.process(wrapper())
    env.run()
    return box.get("value")


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put("k", "v", 100, timestamp=1.0)
        assert table.get("k") == ("v", 1.0)

    def test_newer_timestamp_wins(self):
        table = MemTable()
        table.put("k", "old", 100, timestamp=1.0)
        table.put("k", "new", 100, timestamp=2.0)
        assert table.get("k")[0] == "new"

    def test_stale_write_ignored(self):
        table = MemTable()
        table.put("k", "new", 100, timestamp=2.0)
        table.put("k", "stale", 100, timestamp=1.0)
        assert table.get("k")[0] == "new"

    def test_size_tracks_overwrites(self):
        table = MemTable()
        table.put("k", "a", 100, timestamp=1.0)
        table.put("k", "b", 150, timestamp=2.0)
        assert table.size_bytes == 150

    def test_is_full(self):
        table = MemTable(flush_threshold_bytes=250)
        table.put("a", 1, 100, 1.0)
        assert not table.is_full
        table.put("b", 2, 200, 2.0)
        assert table.is_full

    def test_frozen_rejects_writes(self):
        table = MemTable()
        table.freeze()
        with pytest.raises(RuntimeError):
            table.put("k", "v", 10, 1.0)

    def test_sorted_items(self):
        table = MemTable()
        for key in ("b", "a", "c"):
            table.put(key, key.upper(), 10, 1.0)
        assert [k for k, *_ in table.sorted_items()] == ["a", "b", "c"]


class TestWAL:
    def test_append_accumulates(self, env, disk):
        wal = WriteAheadLog(disk)
        run(env, wal.append(1000))
        assert wal.total_appends == 1
        assert wal.pending_bytes == 1000

    def test_segment_rolls_at_threshold(self, env, disk):
        wal = WriteAheadLog(disk, segment_bytes=1500)
        run(env, wal.append(1000))
        assert len(wal.segments) == 1
        run(env, wal.append(1000))
        assert len(wal.segments) == 2
        assert wal.segments[0].sealed

    def test_trim_discards_sealed_only(self, env, disk):
        wal = WriteAheadLog(disk, segment_bytes=100)
        run(env, wal.append(150))  # seals segment 0
        run(env, wal.append(10))  # active segment
        discarded = run(env, wal.trim())
        assert discarded == 1
        assert len(wal.segments) == 1
        assert wal.pending_bytes == 10

    def test_wal_fault_raises(self, env):
        disk = SimDisk(env, seed=5)
        injector = FaultInjector("h", seed=1)
        injector.arm(FaultSpec("wal", "error", 1.0))
        disk.fault_injector = injector
        wal = WriteAheadLog(disk)

        def proc():
            with pytest.raises(SimulatedIOError):
                yield from wal.append(100)

        env.process(proc())
        env.run()
        assert wal.total_appends == 0


class TestSSTable:
    def test_rejects_unsorted_entries(self, disk):
        with pytest.raises(ValueError):
            SSTable([("b", 1, 10, 1.0), ("a", 2, 10, 1.0)], disk)

    def test_read_hit_and_miss(self, env, disk):
        table = SSTable([("a", "va", 10, 1.0)], disk)
        assert run(env, table.read("a")) == ("va", 1.0)
        assert run(env, table.read("zz")) is None

    def test_might_contain(self, disk):
        table = SSTable([("a", 1, 10, 1.0)], disk)
        assert table.might_contain("a")
        assert not table.might_contain("b")

    def test_merge_newest_wins(self, disk):
        old = SSTable([("k", "old", 10, 1.0)], disk)
        new = SSTable([("k", "new", 10, 2.0)], disk)
        merged = merge_entries([old, new])
        assert merged == [("k", "new", 10, 2.0)]


class TestLSMStore:
    def make_store(self, env, **kwargs):
        disk = SimDisk(env, seed=5)
        kwargs.setdefault("memtable_flush_bytes", 300)
        kwargs.setdefault("compaction_threshold", 3)
        return LSMStore(disk, **kwargs)

    def test_apply_signals_full(self, env):
        store = self.make_store(env)
        assert not store.apply("a", 1, 100, 1.0)
        assert not store.apply("b", 2, 100, 2.0)
        assert store.apply("c", 3, 100, 3.0)

    def test_get_from_memtable(self, env):
        store = self.make_store(env)
        store.apply("k", "v", 10, 1.0)
        assert run(env, store.get("k")) == "v"

    def test_get_missing_returns_none(self, env):
        store = self.make_store(env)
        assert run(env, store.get("nope")) is None

    def test_flush_moves_data_to_sstable(self, env):
        store = self.make_store(env)
        store.apply("k", "v", 350, 1.0)
        frozen = store.switch_memtable()
        assert store.pending_flushes == [frozen]
        run(env, store.flush(frozen))
        assert store.pending_flushes == []
        assert len(store.sstables) == 1
        assert run(env, store.get("k")) == "v"

    def test_get_sees_pending_flush(self, env):
        store = self.make_store(env)
        store.apply("k", "v", 350, 1.0)
        store.switch_memtable()
        assert run(env, store.get("k")) == "v"

    def test_newest_value_wins_across_layers(self, env):
        store = self.make_store(env)
        store.apply("k", "v1", 350, 1.0)
        frozen = store.switch_memtable()
        run(env, store.flush(frozen))
        store.apply("k", "v2", 10, 2.0)
        assert run(env, store.get("k")) == "v2"

    def test_compaction_preserves_data(self, env):
        store = self.make_store(env)
        for round_id in range(3):
            for key in ("a", "b"):
                store.apply(key, f"{key}{round_id}", 160, float(round_id))
            frozen = store.switch_memtable()
            run(env, store.flush(frozen))
        assert store.needs_compaction
        run(env, store.compact())
        assert len(store.sstables) == 1
        assert run(env, store.get("a")) == "a2"
        assert run(env, store.get("b")) == "b2"

    def test_major_compaction_merges_all(self, env):
        store = self.make_store(env, compaction_threshold=2)
        for round_id in range(4):
            store.apply("k", round_id, 350, float(round_id))
            run(env, store.flush(store.switch_memtable()))
        run(env, store.compact(major=True))
        assert len(store.sstables) == 1
        assert run(env, store.get("k")) == 3

    def test_compacted_output_stays_below_newer_tables(self, env):
        store = self.make_store(env, compaction_threshold=2)
        # Two old tables with older values, then a newer table.
        for round_id in range(3):
            store.apply("k", f"v{round_id}", 350, float(round_id))
            run(env, store.flush(store.switch_memtable()))
        # Compact merges only the two oldest; newest stays on top.
        run(env, store.compact())
        assert run(env, store.get("k")) == "v2"


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "flush", "compact"]),
            st.integers(0, 9),
            st.integers(0, 100),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_store_matches_dict_model(ops):
    """The LSM store behaves like a plain dict under put/flush/compact."""
    env = Environment()
    disk = SimDisk(env, seed=9)
    store = LSMStore(disk, memtable_flush_bytes=10**9, compaction_threshold=2)
    model = {}
    timestamp = 0.0

    def scenario():
        nonlocal timestamp
        for op, key_i, value in ops:
            key = f"k{key_i}"
            if op == "put":
                timestamp += 1.0
                store.apply(key, value, 64, timestamp)
                model[key] = value
            elif op == "flush":
                if len(store.memtable):
                    frozen = store.switch_memtable()
                    yield from store.flush(frozen)
            elif op == "compact":
                yield from store.compact()
        for key, expected in model.items():
            actual = yield from store.get(key)
            assert actual == expected, (key, actual, expected)

    env.process(scenario())
    env.run()
