"""Behavioural tests for the HBase simulation."""

import pytest

from repro.hbase import HBaseCluster, HBaseConfig, HBaseOp
from repro.ycsb import ClientPool, write_heavy


def make_cluster(**kwargs):
    kwargs.setdefault("n_servers", 4)
    kwargs.setdefault("seed", 9)
    return HBaseCluster(**kwargs)


def start_clients(cluster, n_clients=12, think=0.03, seed=3, records=4000, **pool_kwargs):
    def submit(_node, op):
        kind = "read" if op.kind == "read" else "write"
        return cluster.submit(
            HBaseOp(kind, op.key, value="v", value_bytes=op.value_bytes)
        )

    return ClientPool(
        cluster.env,
        write_heavy(record_count=records),
        submit,
        list(cluster.regionservers),
        n_clients=n_clients,
        think_time_s=think,
        seed=seed,
        **pool_kwargs,
    )


def stage_synopses(cluster, stage_name, host_name=None):
    stage = cluster.saad.stages.by_name(stage_name)
    host_ids = cluster.saad.host_names
    return [
        s
        for s in cluster.saad.collector.synopses
        if s.stage_id == stage.stage_id
        and (host_name is None or host_ids[s.host_id] == host_name)
    ]


class TestHealthyCluster:
    def test_ops_succeed(self):
        cluster = make_cluster()
        pool = start_clients(cluster)
        cluster.run(until=60.0)
        records = pool.meter.records
        assert records
        assert sum(r.ok for r in records) / len(records) > 0.99

    def test_region_skew_favors_first_two_servers(self):
        cluster = make_cluster()
        counts = {name: len(rs.regions) for name, rs in cluster.regionservers.items()}
        assert counts["host1"] > counts["host3"]
        assert counts["host2"] > counts["host4"]

    def test_routing_is_by_region_owner(self):
        cluster = make_cluster()
        key = "user000000000001"
        owner = cluster.region_owner[cluster.region_name_for(key)]
        assert owner in cluster.regionservers

    def test_call_and_handler_stages_emit(self):
        cluster = make_cluster()
        start_clients(cluster)
        cluster.run(until=60.0)
        assert stage_synopses(cluster, "Call")
        assert stage_synopses(cluster, "Handler")

    def test_memstore_flush_creates_storefiles_and_pipeline_tasks(self):
        config = HBaseConfig(memstore_flush_bytes=128 * 1024, n_regions=4)
        cluster = make_cluster(config=config)
        start_clients(cluster, n_clients=16, think=0.01)
        cluster.run(until=120.0)
        storefiles = sum(
            len(r.storefiles)
            for rs in cluster.regionservers.values()
            for r in rs.regions.values()
        )
        assert storefiles > 0
        assert stage_synopses(cluster, "MemStoreFlusher")
        # Flush files go through the HDFS pipeline: closed-block tasks.
        assert stage_synopses(cluster, "DataXceiver")

    def test_minor_compaction_runs_under_write_load(self):
        config = HBaseConfig(
            memstore_flush_bytes=96 * 1024,
            n_regions=4,
            storefile_compact_threshold=3,
            compaction_check_interval_s=5.0,
        )
        cluster = make_cluster(config=config)
        start_clients(cluster, n_clients=16, think=0.01)
        cluster.run(until=240.0)
        assert stage_synopses(cluster, "CompactionRequest")


class TestCrashAndFailover:
    def run_crash_scenario(self):
        cluster = make_cluster()
        pool = start_clients(cluster)

        def trigger():
            yield cluster.env.timeout(30.0)
            cluster.regionservers["host3"].force_wal_failure()

        cluster.env.process(trigger())
        cluster.run(until=150.0)
        return cluster, pool

    def test_forced_wal_failure_aborts_server(self):
        cluster, _pool = self.run_crash_scenario()
        rs3 = cluster.regionservers["host3"]
        assert not rs3.alive
        assert rs3.abort_reason == "premature recovery termination"
        assert all(
            cluster.regionservers[n].alive for n in ("host1", "host2", "host4")
        )

    def test_recovery_storm_hits_local_datanode(self):
        cluster, _pool = self.run_crash_scenario()
        lps = cluster.hdfs.lps
        storm = [
            s
            for s in stage_synopses(cluster, "RecoverBlocks", "host3")
            if lps.rb_in_progress.lpid in s.signature
        ]
        assert storm, "expected repeated in-progress recovery replies on host3"

    def test_regions_reassigned_to_survivors(self):
        cluster, _pool = self.run_crash_scenario()
        assert cluster.master.reassignments
        for region, dead, target in cluster.master.reassignments:
            assert dead == "host3"
            assert target != "host3"
            assert region in cluster.regionservers[target].regions
        assert stage_synopses(cluster, "OpenRegionHandler")
        assert stage_synopses(cluster, "PostOpenDeployTasksThread")
        assert stage_synopses(cluster, "SplitLogWorker")

    def test_throughput_recovers_after_reassignment(self):
        cluster, pool = self.run_crash_scenario()
        before = pool.meter.mean_throughput(5.0, 30.0)
        after = pool.meter.mean_throughput(90.0, 150.0)
        assert after > 0.75 * before


class TestHogFault:
    def test_medium_hog_slows_gets_but_no_crash(self):
        cluster = make_cluster()
        pool = start_clients(cluster)
        schedule = cluster.hog_schedule([(60.0, 180.0, 2)])
        schedule.start()
        cluster.run(until=180.0)
        assert all(rs.alive for rs in cluster.regionservers.values())
        reads_before = [
            r.latency for r in pool.meter.records
            if r.kind == "read" and r.ok and r.time < 60.0
        ]
        reads_during = [
            r.latency for r in pool.meter.records
            if r.kind == "read" and r.ok and r.time >= 60.0
        ]
        assert reads_before and reads_during
        median = lambda v: sorted(v)[len(v) // 2]
        assert median(reads_during) > 1.2 * median(reads_before)


class TestPutBatching:
    def test_batched_clients_produce_fewer_syncs(self):
        """The YCSB 0.1.4 put-batching misconfiguration (Sec. 5.5)."""

        def run(batching):
            cluster = make_cluster()

            def submit_batch(_node, ops):
                first = ops[0]
                return cluster.submit(
                    HBaseOp(
                        "write",
                        first.key,
                        value="v",
                        value_bytes=first.value_bytes,
                        edits=len(ops),
                    )
                )

            pool = start_clients(
                cluster,
                put_batching=batching,
                batch_size=40,
                batch_flush_interval_s=15.0,
                submit_batch=submit_batch,
            )
            cluster.run(until=90.0)
            syncs = len(
                [
                    s
                    for s in stage_synopses(cluster, "Handler")
                    if cluster.lps.ha_sync_start.lpid in s.signature
                ]
            )
            return syncs

        unbatched = run(False)
        batched = run(True)
        assert batched < unbatched * 0.6
