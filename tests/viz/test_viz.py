"""Tests for the text visualization helpers."""

import pytest

from repro.core import AnomalyEvent, FLOW, PERFORMANCE
from repro.viz import TimelineGrid, render_table, render_timeline


def event(kind=FLOW, host=0, stage=1, window=0.0):
    return AnomalyEvent(
        kind=kind, host_id=host, stage_id=stage,
        window_start=window, window_end=window + 60.0,
        outliers=5, n=100, baseline=0.01, p_value=1e-6,
    )


class TestTimelineGrid:
    def test_marks_land_in_right_window(self):
        grid = TimelineGrid(window_s=60.0, horizon_s=300.0)
        grid.mark("Table", "host4", 130.0, FLOW)
        assert grid.rows[("Table", "host4")][2] == {FLOW}

    def test_add_events(self):
        grid = TimelineGrid(window_s=60.0, horizon_s=300.0)
        grid.add_events(
            [event(window=60.0), event(kind=PERFORMANCE, window=60.0)],
            stage_names={1: "Table"},
            host_names={0: "host1"},
        )
        assert grid.rows[("Table", "host1")][1] == {FLOW, PERFORMANCE}

    def test_count_by_kind(self):
        grid = TimelineGrid(window_s=60.0, horizon_s=300.0)
        grid.mark("A", "h", 10.0, FLOW)
        grid.mark("A", "h", 70.0, FLOW)
        grid.mark("B", "h", 10.0, PERFORMANCE)
        assert grid.count(FLOW) == 2
        assert grid.count(PERFORMANCE) == 1
        assert grid.count() == 3

    def test_rows_with(self):
        grid = TimelineGrid(window_s=60.0, horizon_s=300.0)
        grid.mark("A", "h1", 10.0, FLOW)
        grid.mark("B", "h2", 10.0, PERFORMANCE)
        assert grid.rows_with(FLOW) == [("A", "h1")]

    def test_out_of_horizon_marks_dropped(self):
        grid = TimelineGrid(window_s=60.0, horizon_s=120.0)
        grid.mark("A", "h", 500.0, FLOW)
        assert grid.count() == 0


class TestRenderTimeline:
    def test_render_contains_glyphs_and_labels(self):
        grid = TimelineGrid(window_s=60.0, horizon_s=240.0)
        grid.mark("Table", "host4", 70.0, FLOW)
        grid.mark("Table", "host4", 130.0, PERFORMANCE)
        grid.mark("Table", "host4", 190.0, FLOW)
        grid.mark("Table", "host4", 190.0, PERFORMANCE)
        text = render_timeline(grid, title="demo")
        assert "demo" in text
        assert "Table(host4)" in text
        row = [l for l in text.splitlines() if l.startswith("Table")][0]
        assert "F" in row and "P" in row and "B" in row

    def test_render_with_throughput_and_faults(self):
        grid = TimelineGrid(window_s=60.0, horizon_s=240.0)
        grid.mark("A", "h", 10.0, FLOW)
        text = render_timeline(
            grid,
            throughput=[(0.0, 100.0), (60.0, 50.0)],
            fault_windows=[(60.0, 120.0, "hog")],
        )
        assert "throughput" in text
        assert "hog" in text
        assert "^" in text


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["system", "value"], [("cassandra", 1), ("hbase", 22)], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "system" in lines[1]
        assert "cassandra" in lines[3]

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])
