"""Golden-output tests for :func:`repro.viz.timeline.render_trace`."""

import pytest

from repro.tracing import StageSpan, TaskTrace, TraceEvent
from repro.viz import render_trace

STAGES = {3: "flush"}
HOSTS = {1: "alpha"}
TEMPLATES = {10: "begin {}", 11: "midpoint {}", 12: "end {}"}


def small_trace(retained=False, pinned=False):
    events = (
        TraceEvent(10, 100.0),
        TraceEvent(11, 100.05),
        TraceEvent(12, 100.1),
    )
    span = StageSpan(stage_id=3, start_time=100.0, end_time=100.1, events=events)
    return TaskTrace(
        host_id=1,
        uid=42,
        start_time=100.0,
        end_time=100.1,
        spans=(span,),
        signature=frozenset({10, 11, 12}),
        retained=retained,
        pinned=pinned,
    )


GOLDEN = """\
task 42 @ alpha — 100.00ms, 1 span, 3 events
  stage flush [+0.00ms → +100.00ms]
    +0.00ms     |*··········| L10 begin {}
    +50.00ms    |·····*·····| L11 midpoint {}
    +100.00ms   |··········*| L12 end {}
"""


class TestGoldenOutput:
    def test_exact_rendering(self):
        text = render_trace(
            small_trace(),
            stage_names=STAGES,
            host_names=HOSTS,
            templates=TEMPLATES,
            width=11,
        )
        assert text == GOLDEN

    def test_deterministic(self):
        kwargs = dict(
            stage_names=STAGES, host_names=HOSTS, templates=TEMPLATES, width=11
        )
        assert render_trace(small_trace(), **kwargs) == render_trace(
            small_trace(), **kwargs
        )


class TestFlagsAndFallbacks:
    def test_capture_flags_in_header(self):
        text = render_trace(small_trace(retained=True, pinned=True))
        assert "[retained] [pinned]" in text.splitlines()[0]

    def test_unknown_ids_fall_back(self):
        text = render_trace(small_trace())
        assert "host1" in text
        assert "stage3" in text
        assert "L10" in text and "begin" not in text

    def test_callable_resolvers(self):
        text = render_trace(
            small_trace(),
            stage_names=lambda sid: f"S{sid}",
            templates=lambda lpid: None,  # None falls back to bare L<id>
        )
        assert "stage S3" in text
        assert "L10\n" in text

    def test_seconds_formatting_above_one_second(self):
        span = StageSpan(stage_id=0, start_time=0.0, end_time=2.5,
                         events=(TraceEvent(1, 2.5),))
        trace = TaskTrace(host_id=0, uid=0, start_time=0.0, end_time=2.5,
                          spans=(span,), signature=frozenset({1}))
        text = render_trace(trace)
        assert "2.500s" in text

    def test_zero_duration_trace(self):
        span = StageSpan(stage_id=0, start_time=5.0, end_time=5.0,
                         events=(TraceEvent(1, 5.0),))
        trace = TaskTrace(host_id=0, uid=0, start_time=5.0, end_time=5.0,
                          spans=(span,), signature=frozenset({1}))
        text = render_trace(trace, width=10)
        # Marker stays at column 0 of the 10-column gauge.
        assert "|*·········|" in text

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_trace(small_trace(), width=1)

    def test_singular_plural_wording(self):
        text = render_trace(small_trace())
        assert "1 span, 3 events" in text
