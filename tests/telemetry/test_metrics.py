"""Metric primitive semantics: counters, gauges, log-scale histograms."""

import threading

import pytest

from repro.telemetry import (
    CounterFamily,
    DEFAULT_BUCKETS,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    log_buckets,
)

pytestmark = pytest.mark.telemetry


class TestLogBuckets:
    def test_geometric_progression(self):
        assert log_buckets(0.001, 10.0, 4) == (0.001, 0.01, 0.1, 1.0)

    def test_default_buckets_span_ms_to_1000s(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == 1000.0
        assert len(DEFAULT_BUCKETS) == 7

    @pytest.mark.parametrize(
        "start,factor,count",
        [(0.0, 10.0, 3), (-1.0, 10.0, 3), (0.1, 1.0, 3), (0.1, 0.5, 3), (0.1, 10.0, 0)],
    )
    def test_invalid_arguments_rejected(self, start, factor, count):
        with pytest.raises(ValueError):
            log_buckets(start, factor, count)


class TestCounter:
    def test_inc_defaults_to_one(self):
        family = CounterFamily("c")
        family.inc()
        family.inc(2.5)
        assert family.value == 3.5

    def test_negative_increment_rejected(self):
        family = CounterFamily("c")
        with pytest.raises(ValueError):
            family.inc(-1)

    def test_labeled_children_are_independent(self):
        family = CounterFamily("c", label_names=("host",))
        family.labels(host="a").inc(5)
        family.labels(host="b").inc(7)
        assert family.labels(host="a").value == 5
        assert family.labels(host="b").value == 7

    def test_label_values_keyed_as_strings(self):
        family = CounterFamily("c", label_names=("host",))
        family.labels(host=4).inc()
        assert family.labels(host="4").value == 1

    def test_wrong_label_set_rejected(self):
        family = CounterFamily("c", label_names=("host",))
        with pytest.raises(ValueError):
            family.labels(node="a")
        with pytest.raises(ValueError):
            family.labels()

    def test_unlabeled_shortcut_requires_no_labels_declared(self):
        family = CounterFamily("c", label_names=("host",))
        with pytest.raises(ValueError):
            family.inc()

    def test_unlabeled_family_materializes_default_child_at_zero(self):
        # Never-hit counters must still be visible in snapshots.
        snapshot = CounterFamily("c", help="h").collect()
        assert snapshot["samples"] == [{"labels": {}, "value": 0.0}]

    def test_callback_backed_series(self):
        state = {"n": 0}
        family = CounterFamily("c")
        family.set_function(lambda: state["n"])
        state["n"] = 41
        assert family.value == 41


class TestGauge:
    def test_set_inc_dec(self):
        family = GaugeFamily("g")
        family.set(10)
        family.inc(4)
        family.dec()
        assert family.value == 13

    def test_gauge_may_go_negative(self):
        family = GaugeFamily("g")
        family.dec(2)
        assert family.value == -2


class TestHistogram:
    def test_bounds_are_le_inclusive(self):
        family = HistogramFamily("h", buckets=(0.1, 1.0))
        family.observe(0.1)  # lands in the 0.1 bucket, not the next
        cumulative = dict(family._default().buckets())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 1

    def test_overflow_lands_only_in_inf(self):
        family = HistogramFamily("h", buckets=(0.1, 1.0))
        family.observe(5.0)
        cumulative = family._default().buckets()
        assert cumulative == [(0.1, 0), (1.0, 0), (float("inf"), 1)]

    def test_buckets_are_cumulative(self):
        family = HistogramFamily("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0, 500.0):
            family.observe(value)
        assert family._default().buckets() == [
            (1.0, 2),
            (10.0, 3),
            (100.0, 4),
            (float("inf"), 5),
        ]

    def test_count_and_sum(self):
        family = HistogramFamily("h", buckets=(1.0,))
        family.observe(0.5)
        family.observe(2.0)
        assert family.count == 2
        assert family.sum == 2.5

    def test_unsorted_bucket_spec_is_sorted(self):
        family = HistogramFamily("h", buckets=(10.0, 1.0))
        assert family.bucket_bounds == (1.0, 10.0)

    def test_empty_bucket_spec_rejected(self):
        with pytest.raises(ValueError):
            HistogramFamily("h", buckets=())

    def test_collect_encodes_inf_as_string(self):
        family = HistogramFamily("h", buckets=(1.0,))
        family.observe(0.5)
        sample = family.collect()["samples"][0]
        assert sample["buckets"] == [[1.0, 1], ["+Inf", 1]]
        assert sample["count"] == 1
        assert sample["sum"] == 0.5


class TestThreadSafety:
    THREADS = 8
    INCS = 5000

    def test_concurrent_counter_increments_are_exact(self):
        family = CounterFamily("c", label_names=("host",))

        def worker():
            child = family.labels(host="shared")
            for _ in range(self.INCS):
                child.inc()

        threads = [threading.Thread(target=worker) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert family.labels(host="shared").value == self.THREADS * self.INCS

    def test_concurrent_registration_yields_one_family(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()
            seen.append(registry.counter("same_name"))

        threads = [threading.Thread(target=worker) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, seen))) == 1

    def test_concurrent_histogram_observations_are_exact(self):
        family = HistogramFamily("h", buckets=(1.0, 10.0))

        def worker():
            for _ in range(self.INCS):
                family.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = self.THREADS * self.INCS
        assert family.count == total
        assert family._default().buckets()[0] == (1.0, total)
