"""Exporter behavior: Prometheus text format (golden) and JSON-lines."""

import io
import json
import os
import re

import pytest

from repro.telemetry import (
    MetricsRegistry,
    read_jsonl,
    render_prometheus,
    render_table,
    snapshot_of,
    write_jsonl,
)

pytestmark = pytest.mark.telemetry

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "prometheus.txt")
EDGE_GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "prometheus_edge.txt"
)

#: One Prometheus text-format sample line: name{labels} value.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # optional label set
    r" [^ ]+$"  # value
)


def build_registry() -> MetricsRegistry:
    """A small deterministic registry exercising all three metric kinds."""
    registry = MetricsRegistry()
    tasks = registry.counter("demo_tasks", "Tasks processed per host.", labels=("host",))
    tasks.labels(host="alpha").inc(3)
    tasks.labels(host="beta").inc(4)
    registry.gauge("demo_open_windows", "Currently open detection windows.").set(2)
    lag = registry.histogram(
        "demo_lag_seconds", "Window close lag.", buckets=(0.5, 2.0)
    )
    for value in (0.25, 0.5, 5.0):
        lag.observe(value)
    registry.counter("demo_untouched", "Registered but never incremented.")
    return registry


class TestPrometheus:
    def test_matches_golden_file(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert render_prometheus(build_registry()) == expected

    def test_every_line_parses(self):
        for line in render_prometheus(build_registry()).splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE_LINE.match(line), f"unparseable sample line: {line!r}"

    def test_histogram_bucket_series_are_cumulative(self):
        text = render_prometheus(build_registry())
        buckets = re.findall(r'demo_lag_seconds_bucket\{le="([^"]+)"\} (\d+)', text)
        assert buckets == [("0.5", "2"), ("2", "2"), ("+Inf", "3")]
        assert "demo_lag_seconds_count 3" in text
        assert "demo_lag_seconds_sum 5.75" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("path",)).labels(path='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_zero_valued_metric_still_rendered(self):
        assert "demo_untouched 0" in render_prometheus(build_registry())

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus([]) == ""


def build_edge_registry() -> MetricsRegistry:
    """A registry of exposition-format edge cases (see ``EDGE_GOLDEN``)."""
    registry = MetricsRegistry()
    paths = registry.counter(
        "edge_requests",
        'Per-path hits; values contain "quotes", \\ and\nnewlines.',
        labels=("path",),
    )
    paths.labels(path='/a"b').inc()
    paths.labels(path="C:\\temp").inc(2)
    paths.labels(path="line1\nline2").inc(3)
    registry.counter(
        "edge_idle", "Labeled family with no observed children.", labels=("host",)
    )
    registry.gauge("edge_depth", "Queue depth right now.").set(4)
    registry.counter("edge_helpless")
    return registry


class TestPrometheusEdgeCases:
    """Escaping, empty families, and TYPE lines — locked by a golden file."""

    def test_matches_golden_file(self):
        with open(EDGE_GOLDEN, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert render_prometheus(build_edge_registry()) == expected

    def test_quote_backslash_newline_escaped_in_label_values(self):
        text = render_prometheus(build_edge_registry())
        assert 'edge_requests{path="/a\\"b"} 1' in text
        assert 'edge_requests{path="C:\\\\temp"} 2' in text
        assert 'edge_requests{path="line1\\nline2"} 3' in text

    def test_escaping_keeps_one_line_per_sample(self):
        # A raw newline in a label value or help string would split its
        # line and corrupt the exposition; everything must stay escaped.
        lines = render_prometheus(build_edge_registry()).splitlines()
        assert len(lines) == 12
        for line in lines:
            assert line.startswith(("#", "edge_"))

    def test_help_escapes_backslash_and_newline_but_not_quotes(self):
        # Prometheus HELP text escapes \ and newline only; quotes pass
        # through verbatim (unlike label values).
        text = render_prometheus(build_edge_registry())
        assert (
            '# HELP edge_requests Per-path hits; values contain '
            '"quotes", \\\\ and\\nnewlines.' in text
        )

    def test_one_type_line_per_family_with_correct_kind(self):
        text = render_prometheus(build_edge_registry())
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE ")
        ]
        assert type_lines == [
            "# TYPE edge_depth gauge",
            "# TYPE edge_helpless counter",
            "# TYPE edge_idle counter",
            "# TYPE edge_requests counter",
        ]

    def test_family_without_samples_renders_metadata_only(self):
        # A labeled family with no observed children still advertises
        # its HELP/TYPE metadata but emits no sample lines.
        text = render_prometheus(build_edge_registry())
        assert "# TYPE edge_idle counter" in text
        assert "\nedge_idle" not in text.replace("# TYPE edge_idle", "")

    def test_family_without_help_omits_help_line(self):
        text = render_prometheus(build_edge_registry())
        assert "# HELP edge_helpless" not in text
        assert "# TYPE edge_helpless counter" in text


class TestJsonLines:
    def test_round_trip_preserves_snapshot(self):
        registry = build_registry()
        buffer = io.StringIO()
        lines = write_jsonl(registry, buffer, timestamp=123.0)
        assert lines == 1 + len(registry.collect())
        buffer.seek(0)
        assert read_jsonl(buffer) == registry.collect()

    def test_read_returns_last_of_appended_snapshots(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        buffer = io.StringIO()
        counter.inc()
        write_jsonl(registry, buffer)
        counter.inc()
        write_jsonl(registry, buffer)
        buffer.seek(0)
        families = read_jsonl(buffer)
        assert families[0]["samples"][0]["value"] == 2

    def test_header_carries_format_and_timestamp(self):
        buffer = io.StringIO()
        write_jsonl([], buffer, timestamp=42.0)
        header = json.loads(buffer.getvalue().splitlines()[0])
        assert header == {
            "format": "saad-telemetry/1",
            "families": 0,
            "unix_time": 42.0,
        }

    def test_path_destination_appends(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        registry = MetricsRegistry()
        registry.counter("c").inc()
        write_jsonl(registry, path)
        write_jsonl(registry, path)
        with open(path, "r", encoding="utf-8") as handle:
            assert len(handle.readlines()) == 4

    def test_unknown_format_rejected(self):
        buffer = io.StringIO('{"format": "other/9"}\n')
        with pytest.raises(ValueError):
            read_jsonl(buffer)

    def test_family_line_before_header_rejected(self):
        buffer = io.StringIO('{"name": "c"}\n')
        with pytest.raises(ValueError):
            read_jsonl(buffer)

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            read_jsonl(io.StringIO(""))

    def test_non_json_line_rejected(self):
        buffer = io.StringIO("not json\n")
        with pytest.raises(ValueError):
            read_jsonl(buffer)


class TestTable:
    def test_lists_every_series(self):
        text = render_table(build_registry())
        assert 'demo_tasks{host="alpha"}' in text
        assert "count=3 sum=5.75" in text

    def test_empty_snapshot(self):
        assert render_table([]) == "(no metrics)\n"


class TestSnapshotOf:
    def test_accepts_registry_and_plain_list(self):
        registry = build_registry()
        families = registry.collect()
        assert snapshot_of(registry) == families
        assert snapshot_of(families) == families
