"""Registry semantics and the NullRegistry (telemetry-off) contract."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    null_metric,
)

pytestmark = pytest.mark.telemetry


class TestMetricsRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("tasks", "help", labels=("host",))
        second = registry.counter("tasks", "different help", labels=("host",))
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", labels=("host",))
        with pytest.raises(ValueError):
            registry.counter("x", labels=("stage",))
        with pytest.raises(ValueError):
            registry.counter("x")

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.gauge("alpha")
        registry.histogram("mid")
        assert registry.names() == ("alpha", "mid", "zeta")

    def test_get(self):
        registry = MetricsRegistry()
        family = registry.gauge("g")
        assert registry.get("g") is family
        assert registry.get("missing") is None

    def test_collect_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(7)
        snapshot = registry.collect()
        assert [family["name"] for family in snapshot] == ["a", "b"]
        assert snapshot[0]["type"] == "gauge"
        assert snapshot[1]["samples"][0]["value"] == 2

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True


class TestNullRegistry:
    def test_singleton_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert isinstance(NULL_REGISTRY, NullRegistry)

    def test_every_registration_returns_the_shared_null_metric(self):
        registry = NullRegistry()
        assert registry.counter("c") is null_metric
        assert registry.gauge("g") is null_metric
        assert registry.histogram("h", buckets=(1.0,)) is null_metric

    def test_null_metric_absorbs_the_full_surface(self):
        metric = NULL_REGISTRY.counter("c", "help", labels=("host",))
        child = metric.labels(host="a")
        assert child is metric
        child.inc()
        child.inc(5)
        child.dec()
        child.set(9)
        child.observe(1.5)
        child.set_function(lambda: 3)
        assert child.value == 0.0
        assert child.count == 0
        assert child.sum == 0.0
        assert child.buckets() == []

    def test_introspection_is_empty(self):
        assert NULL_REGISTRY.get("anything") is None
        assert NULL_REGISTRY.names() == ()
        assert NULL_REGISTRY.collect() == []
