"""Telemetry federation: snapshot merging and the per-node store."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    NULL_REGISTRY,
    TelemetryFederation,
    label_samples,
    merge_snapshots,
    render_prometheus,
)

pytestmark = pytest.mark.telemetry


def counter_snapshot(name, value, help="", **labels):
    return [
        {
            "name": name,
            "type": "counter",
            "help": help,
            "label_names": sorted(labels),
            "samples": [{"labels": dict(labels), "value": value}],
        }
    ]


def histogram_snapshot(name, count, total, buckets, **labels):
    return [
        {
            "name": name,
            "type": "histogram",
            "help": "",
            "label_names": sorted(labels),
            "samples": [
                {
                    "labels": dict(labels),
                    "count": count,
                    "sum": total,
                    "buckets": [list(pair) for pair in buckets],
                }
            ],
        }
    ]


class TestMergeSnapshots:
    def test_same_labels_sum(self):
        merged = merge_snapshots(
            [counter_snapshot("c", 2.0, stage="1"), counter_snapshot("c", 3.0, stage="1")]
        )
        assert merged[0]["samples"] == [{"labels": {"stage": "1"}, "value": 5.0}]

    def test_disjoint_labels_union(self):
        merged = merge_snapshots(
            [counter_snapshot("c", 2.0, stage="1"), counter_snapshot("c", 3.0, stage="2")]
        )
        values = {s["labels"]["stage"]: s["value"] for s in merged[0]["samples"]}
        assert values == {"1": 2.0, "2": 3.0}

    def test_histograms_merge_per_bucket(self):
        a = histogram_snapshot("h", 3, 1.5, [[0.1, 1], [1.0, 3], ["+Inf", 3]])
        b = histogram_snapshot("h", 2, 4.0, [[0.1, 0], [1.0, 1], ["+Inf", 2]])
        merged = merge_snapshots([a, b])[0]["samples"][0]
        assert merged["count"] == 5
        assert merged["sum"] == 5.5
        assert merged["buckets"] == [[0.1, 1], [1.0, 4], ["+Inf", 5]]

    def test_label_names_union_in_first_seen_order(self):
        local = counter_snapshot("c", 1.0)
        remote = counter_snapshot("c", 1.0, node="beta")
        merged = merge_snapshots([local, remote])
        assert merged[0]["label_names"] == ["node"] or "node" in merged[0]["label_names"]

    def test_families_sorted_and_inputs_untouched(self):
        a = counter_snapshot("zz", 1.0)
        b = counter_snapshot("aa", 1.0)
        merged = merge_snapshots([a, b])
        assert [f["name"] for f in merged] == ["aa", "zz"]
        # Merging must never mutate the input snapshots.
        merge_snapshots([a, a])
        assert a[0]["samples"][0]["value"] == 1.0

    def test_merge_does_not_alias_input_buckets(self):
        a = histogram_snapshot("h", 1, 1.0, [[0.1, 1], ["+Inf", 1]])
        b = histogram_snapshot("h", 1, 1.0, [[0.1, 1], ["+Inf", 1]])
        merge_snapshots([a, b])
        assert a[0]["samples"][0]["buckets"] == [[0.1, 1], ["+Inf", 1]]


class TestLabelSamples:
    def test_stamps_every_sample(self):
        stamped = label_samples(counter_snapshot("c", 1.0, stage="2"), node="n1")
        assert stamped[0]["samples"][0]["labels"] == {"node": "n1", "stage": "2"}
        assert "node" in stamped[0]["label_names"]

    def test_existing_label_wins(self):
        stamped = label_samples(counter_snapshot("c", 1.0, node="original"), node="n1")
        assert stamped[0]["samples"][0]["labels"]["node"] == "original"


class TestTelemetryFederation:
    def test_absorb_then_collect_labels_by_node(self):
        federation = TelemetryFederation()
        federation.absorb("alpha", counter_snapshot("tracker_tasks_started", 7.0))
        families = federation.collect()
        assert families[0]["samples"][0]["labels"] == {"node": "alpha"}
        assert families[0]["samples"][0]["value"] == 7.0

    def test_last_writer_wins_per_node(self):
        federation = TelemetryFederation()
        federation.absorb("alpha", counter_snapshot("c", 1.0))
        federation.absorb("alpha", counter_snapshot("c", 9.0))
        assert federation.collect()[0]["samples"][0]["value"] == 9.0

    def test_nodes_and_forget(self):
        federation = TelemetryFederation()
        federation.absorb("b", counter_snapshot("c", 1.0))
        federation.absorb("a", counter_snapshot("c", 1.0))
        assert federation.nodes() == ("a", "b")
        assert federation.forget("a")
        assert not federation.forget("a")
        assert federation.nodes() == ("b",)

    def test_staleness_uses_injected_clock(self):
        now = [100.0]
        federation = TelemetryFederation(clock=lambda: now[0])
        federation.absorb("alpha", counter_snapshot("c", 1.0))
        now[0] = 104.5
        assert federation.staleness("alpha") == pytest.approx(4.5)
        assert federation.staleness("ghost") is None


class TestRegistryFederation:
    def test_collect_folds_federated_families_in(self):
        registry = MetricsRegistry()
        registry.counter("local_counter", "local").inc(3)
        registry.federation().absorb(
            "remote-1", counter_snapshot("client_credit_stalls", 11.0, peer="x:1")
        )
        names = {family["name"] for family in registry.collect()}
        assert "local_counter" in names
        assert "client_credit_stalls" in names
        family = next(
            f for f in registry.collect() if f["name"] == "client_credit_stalls"
        )
        assert family["samples"][0]["labels"] == {"node": "remote-1", "peer": "x:1"}

    def test_same_name_local_and_federated_families_coexist(self):
        registry = MetricsRegistry()
        registry.counter("shard_server_frames", "frames").inc(5)
        registry.federation().absorb(
            "n2", counter_snapshot("shard_server_frames", 2.0)
        )
        family = next(
            f for f in registry.collect() if f["name"] == "shard_server_frames"
        )
        by_labels = {tuple(sorted(s["labels"].items())): s["value"] for s in family["samples"]}
        assert by_labels[()] == 5.0
        assert by_labels[(("node", "n2"),)] == 2.0

    def test_federation_accounting_metrics(self):
        registry = MetricsRegistry()
        federation = registry.federation()
        federation.absorb("alpha", counter_snapshot("c", 1.0))
        assert registry.get("federation_snapshots").labels(node="alpha").value == 1
        assert registry.get("federation_nodes").value == 1

    def test_federated_flag(self):
        registry = MetricsRegistry()
        assert not registry.federated
        registry.federation()
        assert registry.federated

    def test_federation_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.federation() is registry.federation()

    def test_prometheus_renders_federated_series(self):
        registry = MetricsRegistry()
        registry.federation().absorb(
            "alpha", counter_snapshot("tracker_tasks_started", 4.0, help="tasks")
        )
        text = render_prometheus(registry)
        assert 'tracker_tasks_started{node="alpha"} 4' in text

    def test_null_registry_federation_is_inert(self):
        federation = NULL_REGISTRY.federation()
        federation.absorb("alpha", counter_snapshot("c", 1.0))
        assert federation.nodes() == ()
        assert federation.staleness("alpha") is None
        assert not federation.forget("alpha")
        assert NULL_REGISTRY.collect() == []
        assert not NULL_REGISTRY.federated
