"""docs/OPERATIONS.md catalog ↔ registry cross-check, and the stats CLI.

The operator's guide must document *every* metric the pipeline exports
and must not document metrics that no longer exist.  The demo
deployment behind ``python -m repro stats`` exercises every component
(trackers, plain + wire streams, collector, training, detection,
persistence), so its registry is the ground truth for the full catalog.
"""

import os
import re

import pytest

from repro.telemetry.cli import _demo_registry, main as stats_main

pytestmark = pytest.mark.telemetry

OPERATIONS_MD = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "docs", "OPERATIONS.md"
)

#: A catalog table row: | `metric_name` | type | ...
_CATALOG_ROW = re.compile(r"^\| `([a-z][a-z0-9_]*)` \|")


@pytest.fixture(scope="module")
def demo_registry():
    return _demo_registry()


def documented_metrics():
    with open(OPERATIONS_MD, "r", encoding="utf-8") as handle:
        text = handle.read()
    catalog = text.split("## 4. Metric catalog", 1)[1].split("## 5.", 1)[0]
    return {match.group(1) for match in map(_CATALOG_ROW.match, catalog.splitlines()) if match}


class TestCatalog:
    def test_every_exported_metric_is_documented(self, demo_registry):
        missing = set(demo_registry.names()) - documented_metrics()
        assert not missing, f"metrics missing from docs/OPERATIONS.md: {sorted(missing)}"

    def test_every_documented_metric_is_exported(self, demo_registry):
        stale = documented_metrics() - set(demo_registry.names())
        assert not stale, f"docs/OPERATIONS.md documents unknown metrics: {sorted(stale)}"

    def test_demo_exercises_all_components(self, demo_registry):
        # Sanity that the ground-truth registry is actually complete:
        # one family from each instrumented component group.
        names = demo_registry.names()
        for probe in (
            "tracker_tasks_started",
            "stream_frames",
            "codec_uid_range_errors",
            "collector_synopses",
            "train_tasks",
            "detector_windows_closed",
            "model_saves",
            "saad_nodes",
        ):
            assert probe in names

    def test_demo_detects_the_injected_anomaly(self, demo_registry):
        kind = demo_registry.get("detector_anomalies").labels(kind="flow")
        assert kind.value > 0


class TestStatsCli:
    def test_live_table(self, capsys):
        assert stats_main([]) == 0
        out = capsys.readouterr().out
        assert "detector_tasks_observed" in out
        assert "counter" in out

    def test_prometheus_output(self, capsys):
        assert stats_main(["--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE detector_anomalies counter" in out

    def test_write_then_reread_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "snap.jsonl")
        assert stats_main(["--write", path]) == 0
        live = capsys.readouterr().out.splitlines()
        assert stats_main([path]) == 0
        replayed = capsys.readouterr().out.splitlines()
        # Same table, minus the "snapshot appended" notice line.
        assert replayed == live[1:]

    def test_unreadable_snapshot_fails(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
        assert stats_main([path]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_bad_usage(self, capsys):
        assert stats_main(["--bogus"]) == 2
        assert stats_main(["a.jsonl", "b.jsonl"]) == 2
        assert stats_main(["--write"]) == 2
        capsys.readouterr()

    def test_help(self, capsys):
        assert stats_main(["--help"]) == 0
        assert "python -m repro stats" in capsys.readouterr().out
