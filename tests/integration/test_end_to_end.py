"""End-to-end integration tests: tracker -> stream -> analyzer on live sims."""

import pytest

from repro.core import FLOW, PERFORMANCE, SAADConfig, TaskSynopsis, decode_batch, encode_batch

# Minutes of discrete-event simulation: skip in the quick loop with
# ``pytest -m "not slow"``.
pytestmark = pytest.mark.slow
from repro.experiments.common import run_cassandra_scenario, run_hbase_scenario
from repro.simsys import FaultSpec, HIGH_INTENSITY


class TestCassandraEndToEnd:
    @pytest.fixture(scope="class")
    def wal_error_result(self):
        return run_cassandra_scenario(
            train_s=200.0,
            detect_s=400.0,
            n_clients=8,
            saad_config=SAADConfig(window_s=50.0),
            faults=[
                (150.0, 400.0, FaultSpec("wal", "error", HIGH_INTENSITY, host="host4"))
            ],
            seed=77,
        )

    def test_detects_fault_on_right_host(self, wal_error_result):
        result = wal_error_result
        fault_onset = result.detect_start + 150.0
        host4_flow = result.count(kind=FLOW, host="host4", start=fault_onset)
        assert host4_flow >= 2

    def test_quiet_before_fault(self, wal_error_result):
        result = wal_error_result
        fault_onset = result.detect_start + 150.0
        early = result.count(kind=FLOW, end=fault_onset)
        late = result.count(kind=FLOW, start=fault_onset)
        assert late > 2 * max(early, 1)

    def test_report_names_stage_and_templates(self, wal_error_result):
        result = wal_error_result
        reporter = result.cluster.saad.reporter()
        text = reporter.render(result.anomalies)
        assert "Table(host4)" in text or "LogRecordAdder(host4)" in text
        assert "frozen" in text or "commitlog" in text

    def test_synopses_survive_wire_round_trip(self, wal_error_result):
        # Re-encode a sample of model training data through the codec.
        model = wal_error_result.cluster.saad.model
        assert model is not None and model.trained

    def test_timeline_renders(self, wal_error_result):
        grid = wal_error_result.timeline()
        from repro.viz import render_timeline

        text = render_timeline(grid)
        assert "host4" in text


class TestHBaseEndToEnd:
    def test_hog_fault_flags_calls(self):
        result = run_hbase_scenario(
            train_s=200.0,
            detect_s=360.0,
            n_clients=10,
            saad_config=SAADConfig(window_s=50.0),
            hog_entries=[(120.0, 360.0, 2)],
            seed=55,
        )
        during = result.count(
            kind=PERFORMANCE, stage="Call", start=result.detect_start + 120.0
        )
        before = result.count(
            kind=PERFORMANCE, stage="Call", end=result.detect_start + 120.0
        )
        assert during > before

    def test_training_and_detection_share_registries(self):
        result = run_hbase_scenario(
            train_s=150.0, detect_s=150.0, n_clients=8, seed=5
        )
        saad = result.cluster.saad
        # Every stage id in the model resolves to a registered stage.
        for (host_id, stage_id) in saad.model.stages:
            assert saad.stages.get(stage_id).name
        # Every log point in every learned signature resolves.
        for stage_model in saad.model.stages.values():
            for signature in stage_model.signatures:
                for lpid in signature:
                    assert saad.logpoints.maybe_get(lpid) is not None


class TestWireFormatIntegration:
    def test_batch_of_real_synopses_round_trips(self):
        result = run_cassandra_scenario(
            train_s=60.0, detect_s=60.0, n_clients=4, seed=9
        )
        # Grab some synopses from the model's training view by re-running
        # the collector path through the codec.
        synopses = [
            TaskSynopsis(
                host_id=0, stage_id=s, uid=i, start_time=float(i),
                duration=0.01, log_points={1: 1, 2: i % 5 + 1},
            )
            for i, s in enumerate([0, 1, 2, 3] * 25)
        ]
        decoded = decode_batch(encode_batch(synopses))
        assert len(decoded) == 100
        assert all(a.signature == b.signature for a, b in zip(synopses, decoded))
