"""Smoke tests: the fast runnable examples must work end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "SAAD anomaly report" in output
        assert "Checkout" in output
        assert "never logged a single error" in output

    def test_instrumentation(self):
        output = run_example("instrumentation.py")
        assert "stage beginnings" in output
        assert "lpid=" in output
        assert "log template dictionary" in output
        assert "Receiving block blk_%s" in output
