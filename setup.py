"""Setup shim for legacy (non-PEP-517) editable installs in offline envs."""

from setuptools import setup

setup()
