"""Stage and log-point inventory for the HBase Regionserver simulation.

Stage names follow the paper's Fig. 10(a): ``Call``, ``Handler``,
``OpenRegionHandler``, ``PostOpenDeployTasksThread``, ``LogRoller``,
``SplitLogWorker``, ``CompactionChecker``, ``CompactionRequest``,
``Listener``, ``Connection`` — plus ``MemStoreFlusher`` (one of the 38
stages the paper instruments that never becomes anomalous in its runs).
The Regionserver additionally hosts the HDFS client stages
``DataStreamer``/``ResponseProcessor`` registered by ``repro.hdfs``.
"""

from __future__ import annotations

from repro.core import SAAD
from repro.loglib import DEBUG, ERROR, INFO, WARN

_SOURCE = "hbase_sim.py"


class HBaseLogPoints:
    """Registers and holds every HBase stage and log point."""

    def __init__(self, saad: SAAD):
        stages = saad.stages
        self.stage_call = stages.register("Call")
        self.stage_handler = stages.register("Handler")
        self.stage_open_region = stages.register("OpenRegionHandler")
        self.stage_post_open = stages.register(
            "PostOpenDeployTasksThread", model="dispatcher-worker"
        )
        self.stage_log_roller = stages.register("LogRoller")
        self.stage_split_worker = stages.register("SplitLogWorker")
        self.stage_compaction_checker = stages.register("CompactionChecker")
        self.stage_compaction_request = stages.register("CompactionRequest")
        self.stage_listener = stages.register("Listener")
        self.stage_connection = stages.register("Connection")
        self.stage_flusher = stages.register("MemStoreFlusher")

        def lp(template, level=DEBUG, logger="", line=0):
            return saad.logpoints.register(
                template, level, logger, source_file=_SOURCE, line=line
            )

        # Call (RPC execution)
        self.call_put = lp("Call: multi put of %d KVs for region %s", DEBUG, "Call", 10)
        self.call_get = lp("Call: get for row %s", DEBUG, "Call", 14)
        self.call_wal_wait = lp("Waiting for WAL sync", DEBUG, "Call", 18)
        self.call_memstore = lp("Applied edits to memstore", DEBUG, "Call", 22)
        self.call_storefile = lp("Reading %d storefiles for get", DEBUG, "Call", 26)
        self.call_done = lp("Call complete; queueing response", DEBUG, "Call", 30)
        self.call_nsre = lp("NotServingRegionException for region %s", WARN, "Call", 34)
        self.call_blocked = lp("Region %s blocked: too many storefiles", DEBUG, "Call", 38)

        # Handler ('log sync' group commits run here)
        self.ha_sync_start = lp("log sync: syncing %d edits", DEBUG, "Handler", 46)
        self.ha_sync_done = lp("log sync: synced to seqid %d", DEBUG, "Handler", 50)
        self.ha_sync_slow = lp("log sync took %d ms", WARN, "Handler", 54)
        self.ha_sync_error = lp("Could not sync hlog; requesting log recovery", ERROR, "Handler", 58)

        # OpenRegionHandler / PostOpenDeployTasksThread
        self.or_open = lp("Opening region %s", INFO, "OpenRegionHandler", 66)
        self.or_replay = lp("Replaying edits from split logs for %s", INFO, "OpenRegionHandler", 70)
        self.or_done = lp("Region %s opened", INFO, "OpenRegionHandler", 74)
        self.po_deploy = lp("Post open deploy tasks for region %s", INFO, "PostOpenDeployTasksThread", 82)
        self.po_done = lp("Done with post open deploy tasks", DEBUG, "PostOpenDeployTasksThread", 86)

        # LogRoller
        self.lr_check = lp("LogRoller checking hlog size", DEBUG, "LogRoller", 94)
        self.lr_roll = lp("Rolling hlog; new block blk_%s", INFO, "LogRoller", 98)
        self.lr_done = lp("hlog rolled", DEBUG, "LogRoller", 102)

        # SplitLogWorker
        self.sw_poll = lp("SplitLogWorker polling for split tasks", DEBUG, "SplitLogWorker", 110)
        self.sw_acquire = lp("Acquired split log task for %s", INFO, "SplitLogWorker", 114)
        self.sw_done = lp("Split log task for %s done", INFO, "SplitLogWorker", 118)

        # CompactionChecker / CompactionRequest
        self.cc_check = lp("CompactionChecker checking stores", DEBUG, "CompactionChecker", 126)
        self.cc_request = lp("Requesting %s compaction of region %s", INFO, "CompactionChecker", 130)
        self.cr_start = lp("Starting compaction of %d storefiles", INFO, "CompactionRequest", 138)
        self.cr_major = lp("Major compaction: rewriting all storefiles of %s", INFO, "CompactionRequest", 140)
        self.cr_done = lp("Completed compaction; new storefile size %d", INFO, "CompactionRequest", 142)
        self.cr_failed = lp("Compaction failed for region %s", ERROR, "CompactionRequest", 146)

        # Listener / Connection
        self.li_poll = lp("Listener polling selector", DEBUG, "Listener", 154)
        self.li_accept = lp("Listener accepted connection", DEBUG, "Listener", 158)
        self.cx_setup = lp("Connection from client /%s authorized", DEBUG, "Connection", 166)
        self.cx_read = lp("Connection read request header", DEBUG, "Connection", 170)

        # MemStoreFlusher
        self.fl_request = lp("Flush requested for region %s", DEBUG, "MemStoreFlusher", 178)
        self.fl_start = lp("Flushing memstore of %s (%d bytes)", INFO, "MemStoreFlusher", 182)
        self.fl_done = lp("Finished flush of %s", INFO, "MemStoreFlusher", 186)
        self.fl_failed = lp("Flush of %s failed", ERROR, "MemStoreFlusher", 190)
        # Regionserver abort (crash marker)
        self.rs_abort = lp("ABORTING region server %s: %s", ERROR, "Handler", 198)
