"""Tunables for the HBase simulation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class HBaseConfig:
    """Regionserver / cluster knobs, calibrated for laptop-scale runs."""

    n_regions: int = 16
    call_pool: int = 10
    compaction_pool: int = 1
    row_bytes: int = 1024
    memstore_flush_bytes: int = 4 * 1024 * 1024
    storefile_compact_threshold: int = 4
    read_block_bytes: int = 16 * 1024
    # WAL / log sync.
    sync_batch_limit: int = 64
    sync_timeout_s: float = 1.2
    sync_retry_limit: int = 2
    sync_retry_backoff_s: float = 2.5
    sync_slow_warn_s: float = 0.5
    call_sync_wait_s: float = 3.0
    wal_roll_bytes: int = 8 * 1024 * 1024
    wal_roll_age_s: float = 120.0
    # Recovery bug (paper Sec. 5.5).
    recovery_max_retries: int = 6
    recovery_attempt_timeout_s: float = 1.0
    # CPU service times (scaled by host cpu pressure).
    cpu_put_s: float = 0.0004
    cpu_get_s: float = 0.0015
    cpu_handler_s: float = 0.0002
    # Periodic intervals.
    compaction_check_interval_s: float = 15.0
    log_roller_interval_s: float = 30.0
    listener_interval_s: float = 10.0
    split_poll_interval_s: float = 12.0
    master_monitor_interval_s: float = 5.0
    #: Seconds between major compactions; 0 disables them (the Fig. 10
    #: experiment schedules one explicitly).
    major_compaction_interval_s: float = 0.0
    #: Sampling rate for Connection stage tasks (1 task per N calls).
    connection_sample: int = 64

    def __post_init__(self) -> None:
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if self.storefile_compact_threshold < 2:
            raise ValueError("storefile_compact_threshold must be >= 2")
