"""HBase-on-HDFS cluster assembly (the paper's Sec. 5.2 testbed).

Each of the four worker hosts runs a Data Node and a Regionserver; the
HBase Master and HDFS NameNode live on a dedicated master host.  Region
assignment is intentionally skewed (Regionservers 1 and 2 carry more
regions), matching the paper's observation that only the loaded servers
flag under the low-intensity fault.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cassandra.ring import hash_key
from repro.core import SAAD, SAADConfig
from repro.simsys import Cluster, Environment, Event, HogSchedule

from repro.hdfs import HdfsCluster

from .config import HBaseConfig
from .logpoints import HBaseLogPoints
from .master import HMaster
from .regionserver import RegionServer


class HBaseOp:
    """One HBase client operation (read / write / batched multi-put)."""

    __slots__ = ("kind", "key", "value", "value_bytes", "edits")

    def __init__(self, kind: str, key: str, value=None, value_bytes: int = 1024, edits: int = 1):
        self.kind = kind
        self.key = key
        self.value = value
        self.value_bytes = value_bytes
        self.edits = edits


class HBaseCluster:
    """Regionservers + embedded HDFS + master, with SAAD installed."""

    def __init__(
        self,
        n_servers: int = 4,
        seed: int = 42,
        config: Optional[HBaseConfig] = None,
        saad_config: Optional[SAADConfig] = None,
        region_skew: Optional[List[int]] = None,
        tracker_enabled: bool = True,
        log_level: Optional[int] = None,
    ):
        if n_servers < 1:
            raise ValueError("cluster needs at least one regionserver")
        self.env = Environment()
        self.config = config or HBaseConfig()
        worker_hosts = [f"host{i + 1}" for i in range(n_servers)]
        self.sim_cluster = Cluster(self.env, worker_hosts + ["master"], seed=seed)
        self.network = self.sim_cluster.network
        self.saad = SAAD(saad_config or SAADConfig())
        self.hdfs = HdfsCluster(
            self.env, self.sim_cluster, self.saad, worker_hosts,
            replication=min(3, n_servers),
            tracker_enabled=tracker_enabled,
            log_level=log_level,
        )
        self.lps = HBaseLogPoints(self.saad)
        self.regionservers: Dict[str, RegionServer] = {}
        self.region_owner: Dict[str, str] = {}
        for name in worker_hosts:
            runtime = self.saad.nodes[name]
            dfs = self.hdfs.client_for(
                name,
                recovery_max_retries=self.config.recovery_max_retries,
                recovery_attempt_timeout_s=self.config.recovery_attempt_timeout_s,
            )
            self.regionservers[name] = RegionServer(
                env=self.env,
                host=self.sim_cluster[name],
                runtime=runtime,
                lps=self.lps,
                dfs=dfs,
                config=self.config,
                cluster=self,
                seed=self.sim_cluster.seeds.child_seed(f"{name}/regionserver"),
            )
        self._assign_regions(region_skew)
        for rs in self.regionservers.values():
            rs.start()
        self.master = HMaster(
            self.env, self, monitor_interval_s=self.config.master_monitor_interval_s
        )

    def _assign_regions(self, region_skew: Optional[List[int]]) -> None:
        names = list(self.regionservers)
        n_regions = self.config.n_regions
        if region_skew is None:
            # Paper-like skew: the first two servers carry most regions.
            weights = [3 if i < 2 else 1 for i in range(len(names))]
        else:
            if len(region_skew) != len(names):
                raise ValueError("region_skew length must match server count")
            weights = list(region_skew)
        total_weight = sum(weights)
        assignments: List[str] = []
        for name, weight in zip(names, weights):
            count = max(1, round(n_regions * weight / total_weight))
            assignments.extend([name] * count)
        assignments = assignments[:n_regions]
        while len(assignments) < n_regions:
            assignments.append(names[-1])
        for index in range(n_regions):
            region_name = f"region-{index:02d}"
            owner = assignments[index]
            self.region_owner[region_name] = owner
            self.regionservers[owner].assign_region(region_name)

    # -- routing ------------------------------------------------------------
    def region_name_for(self, key: str) -> str:
        return f"region-{hash_key(key) % self.config.n_regions:02d}"

    def submit(self, op: HBaseOp) -> Event:
        """Route an operation to the owning Regionserver."""
        owner = self.region_owner.get(self.region_name_for(op.key))
        rs = self.regionservers.get(owner) if owner else None
        if rs is None:
            event = Event(self.env)

            def fail():
                yield self.env.timeout(0.05)
                if not event.triggered:
                    event.succeed(False)

            self.env.process(fail(), name="hbase-no-owner")
            return event
        return rs.client_call(op)

    # -- fault helpers ------------------------------------------------------
    def hog_schedule(self, entries: List[tuple]) -> HogSchedule:
        """A Table 2-style disk-hog schedule on all worker hosts."""
        hogs = [
            self.sim_cluster[name].hog
            for name in self.regionservers
        ]
        schedule = HogSchedule(self.env, hogs)
        for start_s, end_s, processes in entries:
            schedule.add(start_s, end_s, processes)
        return schedule

    def sync_cpu_pressure(self) -> None:
        self.sim_cluster.sync_network_pressure()

    def run(self, until: float) -> None:
        self.env.run(until=until)
