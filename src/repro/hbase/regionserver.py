"""A simulated HBase Regionserver (0.92 semantics where it matters).

Write path: ``Call`` tasks append to the write-ahead log (an HDFS block
pipeline driven by the embedded DFS client), wait for the group-commit
``log sync`` performed by ``Handler`` tasks, then apply to the region's
MemStore.  Flushes write HFiles through HDFS; ``CompactionChecker``
schedules ``CompactionRequest`` tasks.  A failed WAL sync triggers block
recovery through the buggy HDFS client — exhausting its retries aborts
the Regionserver (the paper's Sec. 5.5 crash).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import NodeRuntime
from repro.hdfs import DFSClient, DfsWriteStream
from repro.lsm import MemTable
from repro.simsys import (
    Environment,
    Event,
    Executor,
    Host,
    QueueClosed,
    SimQueue,
    SimulatedIOError,
    spawn_worker,
)
from repro.simsys.rng import SimRandom
from repro.simsys.threads import SimThread

from .config import HBaseConfig
from .logpoints import HBaseLogPoints


class Region:
    """One region: a MemStore plus on-disk storefiles."""

    def __init__(self, name: str, flush_bytes: int):
        self.name = name
        self.memstore = MemTable(name=f"{name}-memstore", flush_threshold_bytes=flush_bytes)
        self.storefiles: List[int] = []  # sizes in bytes
        self.flushing = False

    def reset_memstore(self, flush_bytes: int) -> MemTable:
        """Snapshot-and-swap for flushing; returns the frozen memstore."""
        frozen = self.memstore
        frozen.freeze()
        self.memstore = MemTable(
            name=f"{self.name}-memstore", flush_threshold_bytes=flush_bytes
        )
        return frozen


class RegionServer:
    """One Regionserver process (co-located with a Data Node)."""

    def __init__(
        self,
        env: Environment,
        host: Host,
        runtime: NodeRuntime,
        lps: HBaseLogPoints,
        dfs: DFSClient,
        config: HBaseConfig,
        cluster,
        seed: int = 31,
    ):
        self.env = env
        self.host = host
        self.name = host.name
        self.runtime = runtime
        self.lps = lps
        self.dfs = dfs
        self.config = config
        self.cluster = cluster
        self.rng = SimRandom(seed)
        self.alive = True
        self.abort_reason: Optional[str] = None
        self.regions: Dict[str, Region] = {}
        self.recovering = False
        self._wal_poisoned = False
        self._call_count = 0
        self._last_roll_time = 0.0

        lg = runtime.logger
        self.log_call = lg("Call")
        self.log_handler = lg("Handler")
        self.log_or = lg("OpenRegionHandler")
        self.log_po = lg("PostOpenDeployTasksThread")
        self.log_lr = lg("LogRoller")
        self.log_sw = lg("SplitLogWorker")
        self.log_cc = lg("CompactionChecker")
        self.log_cr = lg("CompactionRequest")
        self.log_li = lg("Listener")
        self.log_cx = lg("Connection")
        self.log_fl = lg("MemStoreFlusher")

        self.call_exec = Executor(
            env,
            pool_size=config.call_pool,
            name=f"{self.name}-Call",
            on_dequeue=lambda _t: runtime.set_context("Call"),
        )
        self.compaction_exec = Executor(
            env,
            pool_size=config.compaction_pool,
            name=f"{self.name}-CompactionRequest",
            on_dequeue=lambda _t: runtime.set_context("CompactionRequest"),
        )
        self.wal_stream: Optional[DfsWriteStream] = None
        self.wal_queue: SimQueue = SimQueue(env, name=f"{self.name}-wal-sync")
        self._sync_thread = SimThread(
            env, target=self._sync_loop(), name=f"{self.name}-log-sync"
        )
        self._threads: List[SimThread] = [self._sync_thread]
        self._start_periodic(
            "CompactionChecker", config.compaction_check_interval_s, self._compaction_body
        )
        self._start_periodic("LogRoller", config.log_roller_interval_s, self._roller_body)
        self._start_periodic("Listener", config.listener_interval_s, self._listener_body)
        self._start_periodic(
            "SplitLogWorker", config.split_poll_interval_s, self._split_poll_body
        )
        self._next_major = (
            env.now + config.major_compaction_interval_s
            if config.major_compaction_interval_s > 0
            else None
        )

    # ---------------------------------------------------------------- utils
    def cpu(self, seconds: float):
        return self.env.timeout(
            seconds * self.host.cpu_factor * self.rng.lognormal_by_median(1.0, 0.25)
        )

    def _wait(self, event: Event, timeout_s: float):
        if event.triggered:
            yield self.env.timeout(0)
            return True
        yield self.env.any_of([event, self.env.timeout(timeout_s)])
        return event.triggered

    def _start_periodic(self, stage: str, interval_s: float, body) -> None:
        offset = self.rng.random() * interval_s

        def loop():
            yield self.env.timeout(offset)
            while self.alive:
                self.runtime.set_context(stage)
                try:
                    yield from body()
                except SimulatedIOError:
                    pass
                yield self.env.timeout(interval_s)

        self._threads.append(
            SimThread(self.env, target=loop(), name=f"{self.name}-{stage}")
        )

    # ---------------------------------------------------------------- startup
    def start(self) -> None:
        """Open the initial WAL block pipeline."""
        self.wal_stream = self.dfs.open_stream(ack_mode="local")
        self._last_roll_time = self.env.now

    def assign_region(self, region_name: str) -> None:
        """Initial (silent) assignment at cluster build time."""
        self.regions[region_name] = Region(region_name, self.config.memstore_flush_bytes)

    # ---------------------------------------------------------------- client ops
    def client_call(self, op) -> Event:
        """Entry for client RPCs.  ``op.kind`` in {'read','write','multi'}."""
        done = Event(self.env)
        if not self.alive or not self.call_exec.try_submit(
            lambda: self._call_task(op, done)
        ):
            def refuse():
                yield self.env.timeout(0.05)
                if not done.triggered:
                    done.succeed(False)

            self.env.process(refuse(), name=f"{self.name}-refuse")
            return done
        self._call_count += 1
        if self._call_count % self.config.connection_sample == 0:
            spawn_worker(self.env, self._connection_task(), name=f"{self.name}-conn")
        return done

    def _call_task(self, op, done: Event):
        lps, config = self.lps, self.config
        region = self.regions.get(self.cluster.region_name_for(op.key))
        if region is None:
            self.log_call.warn(
                lps.call_nsre.template, op.key, lpid=lps.call_nsre.lpid
            )
            if not done.triggered:
                done.succeed(False)
            return
        if op.kind == "read":
            yield from self._get(op, region)
            if not done.triggered:
                done.succeed(True)
            return
        edits = getattr(op, "edits", 1)
        self.log_call.debug(
            lps.call_put.template, edits, region.name, lpid=lps.call_put.lpid
        )
        yield self.cpu(config.cpu_put_s * max(1, edits // 4))
        if len(region.storefiles) > 3 * config.storefile_compact_threshold:
            # Backpressure: too many storefiles blocks updates.
            self.log_call.debug(
                lps.call_blocked.template, region.name, lpid=lps.call_blocked.lpid
            )
        sync_done = Event(self.env)
        self.wal_queue.try_put((op.value_bytes * edits, sync_done))
        self.log_call.debug(lps.call_wal_wait.template, lpid=lps.call_wal_wait.lpid)
        ok = yield from self._wait(sync_done, config.call_sync_wait_s)
        if not ok or not sync_done.value:
            if not done.triggered:
                done.succeed(False)
            return
        for i in range(edits):
            region.memstore.put(
                f"{op.key}#{i}", op.value, op.value_bytes, self.env.now
            )
        self.log_call.debug(lps.call_memstore.template, lpid=lps.call_memstore.lpid)
        if region.memstore.is_full and not region.flushing:
            region.flushing = True
            spawn_worker(
                self.env, self._flush_task(region), name=f"{self.name}-flush"
            )
        self.log_call.debug(lps.call_done.template, lpid=lps.call_done.lpid)
        if not done.triggered:
            done.succeed(True)

    def _get(self, op, region: Region):
        lps, config = self.lps, self.config
        self.log_call.debug(lps.call_get.template, op.key, lpid=lps.call_get.lpid)
        yield self.cpu(config.cpu_get_s)
        if region.memstore.get(f"{op.key}#0") is None and region.storefiles:
            touched = min(len(region.storefiles), 3)
            self.log_call.debug(
                lps.call_storefile.template, touched, lpid=lps.call_storefile.lpid
            )
            for _ in range(touched):
                try:
                    yield from self.host.disk.read(config.read_block_bytes, path="data")
                except SimulatedIOError:
                    break
        self.log_call.debug(lps.call_done.template, lpid=lps.call_done.lpid)

    def _connection_task(self):
        lps = self.lps
        self.runtime.set_context("Connection")
        self.log_cx.debug(lps.cx_setup.template, "client", lpid=lps.cx_setup.lpid)
        yield self.cpu(0.0002)
        self.log_cx.debug(lps.cx_read.template, lpid=lps.cx_read.lpid)

    # ---------------------------------------------------------------- log sync
    def _sync_loop(self):
        lps, config = self.lps, self.config
        while True:
            try:
                first = yield self.wal_queue.get()
            except QueueClosed:
                return
            batch = [first]
            while len(batch) < config.sync_batch_limit:
                extra = self.wal_queue.try_get()
                if extra is None:
                    break
                batch.append(extra)
            self.runtime.set_context("Handler")
            yield self.cpu(config.cpu_handler_s)
            self.log_handler.debug(
                lps.ha_sync_start.template, len(batch), lpid=lps.ha_sync_start.lpid
            )
            total = sum(nbytes for nbytes, _ in batch)
            started = self.env.now
            ok = False
            if self._wal_poisoned:
                self._wal_poisoned = False
                ok = False
            elif self.wal_stream is not None and not self.recovering:
                # HDFS clients absorb transient hiccups; only sync
                # failures that persist across a backoff mark the WAL
                # block bad.  (Without the backoff, a single multi-second
                # disk stall spans all retries and every hiccup is fatal.)
                for attempt in range(config.sync_retry_limit):
                    ok = yield from self.wal_stream.write_sync(
                        max(total, 256), timeout_s=config.sync_timeout_s
                    )
                    if ok:
                        break
                    if attempt + 1 < config.sync_retry_limit:
                        yield self.env.timeout(config.sync_retry_backoff_s)
            elapsed = self.env.now - started
            if ok:
                self.log_handler.debug(
                    lps.ha_sync_done.template, id(batch) & 0xFFFF, lpid=lps.ha_sync_done.lpid
                )
                if elapsed > config.sync_slow_warn_s:
                    self.log_handler.warn(
                        lps.ha_sync_slow.template, int(elapsed * 1000),
                        lpid=lps.ha_sync_slow.lpid,
                    )
                for _nbytes, event in batch:
                    if not event.triggered:
                        event.succeed(True)
                continue
            # Sync failed: fail the batch and run WAL block recovery
            # through the buggy client (paper Sec. 5.5).  Writes stall
            # until recovery is confirmed — or the server aborts.
            for _nbytes, event in batch:
                if not event.triggered:
                    event.succeed(False)
            self.log_handler.error(
                lps.ha_sync_error.template, lpid=lps.ha_sync_error.lpid
            )
            self.recovering = True
            recovered = False
            if self.wal_stream is not None:
                recovered = yield from self.dfs.recover_block_with_bug(
                    self.wal_stream.block
                )
            if recovered:
                yield from self._roll_wal()
                self.recovering = False
            else:
                self.abort("premature recovery termination")
                return

    def _roll_wal(self):
        if self.wal_stream is not None:
            yield from self.wal_stream.close(timeout_s=1.0)
        self.wal_stream = self.dfs.open_stream(ack_mode="local")
        self._last_roll_time = self.env.now

    # ---------------------------------------------------------------- flush
    def _flush_task(self, region: Region):
        lps = self.lps
        self.runtime.set_context("MemStoreFlusher")
        self.log_fl.debug(lps.fl_request.template, region.name, lpid=lps.fl_request.lpid)
        frozen = region.reset_memstore(self.config.memstore_flush_bytes)
        self.log_fl.info(
            lps.fl_start.template, region.name, frozen.size_bytes, lpid=lps.fl_start.lpid
        )
        ok = yield from self.dfs.write_file(max(frozen.size_bytes, 4096))
        if ok:
            region.storefiles.append(frozen.size_bytes)
            self.log_fl.info(lps.fl_done.template, region.name, lpid=lps.fl_done.lpid)
        else:
            self.log_fl.error(lps.fl_failed.template, region.name, lpid=lps.fl_failed.lpid)
        region.flushing = False

    # ---------------------------------------------------------------- compaction
    def _compaction_body(self):
        lps, config = self.lps, self.config
        self.log_cc.debug(lps.cc_check.template, lpid=lps.cc_check.lpid)
        yield self.cpu(0.0003)
        major_due = self._next_major is not None and self.env.now >= self._next_major
        if major_due:
            self._next_major = self.env.now + config.major_compaction_interval_s
        for region in self.regions.values():
            minor_due = len(region.storefiles) >= config.storefile_compact_threshold
            if major_due and len(region.storefiles) >= 2:
                self.log_cc.info(
                    lps.cc_request.template, "major", region.name,
                    lpid=lps.cc_request.lpid,
                )
                self.compaction_exec.try_submit(
                    lambda r=region: self._compaction_task(r, major=True)
                )
            elif minor_due:
                self.log_cc.info(
                    lps.cc_request.template, "minor", region.name,
                    lpid=lps.cc_request.lpid,
                )
                self.compaction_exec.try_submit(
                    lambda r=region: self._compaction_task(r, major=False)
                )

    def request_major_compaction(self) -> None:
        """Force a major compaction on the next checker tick (Fig. 10)."""
        self._next_major = self.env.now

    def force_wal_failure(self) -> None:
        """Mark the current WAL block bad: the next log sync fails and
        block recovery starts.  Experiment harnesses use this to script
        the paper's Sec. 5.5 crash deterministically on one server; the
        same path also triggers emergently from deep disk stalls."""
        self._wal_poisoned = True

    def _compaction_task(self, region: Region, major: bool):
        lps, config = self.lps, self.config
        if major:
            victims = list(region.storefiles)
        else:
            victims = region.storefiles[: config.storefile_compact_threshold]
        if len(victims) < 2:
            yield self.env.timeout(0)
            return
        self.log_cr.info(lps.cr_start.template, len(victims), lpid=lps.cr_start.lpid)
        if major:
            self.log_cr.info(
                lps.cr_major.template, region.name, lpid=lps.cr_major.lpid
            )
        total = sum(victims)
        try:
            chunk = 256 * 1024
            for _ in range(max(1, total // chunk)):
                yield from self.host.disk.read(chunk, path="data")
        except SimulatedIOError:
            self.log_cr.error(
                lps.cr_failed.template, region.name, lpid=lps.cr_failed.lpid
            )
            return
        ok = yield from self.dfs.write_file(max(total, 4096))
        if not ok:
            self.log_cr.error(
                lps.cr_failed.template, region.name, lpid=lps.cr_failed.lpid
            )
            return
        if major:
            region.storefiles.clear()
        else:
            del region.storefiles[: len(victims)]
        region.storefiles.insert(0, total)
        self.log_cr.info(lps.cr_done.template, total, lpid=lps.cr_done.lpid)

    # ---------------------------------------------------------------- periodic
    def _roller_body(self):
        lps, config = self.lps, self.config
        self.log_lr.debug(lps.lr_check.template, lpid=lps.lr_check.lpid)
        yield self.cpu(0.0002)
        stream = self.wal_stream
        if stream is None or self.recovering:
            return
        age = self.env.now - self._last_roll_time
        if stream.bytes_written >= config.wal_roll_bytes or age >= config.wal_roll_age_s:
            self.log_lr.info(
                lps.lr_roll.template, stream.block.block_id, lpid=lps.lr_roll.lpid
            )
            yield from self._roll_wal()
            self.log_lr.debug(lps.lr_done.template, lpid=lps.lr_done.lpid)

    def _listener_body(self):
        lps = self.lps
        self.log_li.debug(lps.li_poll.template, lpid=lps.li_poll.lpid)
        yield self.cpu(0.0001)

    def _split_poll_body(self):
        lps = self.lps
        self.log_sw.debug(lps.sw_poll.template, lpid=lps.sw_poll.lpid)
        yield self.cpu(0.0001)

    # ---------------------------------------------------------------- failover
    def open_region(self, region_name: str, replay: bool = False) -> None:
        """Master-directed assignment after a failure (OpenRegionHandler)."""
        if not self.alive:
            return
        spawn_worker(
            self.env,
            self._open_region_task(region_name, replay),
            name=f"{self.name}-open-{region_name}",
        )

    def _open_region_task(self, region_name: str, replay: bool):
        lps = self.lps
        self.runtime.set_context("OpenRegionHandler")
        self.log_or.info(lps.or_open.template, region_name, lpid=lps.or_open.lpid)
        yield self.cpu(0.002)
        if replay:
            self.log_or.info(
                lps.or_replay.template, region_name, lpid=lps.or_replay.lpid
            )
            yield from self.host.disk.read(512 * 1024, path="data")
        self.regions[region_name] = Region(region_name, self.config.memstore_flush_bytes)
        self.log_or.info(lps.or_done.template, region_name, lpid=lps.or_done.lpid)
        spawn_worker(
            self.env,
            self._post_open_task(region_name),
            name=f"{self.name}-postopen-{region_name}",
        )
        # Reconnecting clients show up as a burst of Connection tasks.
        for _ in range(3):
            spawn_worker(self.env, self._connection_task(), name=f"{self.name}-conn")

    def _post_open_task(self, region_name: str):
        lps = self.lps
        self.runtime.set_context("PostOpenDeployTasksThread")
        self.log_po.info(lps.po_deploy.template, region_name, lpid=lps.po_deploy.lpid)
        yield self.cpu(0.001)
        self.log_po.debug(lps.po_done.template, lpid=lps.po_done.lpid)

    def split_log_task(self, dead_rs: str, block_id: int, nbytes: int) -> None:
        """Master-directed split-log work for a dead Regionserver's WAL."""
        if not self.alive:
            return
        spawn_worker(
            self.env,
            self._split_task(dead_rs, block_id, nbytes),
            name=f"{self.name}-split-{block_id}",
        )

    def _split_task(self, dead_rs: str, block_id: int, nbytes: int):
        lps = self.lps
        self.runtime.set_context("SplitLogWorker")
        self.log_sw.info(lps.sw_acquire.template, dead_rs, lpid=lps.sw_acquire.lpid)
        datanode = self.cluster.hdfs.datanodes.get(self.name)
        if datanode is not None:
            datanode.transfer_block(block_id, nbytes, target=None)
        try:
            yield from self.host.disk.read(max(nbytes, 4096), path="data")
        except SimulatedIOError:
            return
        ok = yield from self.dfs.write_file(max(nbytes // 2, 4096))
        if ok:
            self.log_sw.info(lps.sw_done.template, dead_rs, lpid=lps.sw_done.lpid)

    # ---------------------------------------------------------------- abort
    def abort(self, reason: str) -> None:
        if not self.alive:
            return
        self.log_handler.error(
            self.lps.rs_abort.template, self.name, reason, lpid=self.lps.rs_abort.lpid
        )
        self.alive = False
        self.abort_reason = reason
        self.call_exec.shutdown()
        self.compaction_exec.shutdown()
        self.wal_queue.close()
