"""The HBase Master: Regionserver monitoring and region reassignment.

Runs on the dedicated master host (which also hosts the HDFS NameNode
and Zookeeper in the paper's testbed, Sec. 5.2).  The master is not part
of the monitored stage set in Fig. 10, so it carries no SAAD-relevant
log points — its job here is to reproduce the *consequences* of a
Regionserver crash: split-log fan-out and region reopening on the
survivors.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.simsys import Environment
from repro.simsys.threads import SimThread


class HMaster:
    """Monitors Regionservers; reassigns regions from dead ones."""

    def __init__(self, env: Environment, cluster, monitor_interval_s: float = 5.0):
        self.env = env
        self.cluster = cluster
        self.monitor_interval_s = monitor_interval_s
        self._handled_deaths: Set[str] = set()
        self.reassignments: List[tuple] = []
        self._thread = SimThread(env, target=self._monitor_loop(), name="hmaster-monitor")

    def _monitor_loop(self):
        while True:
            yield self.env.timeout(self.monitor_interval_s)
            for rs in list(self.cluster.regionservers.values()):
                if rs.alive or rs.name in self._handled_deaths:
                    continue
                self._handled_deaths.add(rs.name)
                self._handle_death(rs)

    def _handle_death(self, dead_rs) -> None:
        survivors = [
            rs for rs in self.cluster.regionservers.values() if rs.alive
        ]
        if not survivors:
            return
        # Fan split-log work out to every survivor (SplitLogWorker tasks).
        wal_blocks = [
            b
            for b in self.cluster.hdfs.namenode.blocks.values()
            if dead_rs.name in b.pipeline
        ][-4:]
        for index, block in enumerate(wal_blocks):
            worker = survivors[index % len(survivors)]
            worker.split_log_task(dead_rs.name, block.block_id, max(block.size, 1 << 20))
        # Reassign the dead server's regions round-robin.
        for index, region_name in enumerate(sorted(dead_rs.regions)):
            target = survivors[index % len(survivors)]
            target.open_region(region_name, replay=True)
            self.cluster.region_owner[region_name] = target.name
            self.reassignments.append((region_name, dead_rs.name, target.name))
        dead_rs.regions.clear()
