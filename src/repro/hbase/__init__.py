"""Simulated HBase (columnar store on HDFS, ~0.92 semantics).

Regionservers with the paper's Fig. 10(a) stages, group-committed WAL
over HDFS block pipelines, MemStore flushes, minor/major compaction,
master-driven failover with split-log fan-out — and the WAL-recovery
crash triggered through the buggy HDFS client (Sec. 5.5).
"""

from .cluster import HBaseCluster, HBaseOp
from .config import HBaseConfig
from .logpoints import HBaseLogPoints
from .master import HMaster
from .regionserver import Region, RegionServer

__all__ = [
    "HBaseCluster",
    "HBaseConfig",
    "HBaseLogPoints",
    "HBaseOp",
    "HMaster",
    "Region",
    "RegionServer",
]
