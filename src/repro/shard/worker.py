"""The shard worker process: decode-free detection over wire frames.

Each worker owns one :class:`~repro.core.detector.AnomalyDetector` (built
through :func:`repro.shard.factory.shard_detector`), its own process-local
signature interning table, and its own telemetry registry.  The parent
coordinator ships work as length-prefixed wire frames; the worker ingests
each blob through the detector's columnar :meth:`observe_batch` path
(DESIGN §13) and ships back anomaly events, telemetry snapshots, and
busy-time accounting.

Everything here is **spawn-safe**: :func:`worker_main` is a module-level
function, its :class:`WorkerInit` argument is a plain picklable
dataclass, and the trained model travels as the persistence-format JSON
payload (:func:`repro.core.persistence.broadcast_model`), so the pool
works identically under the ``fork``, ``spawn``, and ``forkserver``
start methods.

Protocol (one duplex pipe per worker)::

    parent -> worker   ("frames", bytes)   one or more wire frames
                       ("flush",)          close open windows, snapshot
                       ("close",)          flush, report, exit
    worker -> parent   ("events", [AnomalyEvent, ...])
                       ("snapshot", shard_id, stats, registry_snapshot)
                       ("done", shard_id, stats, registry_snapshot)
                       ("error", shard_id, traceback_text)

Anomaly events cross the process boundary with their ``exemplars`` field
holding **trace keys** (the :class:`KeyPinner` stand-in), which the
coordinator resolves against the deployment's real tracer — traces are
captured node-side and never shipped to workers.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Tuple

from repro.core.persistence import receive_model
from repro.telemetry import MetricsRegistry

from .factory import shard_detector


class KeyPinner:
    """Tracer stand-in inside workers: ``pin`` echoes the trace key.

    The real trace ring lives in the coordinator's process (traces are
    captured by node-side trackers), so a worker cannot resolve a
    ``(host_id, uid)`` key to a :class:`~repro.tracing.TaskTrace`.
    Advertising ``enabled`` makes the detector track exemplar candidates
    per window; echoing the key from ``pin`` makes emitted events carry
    the keys, which the coordinator swaps for pinned traces on merge.
    """

    enabled = True

    def pin(self, key: Tuple[int, int]) -> Tuple[int, int]:
        """Echo ``key`` so it rides the event back to the coordinator."""
        return key


@dataclass
class WorkerInit:
    """Picklable start-up payload for one shard worker.

    Attributes
    ----------
    shard_id:
        This worker's index in the pool.
    model_payload:
        The trained model in persistence-format JSON
        (:func:`~repro.core.persistence.broadcast_model`).
    lateness_s:
        Event-time lateness forwarded to the detector.
    exemplars_per_window:
        Exemplar cap forwarded to the detector.
    tracing:
        When True the detector runs with a :class:`KeyPinner` so events
        carry exemplar trace keys; otherwise exemplar tracking is off.
    """

    shard_id: int
    model_payload: str
    lateness_s: float = 0.0
    exemplars_per_window: int = 3
    tracing: bool = False


def _stats(detector, busy_seconds: float) -> dict:
    """The compact per-shard accounting shipped with every snapshot."""
    return {
        "tasks": detector.tasks_seen,
        "windows_closed": detector.windows_closed,
        "anomalies": len(detector.anomalies),
        "busy_seconds": busy_seconds,
    }


def worker_main(conn, init: WorkerInit) -> None:
    """Run one shard worker until the parent sends ``("close",)``.

    ``conn`` is the worker end of a ``multiprocessing.Pipe``.  Busy time
    is accounted with ``time.process_time`` — CPU seconds actually spent
    in this process — so the pipeline-throughput model stays honest even
    when workers time-share cores.
    """
    try:
        registry = MetricsRegistry()
        detector = shard_detector(
            receive_model(init.model_payload, registry=registry),
            shard_id=init.shard_id,
            lateness_s=init.lateness_s,
            registry=registry,
            tracer=KeyPinner() if init.tracing else None,
            exemplars_per_window=init.exemplars_per_window,
        )
        base_cpu = time.process_time()
        observe_batch = detector.observe_batch
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "frames":
                # One "frames" payload is concatenated wire frames — the
                # columnar batch path ingests the whole blob in one call
                # (and degrades to the exact per-frame path itself when
                # tracing is on or numpy is missing).
                events = observe_batch(message[1])
                if events:
                    conn.send(("events", events))
            elif kind == "flush":
                events = detector.flush()
                if events:
                    conn.send(("events", events))
                busy = time.process_time() - base_cpu
                conn.send(
                    ("snapshot", init.shard_id, _stats(detector, busy), registry.collect())
                )
            elif kind == "close":
                events = detector.flush()
                if events:
                    conn.send(("events", events))
                busy = time.process_time() - base_cpu
                conn.send(
                    ("done", init.shard_id, _stats(detector, busy), registry.collect())
                )
                break
            else:
                raise ValueError(f"unknown worker message {kind!r}")
    except (EOFError, KeyboardInterrupt):
        pass
    except BaseException:
        try:
            conn.send(("error", init.shard_id, traceback.format_exc()))
        except (OSError, ValueError, BrokenPipeError):
            pass
    finally:
        conn.close()
