"""Stage-sharded parallel analyzer (scale-out of the paper's Sec. 3 design).

Every statistic the analyzer keeps is keyed by ``(host, stage)``, which
makes the detection stage embarrassingly partitionable: route each
stage's synopses to one worker and N workers reproduce a single
detector's event set exactly.  This package provides the pieces —

* :mod:`~repro.shard.partition` — the deterministic ``stage -> shard``
  mapping and the decode-free byte router,
* :mod:`~repro.shard.factory` — the sanctioned per-shard detector
  constructor (saadlint SH001),
* :mod:`~repro.shard.worker` — the spawn-safe worker process,
* :mod:`~repro.shard.coordinator` — :class:`ShardedAnalyzer`, the
  parent-side router/merger,
* :mod:`~repro.shard.server` — asyncio TCP ingest so node streams can
  ship frames over a socket, with credit-based backpressure, read
  pausing, negotiated compression, and AIMD-adaptive client batching,
* :mod:`~repro.shard.shedding` — priority-aware load shedding for the
  ingest edge (drop head-sampled frames before anomaly evidence).

See DESIGN.md §12 for the partition/merge data flow and §15 for the
ingest-edge overload design (docs/OPERATIONS.md §8 is the operator
playbook).
"""

from .coordinator import EVENT_ORDER, ShardedAnalyzer, ShardWorkerError
from .factory import shard_detector
from .partition import route_payload, shard_for, shard_table
from .server import AdaptiveFlush, FrameClient, SynopsisServer
from .shedding import (
    PRIORITY_EXEMPLAR,
    PRIORITY_NAMES,
    PRIORITY_SAMPLED,
    LoadShedder,
    SignatureNovelty,
)
from .worker import KeyPinner, WorkerInit, worker_main

__all__ = [
    "EVENT_ORDER",
    "PRIORITY_EXEMPLAR",
    "PRIORITY_NAMES",
    "PRIORITY_SAMPLED",
    "AdaptiveFlush",
    "FrameClient",
    "KeyPinner",
    "LoadShedder",
    "ShardWorkerError",
    "ShardedAnalyzer",
    "SignatureNovelty",
    "SynopsisServer",
    "WorkerInit",
    "route_payload",
    "shard_detector",
    "shard_for",
    "shard_table",
    "worker_main",
]
