"""Stage-sharded parallel analyzer (scale-out of the paper's Sec. 3 design).

Every statistic the analyzer keeps is keyed by ``(host, stage)``, which
makes the detection stage embarrassingly partitionable: route each
stage's synopses to one worker and N workers reproduce a single
detector's event set exactly.  This package provides the pieces —

* :mod:`~repro.shard.partition` — the deterministic ``stage -> shard``
  mapping and the decode-free byte router,
* :mod:`~repro.shard.factory` — the sanctioned per-shard detector
  constructor (saadlint SH001),
* :mod:`~repro.shard.worker` — the spawn-safe worker process,
* :mod:`~repro.shard.coordinator` — :class:`ShardedAnalyzer`, the
  parent-side router/merger,
* :mod:`~repro.shard.server` — asyncio TCP ingest so node streams can
  ship frames over a socket.

See DESIGN.md §12 for the partition/merge data flow.
"""

from .coordinator import EVENT_ORDER, ShardedAnalyzer, ShardWorkerError
from .factory import shard_detector
from .partition import route_payload, shard_for, shard_table
from .server import FrameClient, SynopsisServer
from .worker import KeyPinner, WorkerInit, worker_main

__all__ = [
    "EVENT_ORDER",
    "FrameClient",
    "KeyPinner",
    "ShardWorkerError",
    "ShardedAnalyzer",
    "SynopsisServer",
    "WorkerInit",
    "route_payload",
    "shard_detector",
    "shard_for",
    "shard_table",
    "worker_main",
]
