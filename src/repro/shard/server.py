"""Async TCP synopsis ingest (the paper's node -> analyzer transport).

:class:`SynopsisServer` is an asyncio TCP acceptor that reassembles the
length-prefixed wire frames produced by
:meth:`~repro.core.stream.SynopsisStream.flush_wire` and hands each
complete frame to a ``sink`` callable — typically
:meth:`SynopsisCollector.receive_frame
<repro.core.stream.SynopsisCollector.receive_frame>`,
:meth:`ShardedAnalyzer.dispatch_frame
<repro.shard.coordinator.ShardedAnalyzer.dispatch_frame>`, or the
columnar :meth:`AnomalyDetector.observe_batch
<repro.core.detector.AnomalyDetector.observe_batch>` for decode-free
single-process detection straight off the socket.  The event
loop runs in a daemon thread, so the server drops into synchronous
deployments (the ``SAAD`` facade, tests) without an async caller.

Framing is ``readexactly``-driven: 6 header bytes, then exactly the
advertised payload — a frame split across any number of TCP segments
reassembles correctly, and a peer that dies mid-frame is detected (the
partial tail is counted, never silently ingested).

Every connection's frames are delivered from the single event-loop
thread, so a sink shared by many nodes sees frames strictly
sequentially; coordinate externally before feeding the same sink from
other threads as well.

:class:`FrameClient` is the node-side counterpart: a small blocking TCP
sender whose instances are valid ``frame_sink`` callables for
:class:`~repro.core.stream.SynopsisStream`.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Callable, Optional, Tuple

from repro.core.synopsis import FRAME_HEADER
from repro.telemetry import NULL_REGISTRY

__all__ = ["SynopsisServer", "FrameClient"]

_MAX_FRAME_PAYLOAD = 1 << 26  # 64 MiB: reject absurd length prefixes early


class SynopsisServer:
    """Asyncio TCP collector for wire frames.

    Parameters
    ----------
    sink:
        Callable receiving each complete frame's bytes (header
        included) — the same contract as a stream's ``frame_sink``.
    host, port:
        Bind address; port 0 picks a free port (see :attr:`address`
        after :meth:`start`).
    registry:
        Telemetry registry for the ``shard_server_*`` metrics; defaults
        to :data:`~repro.telemetry.NULL_REGISTRY`.
    """

    def __init__(
        self,
        sink: Callable[[bytes], None],
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
    ):
        self.sink = sink
        self.host = host
        self.port = port
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_connections = registry.counter(
            "shard_server_connections", "TCP synopsis connections accepted"
        )
        self._m_frames = registry.counter(
            "shard_server_frames", "wire frames ingested over TCP"
        )
        self._m_bytes = registry.counter(
            "shard_server_bytes", "wire bytes ingested over TCP (headers included)"
        )
        self._m_truncated = registry.counter(
            "shard_server_truncated",
            "connections that died mid-frame (partial tail discarded)",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._address: Optional[Tuple[str, int]] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    async def _handle(self, reader, writer) -> None:
        self._m_connections.inc()
        header_size = FRAME_HEADER.size
        try:
            while True:
                try:
                    header = await reader.readexactly(header_size)
                except asyncio.IncompleteReadError as partial:
                    if partial.partial:
                        self._m_truncated.inc()
                    break
                length, _ = FRAME_HEADER.unpack(header)
                if length > _MAX_FRAME_PAYLOAD:
                    self._m_truncated.inc()
                    break
                try:
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    self._m_truncated.inc()
                    break
                self._m_frames.inc()
                self._m_bytes.inc(header_size + length)
                self.sink(header + payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot():
            return await asyncio.start_server(self._handle, self.host, self.port)

        try:
            self._server = loop.run_until_complete(boot())
            sockname = self._server.sockets[0].getsockname()
            self._address = (sockname[0], sockname[1])
        except BaseException as exc:  # bind failure -> surface in start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; the bound ``(host, port)``."""
        if self._thread is not None:
            return self.address
        self._thread = threading.Thread(
            target=self._run, name="saad-synopsis-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread = None
            raise error
        return self.address

    def close(self) -> None:
        """Stop accepting, close the loop, join the thread.  Idempotent."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    def __enter__(self) -> "SynopsisServer":
        """Context-manager entry: start and return the server."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the server."""
        self.close()


class FrameClient:
    """Blocking TCP sender for wire frames (node side).

    An instance is a valid ``frame_sink``: construct with the server's
    address and hand it to :class:`~repro.core.stream.SynopsisStream`
    — every flushed frame is written to the socket verbatim.  TCP
    preserves the byte stream, so the server's ``readexactly`` framing
    needs no extra envelope.
    """

    def __init__(self, address: Tuple[str, int], timeout: float = 10.0):
        self._sock = socket.create_connection(address, timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.bytes_sent = 0
        self.frames_sent = 0

    def __call__(self, frame: bytes) -> None:
        """The ``frame_sink`` protocol: :meth:`send`."""
        self.send(frame)

    def send(self, frame: bytes) -> None:
        """Write one frame to the socket (blocking, whole frame)."""
        self._sock.sendall(frame)
        self.bytes_sent += len(frame)
        self.frames_sent += 1

    def close(self) -> None:
        """Shut the connection down cleanly.  Idempotent."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "FrameClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the connection."""
        self.close()
