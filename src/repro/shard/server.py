"""Async TCP synopsis ingest (the paper's node -> analyzer transport).

:class:`SynopsisServer` is an asyncio TCP acceptor that reassembles the
length-prefixed wire frames produced by
:meth:`~repro.core.stream.SynopsisStream.flush_wire` and hands each
complete frame to a ``sink`` callable — typically
:meth:`SynopsisCollector.receive_frame
<repro.core.stream.SynopsisCollector.receive_frame>`,
:meth:`ShardedAnalyzer.dispatch_frame
<repro.shard.coordinator.ShardedAnalyzer.dispatch_frame>`, or the
columnar :meth:`AnomalyDetector.observe_batch
<repro.core.detector.AnomalyDetector.observe_batch>` for decode-free
single-process detection straight off the socket.  The event
loop runs in a daemon thread, so the server drops into synchronous
deployments (the ``SAAD`` facade, tests) without an async caller.

Overload behavior (DESIGN.md §15, docs/OPERATIONS.md §8): received
frames pass through admission control into one bounded delivery queue
drained by a pump task, so the ingest edge degrades gracefully instead
of buffering without bound —

* **Credit-based backpressure.**  A negotiated connection is granted a
  byte *credit window* at connect; every data envelope consumes credit
  and the server re-grants it (piggybacked on the per-frame ack) only
  when the frame has left the queue.  A stalled analyzer therefore
  stops the clients, not the other way around.
* **Read pausing.**  When the queue backlog crosses the high watermark
  every connection's read loop parks on a resume event
  (``transport.pause_reading``-style — the server simply stops calling
  ``readexactly``, letting TCP flow control push back), and resumes
  once the pump drains below the low watermark.
* **Load shedding.**  With a :class:`~repro.shard.shedding.LoadShedder`
  attached, admission drops head-sampled frames past the shed
  watermark (exemplar-bearing ones only past the hard watermark);
  dropped frames are acked immediately so clients keep their credit.

Protocol: a legacy connection just writes raw wire frames, exactly as
before — the server detects this from the first 6 bytes and serves it
with TCP-level backpressure only.  A negotiated connection opens with
the magic hello ``b"SAAD" + version + flags`` (the 4-byte magic decodes
as a ~1.1 GiB length prefix, far past the 64 MiB frame cap, so it can
never be confused with a legacy frame header), receives a hello-ack
carrying the accepted flags and the initial credit, and then sends each
frame in a typed envelope ``(type, priority, length)`` — optionally
zlib-compressed when both sides agreed at connect.  The server answers
each data envelope with a 9-byte ack ``(seq, credit-grant)`` that both
replenishes credit and gives the client its round-trip time signal.

Fleet observability rides the same socket (protocol version 2,
docs/OPERATIONS.md §9):

* **TELEMETRY envelopes** — a client periodically piggybacks a compact
  JSON snapshot of its local
  :class:`~repro.telemetry.MetricsRegistry`; the server files it with
  its :class:`~repro.telemetry.TelemetryFederation` under
  ``node=<id>`` labels, so one analyzer-side registry sees the whole
  fleet.  Telemetry is *control* traffic: handled inline on the loop
  (never queued, never shed) and exempt from the credit window.
* **HEALTH envelopes** — a zero-length probe any node can send; the
  server answers on the ack stream with a JSON health report from the
  attached engine (:mod:`repro.health`), so
  :meth:`FrameClient.health` gives every node a machine-readable
  ``ok``/``warn``/``critical`` verdict about its analyzer.

Framing is ``readexactly``-driven: a frame split across any number of
TCP segments reassembles correctly, and a peer that dies mid-frame is
detected (the partial tail is counted, never silently ingested).
Frames from all connections are delivered by the single pump task on
the event-loop thread, so a sink shared by many nodes sees frames
strictly sequentially; coordinate externally before feeding the same
sink from other threads as well.

:class:`FrameClient` is the node-side counterpart: a credit-respecting
blocking TCP sender whose instances are valid ``frame_sink`` callables
for :class:`~repro.core.stream.SynopsisStream`, with an
:class:`AdaptiveFlush` controller tuning the recommended frame batch
size from observed ack latency.
"""

from __future__ import annotations

import asyncio
import json
import select
import socket
import struct
import threading
import time
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.synopsis import FRAME_HEADER, MAX_FRAME_SYNOPSES
from repro.telemetry import NULL_REGISTRY

from .shedding import PRIORITY_SAMPLED, LoadShedder

__all__ = ["SynopsisServer", "FrameClient", "AdaptiveFlush"]

_MAX_FRAME_PAYLOAD = 1 << 26  # 64 MiB: reject absurd length prefixes early

# -- ingest protocol ----------------------------------------------------------
#: Negotiated-connection magic: as a little-endian length prefix this
#: reads as ~1.14 GiB, far past ``_MAX_FRAME_PAYLOAD``, so no legal
#: legacy frame can start with it.
_MAGIC = b"SAAD"
#: Version 2 added the TELEMETRY / HEALTH control envelopes; the data
#: path is unchanged, and a v2 client only sends control envelopes to a
#: server that answered the hello with version >= 2.  Version 3 added
#: the fleet reroute envelopes (REPLAY / DISOWN) and the watermark ack
#: record; a v3 client only sends reroute envelopes to a server that
#: answered with version >= 3.
_PROTOCOL_VERSION = 3

#: Hello flag bit: the client asks for (and the server accepts) zlib
#: frame compression.
_FLAG_COMPRESS = 0x01

#: Client hello: magic, version, requested flags.  Deliberately the
#: same size as ``FRAME_HEADER`` so the server's first read decides
#: legacy vs negotiated without over-reading.
_HELLO = struct.Struct("<4sBB")
assert _HELLO.size == FRAME_HEADER.size

#: Server hello-ack: magic, version, accepted flags, credit window.
_HELLO_ACK = struct.Struct("<4sBBI")

#: Data envelope header (client -> server): type, priority, length.
_ENVELOPE = struct.Struct("<BBI")
_ENV_DATA = 0  # payload is one wire frame, verbatim
_ENV_DATA_Z = 1  # payload is one zlib-compressed wire frame
_ENV_BYE = 2  # clean shutdown marker, length 0
_ENV_TELEMETRY = 3  # payload is a JSON registry snapshot (federation)
_ENV_TELEMETRY_Z = 4  # ... zlib-compressed
_ENV_HEALTH = 5  # health probe, length 0; answered on the ack stream
#: Fleet reroute envelopes (protocol v3, DESIGN.md §16).  Both ride the
#: delivery queue like data — a reroute instruction handled inline
#: would overtake data frames already queued ahead of it — but neither
#: may ever be shed: they carry correctness, not load.
_ENV_REPLAY = 6  # payload is one wire frame replayed after a ring change
_ENV_DISOWN = 7  # payload is raw stage-id bytes the analyzer must drop

#: Control envelopes are exempt from the credit window: they are small,
#: rare, handled inline on the loop (never queued), and must keep
#: flowing precisely when the data path is saturated.
_CONTROL_ENVELOPES = frozenset({_ENV_TELEMETRY, _ENV_TELEMETRY_Z, _ENV_HEALTH})

#: Ack (server -> client): type, cumulative data-envelope seq, grant.
_ACK = struct.Struct("<BII")
_ACK_GRANT = 0
#: Health report record on the ack stream: ``(type, 0, length)``
#: followed by ``length`` bytes of JSON report.
_ACK_HEALTH = 1
#: Watermark record on the ack stream: ``(type, 0, 8)`` followed by an
#: 8-byte little-endian double — the analyzer's event-time watermark.
#: Piggybacked on every data-frame grant when the server has a
#: ``watermark`` source, so senders learn which of their retained
#: windows the analyzer has already finalized (replay pruning).
_ACK_WATERMARK = 2
_WATERMARK = struct.Struct("<d")

#: zlib level for frame compression: speed over ratio — the wire frames
#: are short-range-redundant struct arrays, which level 1 already folds.
_COMPRESS_LEVEL = 1

#: Default per-connection credit window (bytes in flight).
DEFAULT_CREDIT_WINDOW = 1 << 18

#: Default delivery-queue watermarks (bytes): reads pause above high,
#: resume below low.
DEFAULT_HIGH_WATERMARK = 1 << 22


class SynopsisServer:
    """Asyncio TCP collector for wire frames, with overload control.

    Parameters
    ----------
    sink:
        Callable receiving each complete frame's bytes (header
        included) — the same contract as a stream's ``frame_sink``.
        May be a coroutine function; it is awaited by the pump, letting
        slow analyzers exert backpressure without blocking the loop.
    host, port:
        Bind address; port 0 picks a free port (see :attr:`address`
        after :meth:`start`).
    registry:
        Telemetry registry for the ``shard_server_*`` / ``server_*``
        metrics; defaults to :data:`~repro.telemetry.NULL_REGISTRY`.
    credit_window:
        Byte credit granted to each negotiated connection at connect —
        its maximum in-flight wire bytes.  Must comfortably exceed the
        largest frame a node flushes or senders serialize on the ack
        round-trip.
    high_watermark, low_watermark:
        Delivery-queue backlog (bytes) at which connection reads pause
        / resume.  ``low_watermark`` defaults to half the high one.
    shedder:
        Optional :class:`~repro.shard.shedding.LoadShedder` consulted
        at admission; dropped frames never occupy queue memory and are
        acked immediately so the sender's credit survives.
    classify:
        Optional ``frame -> priority`` callable used for connections
        that do not declare priorities (legacy peers) — e.g.
        :meth:`~repro.shard.shedding.SignatureNovelty.frame_priority`.
    compression:
        Whether to accept a client's request for zlib frame
        compression; False forces every negotiated peer to fall back to
        uncompressed envelopes.
    federation:
        Destination for TELEMETRY envelopes — anything with an
        ``absorb(node, families)`` method, typically
        ``registry.federation()`` (see
        :class:`~repro.telemetry.TelemetryFederation`).  None discards
        remote snapshots (still counted in
        ``server_telemetry_snapshots``).
    health:
        Zero-argument callable returning a JSON-able health report dict
        (e.g. a bound :meth:`repro.health.HealthEngine.report_dict`),
        answered to HEALTH probes.  None answers with an ``unknown``
        verdict so probing a bare collector still round-trips.
    replay_sink:
        Callable receiving REPLAY frames (fleet reroute, DESIGN.md
        §16) — typically :meth:`AnomalyDetector.absorb_frame
        <repro.core.detector.AnomalyDetector.absorb_frame>`, which
        defers window closes until the whole replayed frame is
        applied.  None falls back to ``sink`` (a plain collector
        treats replayed data as data).
    disown:
        Callable receiving a list of stage ids this analyzer must stop
        owning — typically :meth:`AnomalyDetector.disown
        <repro.core.detector.AnomalyDetector.disown>`.  None ignores
        DISOWN envelopes (counted, dropped).
    watermark:
        Zero-argument callable returning the analyzer's event-time
        watermark (:attr:`AnomalyDetector.watermark
        <repro.core.detector.AnomalyDetector.watermark>`); when set,
        every data-frame grant piggybacks the current value on the ack
        stream so senders can prune their replay-retention buffers.
    """

    def __init__(
        self,
        sink: Callable[[bytes], None],
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        *,
        credit_window: Optional[int] = None,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        shedder: Optional[LoadShedder] = None,
        classify: Optional[Callable[[bytes], int]] = None,
        compression: bool = True,
        federation=None,
        health: Optional[Callable[[], dict]] = None,
        replay_sink: Optional[Callable[[bytes], None]] = None,
        disown: Optional[Callable[[List[int]], None]] = None,
        watermark: Optional[Callable[[], float]] = None,
    ):
        self.sink = sink
        self.replay_sink = replay_sink
        self.disown = disown
        self.watermark = watermark
        self.host = host
        self.port = port
        self.credit_window = (
            credit_window if credit_window is not None else DEFAULT_CREDIT_WINDOW
        )
        self.high_watermark = (
            high_watermark if high_watermark is not None else DEFAULT_HIGH_WATERMARK
        )
        self.low_watermark = (
            low_watermark if low_watermark is not None else self.high_watermark // 2
        )
        if self.credit_window < 1:
            raise ValueError(f"credit_window must be >= 1: {self.credit_window}")
        if not 0 <= self.low_watermark <= self.high_watermark:
            raise ValueError(
                f"need 0 <= low_watermark <= high_watermark, got "
                f"{self.low_watermark} / {self.high_watermark}"
            )
        self.shedder = shedder
        self.classify = classify
        self.compression = compression
        self.federation = federation
        self.health = health
        self._sink_is_async = asyncio.iscoroutinefunction(sink)
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_connections = registry.counter(
            "shard_server_connections", "TCP synopsis connections accepted"
        )
        self._m_frames = registry.counter(
            "shard_server_frames", "wire frames ingested over TCP"
        )
        self._m_bytes = registry.counter(
            "shard_server_bytes", "wire bytes ingested over TCP (headers included)"
        )
        self._m_truncated = registry.counter(
            "shard_server_truncated",
            "connections that died mid-frame (partial tail discarded)",
        )
        self._m_delivered = registry.counter(
            "server_frames_delivered",
            "ingested frames handed to the sink (received minus shed)",
        )
        self._m_credits = registry.counter(
            "server_credits_granted",
            "credit bytes granted to negotiated connections (window + acks)",
        )
        self._m_paused = registry.counter(
            "server_reads_paused",
            "times a connection's reads were paused at the high watermark",
        )
        self._m_paused_now = registry.gauge(
            "server_paused_connections",
            "connections currently parked at the high watermark "
            "(cleared on resume or connection teardown)",
        )
        self._m_telemetry = registry.counter(
            "server_telemetry_snapshots",
            "TELEMETRY envelopes received (federated registry snapshots)",
        )
        self._m_telemetry_rejected = registry.counter(
            "server_telemetry_rejected",
            "TELEMETRY envelopes dropped (undecodable payload)",
        )
        self._m_health_probes = registry.counter(
            "server_health_probes", "HEALTH probes answered on the ack stream"
        )
        self._m_replayed = registry.counter(
            "server_replay_frames",
            "REPLAY frames absorbed after a fleet reroute",
        )
        self._m_disowns = registry.counter(
            "server_disowns", "DISOWN envelopes applied (stages dropped)"
        )
        self._m_sink_errors = registry.counter(
            "server_sink_errors", "frames the sink raised on (dropped, counted)"
        )
        self._m_decompressed = registry.counter(
            "server_frames_decompressed",
            "compressed data envelopes inflated at ingest",
        )
        self._m_compressed_bytes = registry.counter(
            "server_compressed_bytes",
            "wire bytes of compressed envelope payloads received",
        )
        registry.gauge(
            "server_pending_bytes",
            "frame bytes admitted but not yet handed to the sink",
        ).set_function(lambda: self._pending_bytes)
        watermarks = registry.gauge(
            "ingest_watermark_bytes",
            "configured ingest backlog watermarks (bytes)",
            labels=("kind",),
        )
        watermarks.labels(kind="high").set_function(lambda: self.high_watermark)
        watermarks.labels(kind="low").set_function(lambda: self.low_watermark)
        self._pending_bytes = 0
        self._queue: Optional[asyncio.Queue] = None
        self._resume: Optional[asyncio.Event] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._address: Optional[Tuple[str, int]] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def pending_bytes(self) -> int:
        """Frame bytes admitted but not yet handed to the sink."""
        return self._pending_bytes

    # -- admission + delivery (event-loop side) ------------------------------
    async def _admit(
        self,
        frame: bytes,
        priority: int,
        writer,
        seq: int,
        wire: int,
        grant: bool,
        closed: "asyncio.Task",
        deliver: Optional[Callable[[bytes], None]] = None,
        sheddable: bool = True,
    ):
        """Admission control for one received frame.

        Sheds against the current backlog (acking immediately so the
        sender keeps its credit, when ``grant``), else queues for the
        pump, then pauses this connection's reads while the backlog
        sits above the high watermark.  The pause is connection-aware:
        it also ends when this connection's transport dies, so an
        abruptly disconnected peer never leaves its handler — or the
        ``server_paused_connections`` gauge — wedged behind a stalled
        sink.

        ``deliver`` overrides the pump's sink for this frame (the
        reroute envelopes route to the replay/disown handlers but must
        stay *ordered* with queued data, so they ride the same queue);
        ``sheddable=False`` exempts it from the shedder — reroute
        envelopes carry correctness, not load.
        """
        if (
            sheddable
            and self.shedder is not None
            and not self.shedder.admit(priority, len(frame), self._pending_bytes)
        ):
            if grant:
                self._grant(writer, seq, wire)
            return
        self._pending_bytes += len(frame)
        self._queue.put_nowait((frame, writer if grant else None, seq, wire, deliver))
        if self._pending_bytes > self.high_watermark and self._resume.is_set():
            self._resume.clear()
        if not self._resume.is_set():
            self._m_paused.inc()
            self._m_paused_now.inc()
            try:
                await self._pause(closed)
            finally:
                self._m_paused_now.dec()

    async def _pause(self, closed: "asyncio.Task") -> None:
        """Park until the pump drains below the low watermark — or until
        this connection's transport closes, whichever comes first.

        ``closed`` is the connection's long-lived close watcher (made
        once in :meth:`_handle`; cancelling a fresh ``wait_closed``
        task here would poison the protocol's shared close waiter).
        Raises ``ConnectionResetError`` when the peer died first, so
        the read loop tears the connection down instead of staying
        parked behind a sink that may never drain (the per-connection
        gauge-leak regression, tests/shard/test_federation.py).
        """
        resume = asyncio.ensure_future(self._resume.wait())
        done, _pending = await asyncio.wait(
            {resume, closed}, return_when=asyncio.FIRST_COMPLETED
        )
        if resume in done:
            return
        resume.cancel()
        await asyncio.gather(resume, return_exceptions=True)
        raise ConnectionResetError("peer disconnected while paused")

    def _grant(self, writer, seq: int, grant: int) -> None:
        """Ack one data envelope, re-granting its wire bytes as credit.

        With a ``watermark`` source attached the grant carries a
        watermark record right behind it — one extra 17-byte write per
        ack keeps every sender's replay-retention horizon current
        without a separate control channel.
        """
        record = _ACK.pack(_ACK_GRANT, seq, grant)
        if self.watermark is not None:
            try:
                mark = float(self.watermark())
            except Exception:
                mark = None
            if mark is not None:
                record += _ACK.pack(
                    _ACK_WATERMARK, 0, _WATERMARK.size
                ) + _WATERMARK.pack(mark)
        try:
            writer.write(record)
        except (ConnectionError, OSError, RuntimeError):
            pass  # peer already gone; its credit no longer matters
        self._m_credits.inc(grant)

    async def _pump(self) -> None:
        """Single consumer draining the delivery queue into the sink.

        Credit is re-granted only here (or at shed time), after the
        frame has left the queue — that is what makes the client-side
        credit window a bound on server-side ingest memory.
        """
        queue = self._queue
        while True:
            frame, writer, seq, wire, deliver = await queue.get()
            try:
                if deliver is not None:
                    deliver(frame)
                elif self._sink_is_async:
                    await self.sink(frame)
                else:
                    self.sink(frame)
                self._m_delivered.inc()
            except asyncio.CancelledError:
                raise
            except Exception:
                self._m_sink_errors.inc()
            finally:
                self._pending_bytes -= len(frame)
                if writer is not None:
                    self._grant(writer, seq, wire)
                if (
                    self._pending_bytes <= self.low_watermark
                    and not self._resume.is_set()
                ):
                    self._resume.set()
                queue.task_done()

    async def _handle(self, reader, writer) -> None:
        self._m_connections.inc()
        # One close watcher for the connection's whole life: _pause
        # selects on it, and it is never cancelled (cancelling a task
        # awaiting wait_closed poisons the protocol's close waiter).
        closed = asyncio.ensure_future(writer.wait_closed())
        try:
            try:
                first = await reader.readexactly(_HELLO.size)
            except asyncio.IncompleteReadError as partial:
                if partial.partial:
                    self._m_truncated.inc()
                return
            try:
                if first[:4] == _MAGIC:
                    await self._serve_negotiated(reader, writer, first, closed)
                else:
                    await self._serve_legacy(reader, writer, first, closed)
            except (ConnectionError, OSError):
                pass  # peer died mid-conversation; teardown below
        except asyncio.CancelledError:
            # Abrupt server close with this connection mid-read (fleet
            # kill drill): end quietly.  asyncio.streams' accept
            # callback calls task.exception(); a cancelled verdict
            # there is logged as "Exception in callback" noise.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            await asyncio.gather(closed, return_exceptions=True)

    async def _serve_legacy(self, reader, writer, first: bytes, closed) -> None:
        """Raw length-prefixed frames, no credit or acks (pre-overload
        peers).  Backpressure still applies: reads pause at the high
        watermark, so TCP flow control reaches the sender."""
        header_size = FRAME_HEADER.size
        header = first
        while True:
            length, _ = FRAME_HEADER.unpack(header)
            if length > _MAX_FRAME_PAYLOAD:
                self._m_truncated.inc()
                return
            try:
                payload = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                self._m_truncated.inc()
                return
            frame = header + payload
            self._m_frames.inc()
            self._m_bytes.inc(len(frame))
            # Per-frame (not per-synopsis) classification at the edge.
            priority = (
                self.classify(frame)  # saadlint: disable=CP001
                if self.classify
                else PRIORITY_SAMPLED
            )
            await self._admit(frame, priority, writer, 0, len(frame), False, closed)
            try:
                header = await reader.readexactly(header_size)
            except asyncio.IncompleteReadError as partial:
                if partial.partial:
                    self._m_truncated.inc()
                return

    async def _serve_negotiated(self, reader, writer, hello: bytes, closed) -> None:
        """The credit/ack envelope protocol behind the magic hello."""
        _magic, _version, flags = _HELLO.unpack(hello)
        accepted = flags & _FLAG_COMPRESS if self.compression else 0
        writer.write(
            _HELLO_ACK.pack(_MAGIC, _PROTOCOL_VERSION, accepted, self.credit_window)
        )
        self._m_credits.inc(self.credit_window)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            return
        seq = 0
        while True:
            try:
                head = await reader.readexactly(_ENVELOPE.size)
            except asyncio.IncompleteReadError as partial:
                if partial.partial:
                    self._m_truncated.inc()
                return
            etype, priority, length = _ENVELOPE.unpack(head)
            if etype == _ENV_BYE:
                return
            known = (
                etype in (_ENV_DATA, _ENV_DATA_Z, _ENV_REPLAY, _ENV_DISOWN)
                or etype in _CONTROL_ENVELOPES
            )
            if not known or length > _MAX_FRAME_PAYLOAD:
                self._m_truncated.inc()
                return
            try:
                payload = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                self._m_truncated.inc()
                return
            if etype == _ENV_HEALTH:
                self._answer_health(writer)
                continue
            if etype in (_ENV_TELEMETRY, _ENV_TELEMETRY_Z):
                self._absorb_telemetry(payload, etype == _ENV_TELEMETRY_Z)
                continue
            wire = _ENVELOPE.size + length
            if etype in (_ENV_REPLAY, _ENV_DISOWN):
                # Reroute traffic: queued (ordering with data frames is
                # the point), credit-accounted, never shed.
                seq += 1
                self._m_frames.inc()
                self._m_bytes.inc(wire)
                deliver = (
                    self._deliver_replay
                    if etype == _ENV_REPLAY
                    else self._deliver_disown
                )
                await self._admit(
                    payload, priority, writer, seq, wire, True, closed,
                    deliver=deliver, sheddable=False,
                )
                continue
            if etype == _ENV_DATA_Z:
                try:
                    frame = zlib.decompress(payload)
                except zlib.error:
                    self._m_truncated.inc()
                    return
                self._m_decompressed.inc()
                self._m_compressed_bytes.inc(length)
            else:
                frame = payload
            seq += 1
            self._m_frames.inc()
            self._m_bytes.inc(wire)
            await self._admit(frame, priority, writer, seq, wire, True, closed)

    # -- fleet reroute (queued control, DESIGN.md §16) -------------------------
    def _deliver_replay(self, frame: bytes) -> None:
        """Pump-side delivery of one REPLAY frame."""
        self._m_replayed.inc()
        sink = self.replay_sink if self.replay_sink is not None else self.sink
        sink(frame)

    def _deliver_disown(self, payload: bytes) -> None:
        """Pump-side delivery of one DISOWN envelope (stage-id bytes)."""
        self._m_disowns.inc()
        if self.disown is not None:
            self.disown(list(payload))

    # -- fleet observability (control envelopes) ------------------------------
    def _absorb_telemetry(self, payload: bytes, compressed: bool) -> None:
        """File one TELEMETRY envelope with the federation.

        The payload is JSON ``{"node": <id>, "families": [...]}`` in the
        registry snapshot wire form; anything undecodable is counted and
        dropped — a misbehaving node must not take the ingest edge down.
        """
        if compressed:
            try:
                payload = zlib.decompress(payload)
            except zlib.error:
                self._m_telemetry_rejected.inc()
                return
        try:
            record = json.loads(payload.decode("utf-8"))
            node = str(record["node"])
            families = record["families"]
        except (ValueError, KeyError, TypeError):
            self._m_telemetry_rejected.inc()
            return
        self._m_telemetry.inc()
        if self.federation is None:
            return
        try:
            self.federation.absorb(node, families)
        except (ValueError, KeyError, TypeError, AttributeError):
            self._m_telemetry_rejected.inc()

    def _answer_health(self, writer) -> None:
        """Answer one HEALTH probe on the ack stream."""
        report: Optional[dict] = None
        if self.health is not None:
            try:
                report = self.health()
            except Exception:
                report = {"state": "unknown", "error": "health engine raised"}
        if report is None:
            report = {"state": "unknown", "error": "no health engine attached"}
        body = json.dumps(report, sort_keys=True).encode("utf-8")
        try:
            writer.write(_ACK.pack(_ACK_HEALTH, 0, len(body)) + body)
        except (ConnectionError, OSError, RuntimeError):
            pass  # prober already gone
        self._m_health_probes.inc()

    # -- lifecycle (caller side) ---------------------------------------------
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot():
            self._queue = asyncio.Queue()
            self._resume = asyncio.Event()
            self._resume.set()
            self._pump_task = loop.create_task(self._pump())
            return await asyncio.start_server(self._handle, self.host, self.port)

        try:
            self._server = loop.run_until_complete(boot())
            sockname = self._server.sockets[0].getsockname()
            self._address = (sockname[0], sockname[1])
        except BaseException as exc:  # bind failure -> surface in start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            # Cancel everything still pending — the pump plus any
            # connection handlers mid-read (an abrupt close with live
            # peers, e.g. a fleet kill drill, must not leak "task was
            # destroyed but it is pending" warnings at loop teardown).
            pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
            for task in pending:
                task.cancel()
            loop.run_until_complete(
                asyncio.gather(
                    *pending, self._server.wait_closed(), return_exceptions=True
                )
            )
            loop.close()

    async def _drain_for_close(self) -> None:
        """Stop accepting, then give admitted frames a bounded window to
        reach the sink — a clean close should not lose the tail."""
        self._server.close()
        await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._queue.join(), timeout=5.0)
        except asyncio.TimeoutError:
            pass

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; the bound ``(host, port)``."""
        if self._thread is not None:
            return self.address
        self._thread = threading.Thread(
            target=self._run, name="saad-synopsis-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread = None
            raise error
        return self.address

    def close(self) -> None:
        """Stop accepting, drain admitted frames, close the loop, join
        the thread.  Idempotent."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                drained = asyncio.run_coroutine_threadsafe(
                    self._drain_for_close(), loop
                )
                drained.result(timeout=10)
            except Exception:
                pass
            loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    def __enter__(self) -> "SynopsisServer":
        """Context-manager entry: start and return the server."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the server."""
        self.close()


class AdaptiveFlush:
    """Bounded AIMD controller for the node-side frame batch size.

    Tracks a smoothed ack round-trip time and tunes the recommended
    ``flush_size`` (synopses per wire frame) the way a congestion window
    moves: *additive increase* — while the smoothed RTT sits at or under
    ``target_rtt_us``, grow by ``step`` to amortize per-frame header,
    syscall, and ack costs; *multiplicative decrease* — the moment it
    exceeds the target, halve, shrinking the burst a congested analyzer
    must absorb per frame and with it this sender's share of the credit
    window in flight.  The value is always clamped to
    ``[min_size, max_size]`` so a pathological RTT series can neither
    starve batching nor exceed the wire format's frame capacity.
    """

    def __init__(
        self,
        initial: int = 64,
        min_size: int = 8,
        max_size: int = 1024,
        step: int = 8,
        target_rtt_us: float = 2000.0,
        smoothing: float = 0.2,
    ):
        if not 1 <= min_size <= initial <= max_size <= MAX_FRAME_SYNOPSES:
            raise ValueError(
                f"need 1 <= min_size <= initial <= max_size <= "
                f"{MAX_FRAME_SYNOPSES}, got {min_size}/{initial}/{max_size}"
            )
        if step < 1:
            raise ValueError(f"step must be >= 1: {step}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1]: {smoothing}")
        self.min_size = min_size
        self.max_size = max_size
        self.step = step
        self.target_rtt_us = float(target_rtt_us)
        self.smoothing = smoothing
        self.size = initial
        self.rtt_us = 0.0

    def observe(self, rtt_us: float) -> int:
        """Fold one ack round-trip sample in; the new recommended size."""
        if self.rtt_us == 0.0:
            self.rtt_us = float(rtt_us)
        else:
            s = self.smoothing
            self.rtt_us = (1.0 - s) * self.rtt_us + s * float(rtt_us)
        if self.rtt_us > self.target_rtt_us:
            self.size = max(self.min_size, self.size // 2)
        else:
            self.size = min(self.max_size, self.size + self.step)
        return self.size


class FrameClient:
    """Credit-respecting blocking TCP sender for wire frames (node side).

    An instance is a valid ``frame_sink``: construct with the server's
    address and hand it to :class:`~repro.core.stream.SynopsisStream`
    — every flushed frame is written to the socket.  By default the
    client negotiates the envelope protocol (credit backpressure,
    per-frame acks, optional compression) with the magic hello; pass
    ``negotiate=False`` to speak the raw legacy frame stream instead.

    Parameters
    ----------
    address:
        The server's ``(host, port)``.
    timeout:
        Socket timeout, and the bound on a blocked credit wait.
    registry:
        Telemetry registry for the ``client_*`` metrics (labelled by
        ``peer``); defaults to :data:`~repro.telemetry.NULL_REGISTRY`.
    compression:
        Request zlib frame compression at connect; the server may
        decline, in which case frames go uncompressed (negotiation
        fallback — check :attr:`compression` for the outcome).
    negotiate:
        False skips the hello entirely: raw frames, no credit, no acks
        (exactly the pre-overload wire behavior).
    priority_fn:
        Optional ``frame -> priority`` classifier consulted when
        :meth:`send` is not given an explicit priority — e.g.
        :meth:`~repro.shard.shedding.SignatureNovelty.frame_priority`.
    adaptive:
        The :class:`AdaptiveFlush` controller to tune from ack RTTs; a
        default-configured one is built when omitted.
    on_flush_size:
        Callback fired with the new recommended ``flush_size`` whenever
        the controller changes it (the facade points this at the node's
        stream).
    node:
        This node's identity for federated telemetry — the ``node=``
        label value the analyzer files our snapshots under.  Defaults
        to this socket's local ``host:port``.
    telemetry_source:
        Where :meth:`send_telemetry` snapshots from — a registry-like
        object with ``collect()`` (typically this node's
        :class:`~repro.telemetry.MetricsRegistry`) or a zero-argument
        callable returning a families list.  None disables telemetry
        pushes.
    telemetry_interval_s:
        Piggyback cadence: while a ``telemetry_source`` is set and the
        server speaks protocol version >= 2, :meth:`send` pushes a
        fresh snapshot whenever at least this many seconds have passed
        since the last one.  None pushes only on explicit
        :meth:`send_telemetry` calls.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float = 10.0,
        *,
        registry=None,
        compression: bool = False,
        negotiate: bool = True,
        priority_fn: Optional[Callable[[bytes], int]] = None,
        adaptive: Optional[AdaptiveFlush] = None,
        on_flush_size: Optional[Callable[[int], None]] = None,
        node: Optional[str] = None,
        telemetry_source=None,
        telemetry_interval_s: Optional[float] = 30.0,
    ):
        self._sock = socket.create_connection(address, timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.timeout = timeout
        self.bytes_sent = 0
        self.frames_sent = 0
        self._closed = False
        self._negotiated = False
        self._compress = False
        self._priority_fn = priority_fn
        self._adaptive = adaptive if adaptive is not None else AdaptiveFlush()
        self._on_flush_size = on_flush_size
        self._credit = 0
        self._window = 0
        self._seq = 0
        self._acked = 0
        self._send_times: Dict[int, float] = {}
        self._ackbuf = b""
        self._server_version = 0
        self._health_reports: List[dict] = []
        self._peer_watermark = float("-inf")
        if node is None:
            local = self._sock.getsockname()
            node = f"{local[0]}:{local[1]}"
        self.node = str(node)
        self._telemetry_source = telemetry_source
        self.telemetry_interval_s = telemetry_interval_s
        self._last_telemetry: Optional[float] = None
        registry = registry if registry is not None else NULL_REGISTRY
        peer = f"{address[0]}:{address[1]}"
        labels = ("peer",)
        registry.gauge(
            "client_flush_size",
            "recommended synopses per frame (AIMD-tuned from ack RTT)",
            labels=labels,
        ).labels(peer=peer).set_function(lambda: self._adaptive.size)
        registry.gauge(
            "client_rtt_us",
            "smoothed frame ack round-trip time (microseconds)",
            labels=labels,
        ).labels(peer=peer).set_function(lambda: self._adaptive.rtt_us)
        self._m_stalls = registry.counter(
            "client_credit_stalls",
            "sends that blocked waiting for the server to re-grant credit",
            labels=labels,
        ).labels(peer=peer)
        self._m_compressed = registry.counter(
            "client_frames_compressed",
            "frames sent as zlib-compressed envelopes",
            labels=labels,
        ).labels(peer=peer)
        self._m_saved = registry.counter(
            "client_compression_saved_bytes",
            "wire bytes saved by frame compression",
            labels=labels,
        ).labels(peer=peer)
        self._m_telemetry_pushes = registry.counter(
            "client_telemetry_pushes",
            "registry snapshots pushed to the analyzer (TELEMETRY envelopes)",
            labels=labels,
        ).labels(peer=peer)
        if negotiate:
            self._handshake(compression)

    # -- introspection -------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def compression(self) -> bool:
        """True when the server accepted compressed envelopes."""
        return self._compress

    @property
    def credit(self) -> int:
        """Current send credit in bytes (0 on a legacy connection)."""
        return self._credit

    @property
    def server_version(self) -> int:
        """The server's protocol version from the hello-ack (0 legacy).

        Control envelopes (telemetry pushes, health probes) need
        version >= 2; the piggyback path gates on this automatically.
        """
        return self._server_version

    @property
    def flush_size(self) -> int:
        """The controller's current recommended synopses per frame."""
        return self._adaptive.size

    @property
    def seq(self) -> int:
        """Sequence number of the last data/reroute envelope sent."""
        return self._seq

    @property
    def acked(self) -> int:
        """Highest cumulative sequence the server has acked."""
        return self._acked

    @property
    def peer_watermark(self) -> float:
        """The analyzer's last advertised event-time watermark.

        ``-inf`` until the first watermark record arrives (a pre-v3
        server, or one without a watermark source, never advertises).
        The fleet router prunes its per-stage replay retention against
        this: a window whose end the watermark has passed is already
        finalized — and its events emitted — at the analyzer.
        """
        return self._peer_watermark

    @property
    def rtt_us(self) -> float:
        """Smoothed ack round-trip time in microseconds (0 before acks)."""
        return self._adaptive.rtt_us

    # -- wire ----------------------------------------------------------------
    def _handshake(self, want_compression: bool) -> None:
        flags = _FLAG_COMPRESS if want_compression else 0
        self._sock.sendall(_HELLO.pack(_MAGIC, _PROTOCOL_VERSION, flags))
        ack = self._recv_exact(_HELLO_ACK.size)
        magic, version, accepted, window = _HELLO_ACK.unpack(ack)
        if magic != _MAGIC:
            raise ConnectionError("peer is not a SAAD synopsis server")
        self._negotiated = True
        self._server_version = version
        self._compress = bool(accepted & _FLAG_COMPRESS)
        self._window = self._credit = window

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        while n > 0:
            chunk = self._sock.recv(n)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def __call__(self, frame: bytes) -> None:
        """The ``frame_sink`` protocol: :meth:`send`."""
        self.send(frame)

    def send(self, frame: bytes, priority: Optional[int] = None) -> None:
        """Write one frame to the socket, respecting the credit window.

        On a negotiated connection the frame travels in a data envelope
        (compressed when that shrinks it and the server agreed); if the
        envelope exceeds the remaining credit, the call blocks draining
        acks until the server re-grants enough (``client_credit_stalls``
        counts these waits, bounded by ``timeout``).  ``priority``
        defaults to the ``priority_fn`` classification, else
        head-sampled.
        """
        if self._closed:
            raise RuntimeError("FrameClient is closed; send() after close()")
        if not self._negotiated:
            self._sock.sendall(frame)
            self.bytes_sent += len(frame)
            self.frames_sent += 1
            return
        if priority is None:
            priority = (
                self._priority_fn(frame)
                if self._priority_fn is not None
                else PRIORITY_SAMPLED
            )
        payload, etype = frame, _ENV_DATA
        if self._compress:
            squeezed = zlib.compress(frame, _COMPRESS_LEVEL)
            if len(squeezed) < len(frame):
                payload, etype = squeezed, _ENV_DATA_Z
                self._m_compressed.inc()
                self._m_saved.inc(len(frame) - len(squeezed))
        self._send_sequenced(_ENVELOPE.pack(etype, priority, len(payload)) + payload)
        self._maybe_push_telemetry()

    def _send_sequenced(self, envelope: bytes) -> None:
        """Write one credit-accounted, seq-numbered envelope."""
        need = len(envelope)
        self._drain_acks()
        # An envelope larger than the whole window can never be fully
        # covered; sending at full credit (briefly going negative) keeps
        # it deadlock-free while still serializing on the round-trip.
        floor = min(need, self._window)
        if self._credit < floor:
            self._m_stalls.inc()
            deadline = time.monotonic() + self.timeout
            while self._credit < floor:
                self._drain_acks(deadline=deadline)
        self._sock.sendall(envelope)
        self._credit -= need
        self._seq += 1
        self._send_times[self._seq] = time.perf_counter()
        self.bytes_sent += need
        self.frames_sent += 1

    def send_replay(self, frame: bytes) -> None:
        """Replay one wire frame after a fleet reroute (DESIGN.md §16).

        The frame rides a REPLAY envelope: queued behind any data
        frames already in flight on this connection (ordering is the
        contract), credit-accounted like data, never shed, and
        delivered to the server's ``replay_sink`` — the detector's
        deferred-close absorb path — instead of its data sink.  Raises
        ``RuntimeError`` when the connection cannot carry reroute
        envelopes (closed, legacy, or a pre-v3 server).
        """
        self._check_reroute_capable("send_replay")
        self._send_sequenced(_ENVELOPE.pack(_ENV_REPLAY, 0, len(frame)) + frame)

    def send_disown(self, stage_ids) -> None:
        """Tell this analyzer to drop its open windows for ``stage_ids``.

        Sent to a still-alive *previous* owner after the ring moved
        stages away from it: the router has replayed the same synopses
        to the new owner, so the old owner must forget its partial
        buckets without emitting (no double counting).  The envelope is
        queued behind in-flight data frames, so a data frame for a
        moved stage that was already on the wire is observed first and
        then disowned with the rest.  Raises ``RuntimeError`` when the
        connection cannot carry reroute envelopes.
        """
        payload = bytes(stage_id & 0xFF for stage_id in stage_ids)
        self._check_reroute_capable("send_disown")
        self._send_sequenced(_ENVELOPE.pack(_ENV_DISOWN, 0, len(payload)) + payload)

    def _check_reroute_capable(self, what: str) -> None:
        if self._closed:
            raise RuntimeError(f"FrameClient is closed; {what}() after close()")
        if not self._negotiated or self._server_version < 3:
            raise RuntimeError(
                f"{what} needs a negotiated protocol-v3 connection"
            )

    def _maybe_push_telemetry(self) -> None:
        """Piggyback a registry snapshot when the cadence is due."""
        if (
            self._telemetry_source is None
            or self.telemetry_interval_s is None
            or self._server_version < 2
        ):
            return
        now = time.monotonic()
        if (
            self._last_telemetry is not None
            and now - self._last_telemetry < self.telemetry_interval_s
        ):
            return
        try:
            self.send_telemetry()
        except (ValueError, RuntimeError):
            pass  # source vanished or connection mid-close; data path wins

    def send_telemetry(self, families: Optional[list] = None) -> None:
        """Push one registry snapshot to the analyzer, immediately.

        ``families`` defaults to a fresh ``collect()`` from the
        configured ``telemetry_source``.  The snapshot rides a
        TELEMETRY envelope (compressed when the server agreed to zlib
        and that shrinks it) outside the credit window, so it cannot
        stall — or be stalled by — the data path.  Raises
        ``RuntimeError`` when the connection cannot carry telemetry
        (closed, legacy, or a pre-v2 server) and ``ValueError`` when no
        families are given and no source is configured.
        """
        if self._closed:
            raise RuntimeError("FrameClient is closed; send_telemetry() after close()")
        if not self._negotiated or self._server_version < 2:
            raise RuntimeError(
                "telemetry pushes need a negotiated protocol-v2 connection"
            )
        if families is None:
            source = self._telemetry_source
            if source is None:
                raise ValueError("no telemetry_source configured and no families given")
            families = source.collect() if hasattr(source, "collect") else source()
        body = json.dumps(
            {"node": self.node, "families": families}, sort_keys=True
        ).encode("utf-8")
        payload, etype = body, _ENV_TELEMETRY
        if self._compress:
            squeezed = zlib.compress(body, _COMPRESS_LEVEL)
            if len(squeezed) < len(body):
                payload, etype = squeezed, _ENV_TELEMETRY_Z
        self._sock.sendall(_ENVELOPE.pack(etype, 0, len(payload)) + payload)
        self.bytes_sent += _ENVELOPE.size + len(payload)
        self._m_telemetry_pushes.inc()
        self._last_telemetry = time.monotonic()

    def health(self, timeout: Optional[float] = None) -> dict:
        """Probe the analyzer's health engine; its JSON report as a dict.

        Sends a HEALTH envelope and blocks (up to ``timeout``, default
        the socket timeout) for the report on the ack stream — credit
        grants arriving meanwhile are absorbed normally, so probing is
        safe mid-stream.  Raises ``RuntimeError`` on a connection that
        cannot carry probes and ``TimeoutError`` when no report lands
        in time.
        """
        if self._closed:
            raise RuntimeError("FrameClient is closed; health() after close()")
        if not self._negotiated or self._server_version < 2:
            raise RuntimeError(
                "health probes need a negotiated protocol-v2 connection"
            )
        self._sock.sendall(_ENVELOPE.pack(_ENV_HEALTH, 0, 0))
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        while not self._health_reports:
            try:
                self._drain_acks(deadline=deadline)
            except TimeoutError:
                raise TimeoutError("timed out waiting for the health report")
        return self._health_reports.pop(0)

    def _drain_acks(self, deadline: Optional[float] = None) -> None:
        """Absorb pending acks; with a deadline, wait for at least one.

        Each ack replenishes credit and closes the RTT loop feeding the
        :class:`AdaptiveFlush` controller.
        """
        size = _ACK.size
        while True:
            if deadline is None:
                wait = 0.0
            else:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    raise TimeoutError(
                        "timed out waiting for ingest credit (server "
                        "backlogged past its watermarks, or gone)"
                    )
            ready = select.select([self._sock], [], [], wait)[0]
            if not ready:
                if deadline is None:
                    return
                continue
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._ackbuf += chunk
            progressed = False
            while len(self._ackbuf) >= size:
                kind, seq, grant = _ACK.unpack_from(self._ackbuf)
                if kind in (_ACK_HEALTH, _ACK_WATERMARK):
                    # ``grant`` doubles as the body length; wait for
                    # the full record before consuming anything.
                    if len(self._ackbuf) < size + grant:
                        break
                    body = self._ackbuf[size : size + grant]
                    self._ackbuf = self._ackbuf[size + grant :]
                    if kind == _ACK_WATERMARK:
                        if len(body) == _WATERMARK.size:
                            mark = _WATERMARK.unpack(body)[0]
                            if mark > self._peer_watermark:
                                self._peer_watermark = mark
                        continue  # liveness only; acks still pending
                    try:
                        self._health_reports.append(json.loads(body.decode("utf-8")))
                    except ValueError:
                        self._health_reports.append(
                            {"state": "unknown", "error": "undecodable health report"}
                        )
                    progressed = True
                    continue
                self._ackbuf = self._ackbuf[size:]
                if kind != _ACK_GRANT:
                    continue
                self._credit += grant
                progressed = True
                sent_at = self._send_times.pop(seq, None)
                if sent_at is not None:
                    before = self._adaptive.size
                    # One controller step per ack — inherently scalar.
                    after = self._adaptive.observe(  # saadlint: disable=CP001
                        (time.perf_counter() - sent_at) * 1e6
                    )
                    if after != before and self._on_flush_size is not None:
                        self._on_flush_size(after)
                if seq > self._acked:
                    self._acked = seq
            if deadline is None or progressed:
                return

    def wait_acked(self, timeout: Optional[float] = None) -> None:
        """Block until every sent data envelope has been acked.

        No-op on a legacy connection.  Useful before :meth:`close` when
        the caller wants delivery (not just transmission) confirmed.
        """
        if not self._negotiated:
            return
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        while self._acked < self._seq:
            self._drain_acks(deadline=deadline)

    def close(self) -> None:
        """Shut the connection down cleanly.  Idempotent.

        A negotiated connection sends the BYE envelope first so the
        server can tell a clean goodbye from a mid-frame death.  After
        ``close()``, :meth:`send` raises ``RuntimeError``.
        """
        if self._closed:
            return
        self._closed = True
        if self._negotiated:
            try:
                self._sock.sendall(_ENVELOPE.pack(_ENV_BYE, 0, 0))
            except OSError:
                pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "FrameClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the connection."""
        self.close()
