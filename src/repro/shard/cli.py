"""Command-line front ends for the sharded analyzer.

``python -m repro shard``
    Demonstrate stage-sharded detection on a synthetic workload: print
    the stage -> shard partition map, run the same trace through a
    single-process detector and an N-shard pool, and report per-shard
    accounting plus the event-set equivalence check.

``python -m repro serve``
    Run a TCP synopsis ingest endpoint.  Without a model it is a pure
    collection endpoint (frames in, accounting out); with ``--model``
    (a file written by :func:`repro.core.persistence.save_model`) every
    ingested frame is routed straight into a sharded analyzer and the
    merged anomaly events are printed at shutdown.
"""

from __future__ import annotations

import argparse
import random
import time
from typing import List, Optional

__all__ = ["main", "serve"]

_DEMO_STAGES = (1, 2, 3, 5, 8, 13)


def _demo_trace(tasks: int, anomalous: bool = False) -> List:
    """A deterministic multi-stage synthetic trace (no wall clock)."""
    from repro.core import TaskSynopsis

    rng = random.Random(42 if anomalous else 7)
    out = []
    for i in range(tasks):
        stage = _DEMO_STAGES[i % len(_DEMO_STAGES)]
        lps = (stage, stage + 1, stage + 3)
        if anomalous and stage == 5 and i > tasks // 2 and i % 2:
            lps = (stage, stage + 1, stage + 2, stage + 3)
        out.append(
            TaskSynopsis(
                host_id=i % 2,
                stage_id=stage,
                uid=i,
                start_time=i * 0.01,
                duration=0.01 * rng.lognormvariate(0, 0.3),
                log_points={lp: 1 for lp in lps},
            )
        )
    return out


def main(argv) -> int:
    """Entry for ``python -m repro shard``."""
    from repro.core import AnomalyDetector, OutlierModel, SAADConfig
    from repro.telemetry import MetricsRegistry

    from .coordinator import EVENT_ORDER, ShardedAnalyzer
    from .partition import shard_for

    parser = argparse.ArgumentParser(
        prog="python -m repro shard",
        description="stage-sharded parallel detection demo",
    )
    parser.add_argument("--shards", type=int, default=4, metavar="N")
    parser.add_argument("--tasks", type=int, default=30_000, metavar="M")
    args = parser.parse_args(argv)

    config = SAADConfig(window_s=60.0, min_window_tasks=8)
    model = OutlierModel(config).train(_demo_trace(max(args.tasks // 3, 3000)))
    trace = _demo_trace(args.tasks, anomalous=True)

    print(f"partition map ({args.shards} shards):")
    for stage in _DEMO_STAGES:
        print(f"  stage {stage:>3} -> shard {shard_for(stage, args.shards)}")

    started = time.perf_counter()
    # Coordinator-side reference run, not a shard worker's detector.
    single = AnomalyDetector(model)  # saadlint: disable=SH001
    for synopsis in trace:
        single.observe(synopsis)  # saadlint: disable=CP001
    single.flush()
    single_s = time.perf_counter() - started

    registry = MetricsRegistry()
    started = time.perf_counter()
    with ShardedAnalyzer(model, args.shards, registry=registry) as pool:
        pool.dispatch(trace)
        pool.close()
        sharded_s = time.perf_counter() - started
        print(f"\nsingle process : {len(single.anomalies)} events in {single_s:.2f}s")
        print(f"{args.shards} shards       : {len(pool.anomalies)} events in {sharded_s:.2f}s")
        for shard_id, stats in sorted(pool.worker_stats.items()):
            print(
                f"  shard {shard_id}: {stats['tasks']} tasks, "
                f"{stats['windows_closed']} windows, "
                f"{stats['busy_seconds']:.2f}s busy"
            )
        matches = sorted(single.anomalies, key=EVENT_ORDER) == pool.anomalies
    print(f"event sets identical: {matches}")
    return 0 if matches else 1


def serve(argv) -> int:
    """Entry for ``python -m repro serve``."""
    from repro.core.stream import SynopsisCollector
    from repro.telemetry import MetricsRegistry

    from .coordinator import ShardedAnalyzer
    from .server import SynopsisServer
    from .shedding import LoadShedder, SignatureNovelty

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="TCP synopsis ingest endpoint",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--model", metavar="FILE", help="trained model JSON (enables detection)"
    )
    parser.add_argument("--shards", type=int, default=1, metavar="N")
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve this long then exit (default: until Ctrl-C)",
    )
    parser.add_argument(
        "--credit-window",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-connection in-flight byte credit (default 256 KiB)",
    )
    parser.add_argument(
        "--high-watermark",
        type=int,
        default=None,
        metavar="BYTES",
        help="backlog at which connection reads pause (default 4 MiB)",
    )
    parser.add_argument(
        "--low-watermark",
        type=int,
        default=None,
        metavar="BYTES",
        help="backlog at which paused reads resume (default high/2)",
    )
    parser.add_argument(
        "--shed-watermark",
        type=int,
        default=None,
        metavar="BYTES",
        help="backlog at which head-sampled frames are shed "
        "(default: no shedding, backpressure only)",
    )
    parser.add_argument(
        "--hard-watermark",
        type=int,
        default=None,
        metavar="BYTES",
        help="backlog at which exemplar-bearing frames are shed too "
        "(default: 2x the shed watermark)",
    )
    parser.add_argument(
        "--no-compression",
        action="store_true",
        help="decline clients' zlib frame compression requests",
    )
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    analyzer: Optional[ShardedAnalyzer] = None
    classify = None
    collector = SynopsisCollector(retain=False, registry=registry)
    if args.model:
        from repro.core.persistence import load_model

        model = load_model(args.model, registry=registry)
        analyzer = ShardedAnalyzer(model, args.shards, registry=registry)
        sink = analyzer.dispatch_frame
        # Legacy (priority-less) connections get server-side priorities
        # from the model: novel-signature frames survive shedding longer.
        classify = SignatureNovelty.from_model(model).frame_priority
    else:
        sink = collector.feed

    shedder = None
    if args.shed_watermark is not None:
        shedder = LoadShedder(
            args.shed_watermark, args.hard_watermark, registry=registry
        )
    elif args.hard_watermark is not None:
        parser.error("--hard-watermark requires --shed-watermark")
    server = SynopsisServer(
        sink,
        host=args.host,
        port=args.port,
        registry=registry,
        credit_window=args.credit_window,
        high_watermark=args.high_watermark,
        low_watermark=args.low_watermark,
        shedder=shedder,
        classify=classify,
        compression=not args.no_compression,
    )
    host, port = server.start()
    mode = f"detecting with {args.shards} shard(s)" if analyzer else "collecting"
    print(f"listening on {host}:{port} ({mode}); Ctrl-C to stop")
    try:
        if args.duration is None:
            while True:
                time.sleep(3600)
        else:
            time.sleep(args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if analyzer is not None:
            events = analyzer.close()
            print(f"\n{len(analyzer.anomalies)} anomaly events merged")
            for event in events:
                print(
                    f"  {event.kind} host={event.host_id} stage={event.stage_id} "
                    f"window=[{event.window_start:.0f}, {event.window_end:.0f}) "
                    f"outliers={event.outliers}/{event.n}"
                )
        else:
            print(
                f"\n{collector.count} synopses in {collector.frames_received} "
                f"frames ({collector.bytes_received} bytes)"
            )
    return 0
