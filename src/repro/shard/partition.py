"""Stage partitioning for the sharded analyzer.

The paper's analyzer is stage-partitionable by construction (Middleware
'14 Sec. 3): every statistic the detector keeps — window buckets,
signature profiles, proportion tests — is keyed by ``(host, stage)``,
and a task's stage id travels in byte 1 of its wire synopsis.  Routing
``stage_id -> shard`` therefore never has to decode a synopsis: the
coordinator scans frame bytes, reads the stage byte and the entry count
byte, and slices each encoded synopsis straight into its shard's output
buffer.

The mapping is ``hash(stage_id) % shards`` with a fixed multiplicative
(Fibonacci) mix instead of Python's builtin ``hash`` so the result is
stable across processes, interpreter versions, and ``PYTHONHASHSEED`` —
a shard must route the same stage to the same worker on every run.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.synopsis import SYNOPSIS_ENTRY, SYNOPSIS_HEADER

#: Knuth's multiplicative-hash constant (2^32 / phi), the fixed mix.
_MIX = 0x9E3779B1
_MASK = 0xFFFFFFFF

#: Wire offsets the routing scan reads (see ``repro.core.synopsis``):
#: byte 1 is the stage id, the last header byte is the entry count.
_HEADER_SIZE = SYNOPSIS_HEADER.size
_ENTRY_SIZE = SYNOPSIS_ENTRY.size
_STAGE_OFFSET = 1
_COUNT_OFFSET = _HEADER_SIZE - 1


def shard_for(stage_id: int, shards: int) -> int:
    """The shard index stage ``stage_id`` is partitioned to.

    Deterministic across processes and runs: ``(stage_id * 2654435761
    mod 2^32) >> 16 mod shards``.  Every task of one stage lands on one
    shard, so per-stage windows and tests never straddle workers.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1: {shards}")
    return ((stage_id * _MIX & _MASK) >> 16) % shards


def shard_table(shards: int) -> List[int]:
    """``shard_for`` precomputed for every possible stage byte (0..255).

    The routing hot loop indexes this table instead of re-mixing per
    synopsis.
    """
    return [shard_for(stage_id, shards) for stage_id in range(256)]


def route_payload(
    payload: bytes,
    offset: int,
    end: int,
    table: Sequence[int],
    buckets: Sequence[List[bytes]],
) -> List[int]:
    """Route the encoded synopses in ``payload[offset:end]`` by stage.

    The coordinator's hot loop: for each synopsis, read the stage byte,
    look up its shard in ``table`` (from :func:`shard_table`), and
    append the synopsis's raw byte slice to ``buckets[shard]`` — no
    decoding, no object materialization.  Returns the number of
    synopses appended per shard.  Raises ``ValueError`` when the range
    does not hold a whole number of synopses.
    """
    counts = [0] * len(buckets)
    header_size = _HEADER_SIZE
    entry_size = _ENTRY_SIZE
    stage_off = _STAGE_OFFSET
    count_off = _COUNT_OFFSET
    while offset < end:
        if end - offset < header_size:
            raise ValueError("truncated synopsis header")
        stop = offset + header_size + entry_size * payload[offset + count_off]
        if stop > end:
            raise ValueError("truncated synopsis log point entries")
        shard = table[payload[offset + stage_off]]
        buckets[shard].append(payload[offset:stop])
        counts[shard] += 1
        offset = stop
    return counts
