"""The sanctioned constructor for per-shard detectors.

Worker code inside the shard package must not build
:class:`~repro.core.detector.AnomalyDetector` directly (saadlint rule
SH001): the factory is the one place that wires a shard's detector the
way the coordinator protocol expects — a process-local registry whose
snapshot is shipped back for aggregation, the key-echo tracer stand-in
that routes exemplar pinning to the parent, and a ``shard_id`` tag used
by telemetry and error reporting.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SAADConfig
from repro.core.detector import AnomalyDetector
from repro.core.model import OutlierModel


def shard_detector(
    model: OutlierModel,
    config: Optional[SAADConfig] = None,
    *,
    shard_id: int,
    lateness_s: float = 0.0,
    registry=None,
    tracer=None,
    exemplars_per_window: int = 3,
) -> AnomalyDetector:
    """A streaming detector configured for one shard of the analyzer.

    Identical detection semantics to a single-process detector — the
    shard only ever sees the stages partitioned to it, and every
    per-stage statistic is independent, so N shards emit the same event
    set as one (order aside).  ``tracer`` is normally a
    :class:`~repro.shard.worker.KeyPinner` so exemplar candidates come
    back to the coordinator as trace keys rather than process-local
    trace objects.
    """
    if shard_id < 0:
        raise ValueError(f"shard_id must be >= 0: {shard_id}")
    detector = AnomalyDetector(  # saadlint: disable=SH001  # the factory itself
        model,
        config,
        lateness_s=lateness_s,
        registry=registry,
        tracer=tracer,
        exemplars_per_window=exemplars_per_window,
    )
    detector.shard_id = shard_id
    return detector
