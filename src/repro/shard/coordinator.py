"""The shard coordinator: route, dispatch, merge.

:class:`ShardedAnalyzer` is the parent-process half of the sharded
analyzer.  It owns a pool of worker processes (one detector per shard,
see :mod:`repro.shard.worker`), routes incoming synopses to them by
stage (:mod:`repro.shard.partition`), and merges the per-shard anomaly
event streams back into one deterministically ordered feed.

Hot path: frames arrive as raw wire bytes (from a
:class:`~repro.core.stream.SynopsisCollector` or straight off a
socket), the coordinator slices each encoded synopsis into its shard's
output buffer **without decoding**, re-frames per shard, and ships the
bytes over a ``multiprocessing.Pipe``.  Per-synopsis parent-side cost
is a table lookup and a slice.

Merging: all per-stage detector state lives wholly inside one shard, so
the union of the shards' event sets equals a single-process detector's
event set; the coordinator imposes the canonical order
``(window_start, window_end, host_id, stage_id, kind)``.  Events whose
exemplars crossed the boundary as trace keys are resolved against the
deployment tracer (:meth:`~repro.tracing.Tracer.pin_many`) — traces are
captured node-side and never shipped to workers.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.detector import AnomalyEvent
from repro.core.model import OutlierModel
from repro.core.persistence import broadcast_model
from repro.core.synopsis import FRAME_HEADER, MAX_FRAME_SYNOPSES, TaskSynopsis
from repro.telemetry import NULL_REGISTRY, merge_snapshots
from repro.tracing import NULL_TRACER

from .partition import route_payload, shard_table
from .worker import WorkerInit, worker_main

__all__ = ["ShardedAnalyzer", "ShardWorkerError", "EVENT_ORDER"]


def EVENT_ORDER(event: AnomalyEvent):
    """The canonical merge order of the sharded event feed.

    Window first (start, then end), then stage identity, then kind —
    deterministic for any interleaving of per-shard streams, and
    identical to sorting a single-process detector's output.
    """
    return (
        event.window_start,
        event.window_end,
        event.host_id,
        event.stage_id,
        event.kind,
    )


class ShardWorkerError(RuntimeError):
    """A shard worker died or reported an exception."""


class ShardedAnalyzer:
    """Stage-sharded detection across a pool of worker processes.

    Parameters
    ----------
    model:
        The trained :class:`~repro.core.model.OutlierModel`; broadcast
        to every worker in persistence-format JSON, so each shard
        reconstructs it into its own process-local interning table.
    shards:
        Worker count.  Stages are partitioned ``shard_for(stage) %
        shards``; any one stage's statistics live wholly in one worker.
    lateness_s, exemplars_per_window:
        Forwarded to each shard's detector.
    registry:
        Deployment registry receiving the coordinator's ``shard_*``
        metrics and the aggregated per-worker accounting; defaults to
        :data:`~repro.telemetry.NULL_REGISTRY`.
    tracer:
        Deployment tracer used to resolve exemplar trace keys on merge;
        defaults to :data:`~repro.tracing.NULL_TRACER` (workers then
        skip exemplar tracking entirely).
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); None uses the platform default.  The worker
        protocol is spawn-safe.
    batch_bytes:
        Dispatch watermark: a shard's routed-but-unsent buffer is
        flushed to its worker once it holds this many payload bytes.
    ring:
        The consistent-hash ring (:class:`~repro.fleet.ring.HashRing`)
        that owns stage placement — the routing source of truth since
        the fleet refactor (DESIGN.md §16).  Must hold exactly
        ``shards`` nodes; node ids map to worker indices in sorted
        order.  None builds a default ring over ``shard-0 ..
        shard-N-1``.  (The legacy ``shard_for`` / ``shard_table``
        mapping remains available from :mod:`repro.shard.partition`
        for fixed-pool callers, but the coordinator itself routes by
        ring so a pool and a fleet agree on placement mechanics.)
    """

    def __init__(
        self,
        model: OutlierModel,
        shards: int,
        *,
        lateness_s: float = 0.0,
        exemplars_per_window: int = 3,
        registry=None,
        tracer=None,
        start_method: Optional[str] = None,
        batch_bytes: int = 1 << 16,
        ring=None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1: {shards}")
        if batch_bytes < 1:
            raise ValueError(f"batch_bytes must be >= 1: {batch_bytes}")
        self.shards = shards
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.batch_bytes = batch_bytes
        self.anomalies: List[AnomalyEvent] = []
        self.worker_stats: Dict[int, dict] = {}
        self.worker_telemetry: Dict[int, list] = {}
        self.closed = False
        if ring is None:
            # Imported lazily: repro.fleet's package init reaches back
            # into repro.shard, so a module-level import would cycle.
            from repro.fleet.ring import HashRing

            ring = HashRing(f"shard-{i}" for i in range(shards))
        if len(ring) != shards:
            raise ValueError(
                f"ring holds {len(ring)} nodes but the pool has {shards} shards"
            )
        self.ring = ring
        order = ring.nodes
        self._table = [order.index(owner) for owner in ring.table()]
        self._pending: List[List[bytes]] = [[] for _ in range(shards)]
        self._pending_bytes = [0] * shards
        self._unmerged: List[AnomalyEvent] = []
        self._register_metrics()

        tracing = bool(self.tracer.enabled) and exemplars_per_window > 0
        payload = broadcast_model(model)
        context = multiprocessing.get_context(start_method)
        self._conns = []
        self._procs = []
        try:
            for shard_id in range(shards):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=worker_main,
                    args=(
                        child_conn,
                        WorkerInit(
                            shard_id=shard_id,
                            model_payload=payload,
                            lateness_s=lateness_s,
                            exemplars_per_window=exemplars_per_window,
                            tracing=tracing,
                        ),
                    ),
                    daemon=True,
                    name=f"saad-shard-{shard_id}",
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(process)
        except BaseException:
            self._terminate()
            raise
        self._m_workers.set(shards)

    # -- telemetry -------------------------------------------------------------
    def _register_metrics(self) -> None:
        registry = self.registry
        self._m_workers = registry.gauge(
            "shard_workers", "worker processes in the sharded analyzer pool"
        )
        self._m_synopses = registry.counter(
            "shard_synopses_dispatched",
            "synopses routed to shard workers",
            labels=("shard",),
        )
        self._m_frames = registry.counter(
            "shard_frames_dispatched",
            "wire frames shipped to shard workers",
            labels=("shard",),
        )
        self._m_bytes = registry.counter(
            "shard_bytes_dispatched",
            "frame payload bytes shipped to shard workers",
            labels=("shard",),
        )
        self._m_merged = registry.counter(
            "shard_events_merged", "anomaly events merged from shard workers"
        )
        self._m_pinned = registry.counter(
            "shard_exemplars_pinned",
            "exemplar trace keys resolved against the deployment tracer",
        )
        self._m_worker_tasks = registry.gauge(
            "shard_worker_tasks",
            "tasks observed by each shard worker (last snapshot)",
            labels=("shard",),
        )
        self._m_worker_windows = registry.gauge(
            "shard_worker_windows_closed",
            "windows closed by each shard worker (last snapshot)",
            labels=("shard",),
        )
        self._m_worker_busy = registry.gauge(
            "shard_worker_busy_seconds",
            "CPU seconds spent by each shard worker (last snapshot)",
            labels=("shard",),
        )

    def _record_stats(self, shard_id: int, stats: dict, snapshot: list) -> None:
        self.worker_stats[shard_id] = stats
        self.worker_telemetry[shard_id] = snapshot
        shard = str(shard_id)
        self._m_worker_tasks.labels(shard=shard).set(stats["tasks"])
        self._m_worker_windows.labels(shard=shard).set(stats["windows_closed"])
        self._m_worker_busy.labels(shard=shard).set(stats["busy_seconds"])

    def aggregate_telemetry(self) -> List[dict]:
        """Worker registries merged into one snapshot, summed per sample.

        Combines the last telemetry snapshot of every shard via
        :func:`~repro.telemetry.merge_snapshots` (the same arithmetic
        telemetry federation uses fleet-wide): samples of the same
        family and label set are summed (histograms per bucket), so
        ``detector_tasks_observed`` reports the pool-wide total with
        per-shard families intact under their labels.  The result uses
        the same plain-dict wire form as
        :meth:`~repro.telemetry.MetricsRegistry.collect`.
        """
        return merge_snapshots(self.worker_telemetry.values())

    # -- dispatch --------------------------------------------------------------
    def dispatch_frame(self, frame: bytes, offset: int = 0) -> None:
        """Route one length-prefixed wire frame to the shard buffers.

        Accepts exactly what :meth:`SynopsisCollector.receive_frame
        <repro.core.stream.SynopsisCollector.receive_frame>` accepts, so
        the bound method can serve as a stream's ``frame_sink`` or a
        socket server's delivery target.  Raises ``ValueError`` on a
        truncated frame.
        """
        if len(frame) - offset < FRAME_HEADER.size:
            raise ValueError("truncated frame header")
        length, _ = FRAME_HEADER.unpack_from(frame, offset)
        start = offset + FRAME_HEADER.size
        if len(frame) < start + length:
            raise ValueError("truncated frame payload")
        self.dispatch_payload(frame, start, start + length)

    def dispatch_payload(self, payload: bytes, offset: int, end: int) -> None:
        """Route the bare encoded synopses in ``payload[offset:end]``."""
        self._check_open()
        counts = route_payload(payload, offset, end, self._table, self._pending)
        pending_bytes = self._pending_bytes
        for shard_id, count in enumerate(counts):
            if not count:
                continue
            self._m_synopses.labels(shard=str(shard_id)).inc(count)
            size = sum(map(len, self._pending[shard_id]))
            pending_bytes[shard_id] = size
            if size >= self.batch_bytes:
                self._send_shard(shard_id)
        self._drain()

    def dispatch(self, synopses: Sequence[TaskSynopsis]) -> None:
        """Object-path convenience: route already-decoded synopses.

        Encodes each synopsis once and routes the bytes; useful for
        tests and the facade's batch ``detect``.  The wire path
        (:meth:`dispatch_frame`) is the hot one.
        """
        self._check_open()
        table = self._table
        pending = self._pending
        pending_bytes = self._pending_bytes
        for synopsis in synopses:
            encoded = synopsis.encode()
            shard_id = table[synopsis.stage_id & 0xFF]
            pending[shard_id].append(encoded)
            pending_bytes[shard_id] += len(encoded)
            self._m_synopses.labels(shard=str(shard_id)).inc()
            if pending_bytes[shard_id] >= self.batch_bytes:
                self._send_shard(shard_id)
        self._drain()

    def _send_shard(self, shard_id: int) -> None:
        """Re-frame and ship one shard's routed synopses to its worker."""
        bucket = self._pending[shard_id]
        if not bucket:
            return
        frames: List[bytes] = []
        for start in range(0, len(bucket), MAX_FRAME_SYNOPSES):
            chunk = bucket[start : start + MAX_FRAME_SYNOPSES]
            payload = b"".join(chunk)
            frames.append(FRAME_HEADER.pack(len(payload), len(chunk)))
            frames.append(payload)
            self._m_frames.labels(shard=str(shard_id)).inc()
            self._m_bytes.labels(shard=str(shard_id)).inc(len(payload))
        bucket.clear()
        self._pending_bytes[shard_id] = 0
        self._send(shard_id, ("frames", b"".join(frames)))

    def _send(self, shard_id: int, message) -> None:
        """Send to one worker; a dead worker surfaces as ShardWorkerError.

        A worker that hit an exception reports it and exits, so the
        parent's next send can race the exit and see a broken pipe —
        drain the pipe first so the worker's own traceback wins over a
        generic "pipe closed".
        """
        conn = self._conns[shard_id]
        try:
            conn.send(message)
        except (BrokenPipeError, ConnectionError, OSError):
            try:
                while conn.poll():
                    self._handle(conn.recv())
            except EOFError:
                pass
            raise ShardWorkerError(
                f"shard {shard_id} worker pipe closed unexpectedly"
            ) from None

    # -- merge -----------------------------------------------------------------
    def _drain(self) -> None:
        """Absorb whatever the workers have sent without blocking."""
        for conn in self._conns:
            while conn.poll():
                self._handle(conn.recv())

    def _handle(self, message) -> None:
        kind = message[0]
        if kind == "events":
            self._unmerged.extend(message[1])
        elif kind in ("snapshot", "done"):
            self._record_stats(message[1], message[2], message[3])
        elif kind == "error":
            raise ShardWorkerError(
                f"shard {message[1]} worker failed:\n{message[2]}"
            )
        else:
            raise ShardWorkerError(f"unexpected worker message {kind!r}")

    def _merge(self) -> List[AnomalyEvent]:
        """Order and resolve the events drained since the last merge."""
        events = sorted(self._unmerged, key=EVENT_ORDER)
        self._unmerged = []
        if self.tracer.enabled:
            resolved = []
            for event in events:
                if event.exemplars:
                    traces = self.tracer.pin_many(event.exemplars)
                    self._m_pinned.inc(len(traces))
                    event = replace(event, exemplars=tuple(traces))
                resolved.append(event)
            events = resolved
        else:
            # Workers only track exemplars when the deployment traces,
            # but strip defensively: keys must never pose as traces.
            events = [
                replace(event, exemplars=()) if event.exemplars else event
                for event in events
            ]
        self._m_merged.inc(len(events))
        self.anomalies.extend(events)
        return events

    def _collect_until(self, final_kind: str) -> None:
        """Block until every worker has answered with ``final_kind``."""
        for shard_id, conn in enumerate(self._conns):
            while True:
                try:
                    message = conn.recv()
                except EOFError:
                    raise ShardWorkerError(
                        f"shard {shard_id} worker exited unexpectedly"
                    ) from None
                if message[0] == final_kind:
                    self._handle(message)
                    break
                self._handle(message)

    def flush(self) -> List[AnomalyEvent]:
        """Flush every shard and return the newly merged ordered events.

        Sends any routed-but-unsent synopses, asks each worker to close
        its open windows, waits for all of them, and merges.  Also
        refreshes ``worker_stats`` / ``worker_telemetry`` and the
        ``shard_worker_*`` gauges from each worker's snapshot.
        """
        self._check_open()
        for shard_id in range(self.shards):
            self._send_shard(shard_id)
            self._send(shard_id, ("flush",))
        self._collect_until("snapshot")
        return self._merge()

    def close(self) -> List[AnomalyEvent]:
        """Shut the pool down; the final batch of merged ordered events.

        Flushes remaining windows in every worker, collects final stats
        and telemetry snapshots, and joins the processes.  Idempotent:
        closing twice returns an empty list.
        """
        if self.closed:
            return []
        self.closed = True
        try:
            for shard_id in range(self.shards):
                self._send_shard(shard_id)
                self._send(shard_id, ("close",))
            self._collect_until("done")
            return self._merge()
        finally:
            self._terminate()

    def _terminate(self) -> None:
        for conn in self._conns:
            conn.close()
        for process in self._procs:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10)
        self._m_workers.set(0)

    def _check_open(self) -> None:
        if self.closed:
            raise ValueError("sharded analyzer is closed")

    # -- context manager -------------------------------------------------------
    def __enter__(self) -> "ShardedAnalyzer":
        """Context-manager entry: the analyzer itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the pool."""
        self.close()
