"""Priority-aware load shedding for the TCP ingest edge.

Under sustained overload an ingest endpoint has exactly three options:
grow its buffers without bound, stop reading (backpressure), or drop
work.  The first is an outage with extra steps; the second is right for
short bursts but turns a 2x sustained overload into an ever-growing
node-side queue; the third — *shedding* — keeps goodput at capacity by
discarding the least valuable frames first.

What is least valuable is workload knowledge: the paper's detector is
counting-based, so dropping a slice of the head-sampled, steady-state
synopsis traffic thins every window's counts roughly uniformly and the
proportion tests degrade gracefully.  Frames carrying *novel-signature
or exemplar-bearing* tasks are a different matter — each may be the
only evidence of an anomaly — so they ride a higher priority and are
only dropped past a second, harder watermark.

The ladder (see docs/OPERATIONS.md §8):

====================  ======================================
backlog               behavior
====================  ======================================
``< shed_watermark``  admit everything
``>= shed_watermark`` drop :data:`PRIORITY_SAMPLED` frames
``>= hard_watermark`` drop :data:`PRIORITY_EXEMPLAR` too
====================  ======================================

Credit/ack control traffic is never shed — it is what keeps the
clients' view of the world honest.

:class:`LoadShedder` makes the drop/admit decision and keeps the
per-priority accounting (``shed_frames_dropped{priority=...}``).
:class:`SignatureNovelty` is the sanctioned way to *assign* priorities:
built from a trained model, it classifies a wire frame as
exemplar-bearing when any synopsis in it carries a signature the model
never saw in training.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.core.synopsis import decode_frame
from repro.telemetry import NULL_REGISTRY

__all__ = [
    "LoadShedder",
    "SignatureNovelty",
    "PRIORITY_SAMPLED",
    "PRIORITY_EXEMPLAR",
    "PRIORITY_NAMES",
]

#: Ordinary head-sampled synopsis traffic: first to be shed.
PRIORITY_SAMPLED = 0

#: Frames carrying novel-signature / exemplar-bearing synopses: shed
#: only past the hard watermark.
PRIORITY_EXEMPLAR = 1

#: Label values for the per-priority drop accounting.
PRIORITY_NAMES: Dict[int, str] = {
    PRIORITY_SAMPLED: "sampled",
    PRIORITY_EXEMPLAR: "exemplar",
}


class LoadShedder:
    """The drop/admit decision plus per-priority drop accounting.

    Parameters
    ----------
    shed_watermark:
        Backlog (bytes) at which :data:`PRIORITY_SAMPLED` frames start
        being dropped.
    hard_watermark:
        Backlog at which even :data:`PRIORITY_EXEMPLAR` frames are
        dropped; defaults to twice the shed watermark.  The gap between
        the two is the budget reserved for anomaly evidence.
    registry:
        Telemetry registry for ``shed_frames_dropped`` /
        ``shed_bytes_dropped`` (labelled by priority name) and the
        ``ingest_watermark_bytes{kind=shed|hard}`` gauges; defaults to
        :data:`~repro.telemetry.NULL_REGISTRY`.
    """

    def __init__(
        self,
        shed_watermark: int,
        hard_watermark: Optional[int] = None,
        registry=None,
    ):
        if shed_watermark < 1:
            raise ValueError(f"shed_watermark must be >= 1: {shed_watermark}")
        hard = hard_watermark if hard_watermark is not None else 2 * shed_watermark
        if hard < shed_watermark:
            raise ValueError(
                f"hard_watermark {hard} below shed_watermark {shed_watermark}"
            )
        self.shed_watermark = shed_watermark
        self.hard_watermark = hard
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_dropped = registry.counter(
            "shed_frames_dropped",
            "ingest frames dropped by the load shedder",
            labels=("priority",),
        )
        self._m_bytes = registry.counter(
            "shed_bytes_dropped",
            "frame bytes dropped by the load shedder",
            labels=("priority",),
        )
        watermarks = registry.gauge(
            "ingest_watermark_bytes",
            "configured ingest backlog watermarks (bytes)",
            labels=("kind",),
        )
        watermarks.labels(kind="shed").set_function(lambda: self.shed_watermark)
        watermarks.labels(kind="hard").set_function(lambda: self.hard_watermark)
        self._drops = {name: 0 for name in PRIORITY_NAMES.values()}

    def admit(self, priority: int, size: int, backlog: int) -> bool:
        """Admit (True) or shed (False) one frame.

        ``priority`` is the frame's declared priority, ``size`` its byte
        length, ``backlog`` the ingest backlog (pending bytes) at the
        moment of the decision.  Dropped frames are accounted under
        their priority's label; unknown priorities are treated as (and
        accounted like) :data:`PRIORITY_EXEMPLAR` so a newer client's
        higher classes are never shed more aggressively than intended.
        """
        if backlog < self.shed_watermark:
            return True
        if backlog < self.hard_watermark and priority != PRIORITY_SAMPLED:
            return True
        name = PRIORITY_NAMES.get(priority, PRIORITY_NAMES[PRIORITY_EXEMPLAR])
        self._drops[name] += 1
        self._m_dropped.labels(priority=name).inc()
        self._m_bytes.labels(priority=name).inc(size)
        return False

    def drops(self) -> Dict[str, int]:
        """Per-priority drop counts so far, keyed by priority name."""
        return dict(self._drops)


class SignatureNovelty:
    """Classify frames by signature novelty against a trained model.

    Holds, per stage id, the set of task signatures training has seen
    (merged across hosts — a signature that is routine *anywhere* is not
    evidence).  :meth:`frame_priority` decodes a wire frame and returns
    :data:`PRIORITY_EXEMPLAR` when any synopsis in it carries an unseen
    signature, else :data:`PRIORITY_SAMPLED` — a valid ``priority_fn``
    for :class:`~repro.shard.server.FrameClient`, and the server-side
    classifier for legacy (priority-less) connections when a model is
    available.
    """

    def __init__(self, known: Dict[int, Set[FrozenSet[int]]]):
        self._known = known

    @classmethod
    def from_model(cls, model) -> "SignatureNovelty":
        """Build from a trained :class:`~repro.core.model.OutlierModel`."""
        known: Dict[int, Set[FrozenSet[int]]] = {}
        for (_host, stage_id), stage_model in model.stages.items():
            known.setdefault(stage_id, set()).update(stage_model.signatures)
        return cls(known)

    def is_novel(self, synopsis) -> bool:
        """True when ``synopsis``'s signature was never seen in training."""
        seen = self._known.get(synopsis.stage_id)
        return seen is None or synopsis.signature not in seen

    def frame_priority(self, frame: bytes) -> int:
        """The priority of one wire frame (header + payload bytes).

        A frame that fails to decode is classified
        :data:`PRIORITY_EXEMPLAR`: garbage on the wire is itself a
        signal worth keeping over routine traffic, and the real decode
        error will surface (and be counted) at the ingest sink.
        """
        try:
            synopses, _ = decode_frame(frame, 0)
        except ValueError:
            return PRIORITY_EXEMPLAR
        for synopsis in synopses:
            if self.is_novel(synopsis):
                return PRIORITY_EXEMPLAR
        return PRIORITY_SAMPLED
