"""Human-readable anomaly reporting (paper Sec. 3.3.3, "Anomaly Reporting").

Each anomalous signature is presented by its stage name plus the list of
log templates of its log points — the static text that reveals the
semantics of the execution flow (e.g. Table 1's "MemTable is already
frozen" diagnosis).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .detector import FLOW, AnomalyEvent
from .features import Signature, format_signature
from .logpoints import LogPointRegistry
from .stages import StageRegistry


class AnomalyReporter:
    """Renders anomaly events with stage names and log templates."""

    def __init__(
        self,
        stage_registry: StageRegistry,
        logpoint_registry: LogPointRegistry,
        host_names: Optional[Dict[int, str]] = None,
    ):
        self.stages = stage_registry
        self.logpoints = logpoint_registry
        self.host_names = host_names or {}

    # -- naming helpers ------------------------------------------------------
    def host_name(self, host_id: int) -> str:
        """Display name for ``host_id`` (falls back to ``host<N>``)."""
        return self.host_names.get(host_id, f"host{host_id}")

    def stage_name(self, stage_id: int) -> str:
        """Display name for ``stage_id`` (falls back to ``stage<N>``)."""
        try:
            return self.stages.get(stage_id).name
        except KeyError:
            return f"stage{stage_id}"

    def signature_templates(self, signature: Signature) -> List[str]:
        """Log templates of a signature's points, in id order."""
        lines = []
        for lpid in sorted(signature):
            point = self.logpoints.maybe_get(lpid)
            lines.append(point.describe() if point else f"L{lpid} <unknown log point>")
        return lines

    def _template(self, lpid: int) -> Optional[str]:
        """Bare template text for one log point id, or None."""
        point = self.logpoints.maybe_get(lpid)
        return point.template if point else None

    def render_trace(self, trace) -> str:
        """ASCII timeline of one exemplar :class:`~repro.tracing.TaskTrace`,
        with stage names and log templates resolved through this
        reporter's registries."""
        # Lazy import: repro.viz imports repro.core, so a module-level
        # import here would be circular.
        from repro.viz.timeline import render_trace

        return render_trace(
            trace,
            stage_names=lambda sid: self.stage_name(sid),
            host_names=self.host_names,
            templates=self._template,
        )

    # -- rendering ----------------------------------------------------------
    def render_event(self, event: AnomalyEvent) -> str:
        """Multi-line description of one anomaly."""
        label = "FLOW" if event.kind == FLOW else "PERFORMANCE"
        header = (
            f"[{label}] {self.stage_name(event.stage_id)}"
            f"({self.host_name(event.host_id)}) "
            f"window {event.window_start:.0f}-{event.window_end:.0f}s: "
            f"{event.outliers}/{event.n} outlier tasks "
            f"(baseline {event.baseline:.4f}, p={event.p_value:.2e})"
        )
        lines = [header]
        for signature in event.new_signatures:
            lines.append(f"  new signature {format_signature(signature)}:")
            lines.extend(f"    {t}" for t in self.signature_templates(signature))
        for signature in event.offending_signatures:
            lines.append(f"  slow signature {format_signature(signature)}:")
            lines.extend(f"    {t}" for t in self.signature_templates(signature))
        for trace in event.exemplars:
            lines.append("  exemplar trace:")
            lines.extend(
                f"    {line}" for line in self.render_trace(trace).rstrip("\n").split("\n")
            )
        return "\n".join(lines)

    def render(self, events: Iterable[AnomalyEvent]) -> str:
        """Full report over a batch of events."""
        events = list(events)
        if not events:
            return "No anomalies detected.\n"
        body = "\n".join(self.render_event(e) for e in events)
        return f"SAAD anomaly report: {len(events)} anomalies\n{body}\n"

    def signature_comparison(
        self,
        stage_id: int,
        normal: Signature,
        anomalous: Signature,
    ) -> str:
        """Table 1-style side-by-side of a normal vs. anomalous signature."""
        all_lpids = sorted(normal | anomalous)
        name = self.stage_name(stage_id)
        rows = [f"Stage {name}: normal vs anomalous execution flow"]
        rows.append(f"{'Description of log statement':<60} {'Normal':<7} {'Anomalous'}")
        for lpid in all_lpids:
            point = self.logpoints.maybe_get(lpid)
            text = point.template if point else f"L{lpid}"
            in_normal = "x" if lpid in normal else ""
            in_anomalous = "x" if lpid in anomalous else ""
            rows.append(f"{text:<60} {in_normal:<7} {in_anomalous}")
        return "\n".join(rows)
