"""SAAD core: task execution tracking + the stage-aware statistical analyzer.

Typical use::

    from repro.core import SAAD, SAADConfig

    saad = SAAD(SAADConfig(window_s=180))
    node = saad.add_node("host1")              # or add_sim_node(name, env)
    stage = saad.stages.register("Memtable")
    lp = saad.logpoints.register("Applying mutation of row")

    node.set_context("Memtable")               # begin a task
    node.logger("Memtable").debug("Applying mutation of row", lpid=lp.lpid)
    node.end_task()                            # or rely on inference

    model = saad.train()                       # fault-free trace
    anomalies = saad.detect(new_synopses)
    print(saad.reporter().render(anomalies))
"""

from .columnar import (
    CompiledModel,
    CompiledStage,
    FrameColumns,
    compile_model,
    decode_columns,
)
from .config import SAADConfig
from .context import RealThreadContext, SimThreadContext, ThreadContextProvider
from .detector import FLOW, PERFORMANCE, AnomalyDetector, AnomalyEvent
from .features import (
    FeatureVector,
    Signature,
    StageKey,
    features_from,
    format_signature,
)
from .interning import (
    InternedSignature,
    SignatureIdSpace,
    canonical_tuple,
    clear_intern_table,
    intern_signature,
    intern_table_size,
)
from .logpoints import LogPoint, LogPointRegistry, RegistryDrift
from .model import OutlierModel, SignatureProfile, StageModel, TaskLabel
from .persistence import load_model, model_from_json, model_to_json, save_model
from .rules import ParsedRules, parse_rules, render_rules
from .pipeline import SAAD, NodeRuntime
from .report import AnomalyReporter
from .stages import Stage, StageRegistry
from .stats import (
    ProportionTest,
    kfold_splits,
    percentile,
    percentile_sorted,
    proportion_exceeds_test,
)
from .stream import SynopsisCollector, SynopsisStream
from .synopsis import (
    TaskSynopsis,
    decode_batch,
    decode_frame,
    decode_frames,
    encode_batch,
    encode_frame,
)
from .tracker import TaskExecutionTracker, TrackerStats

__all__ = [
    "AnomalyDetector",
    "AnomalyEvent",
    "AnomalyReporter",
    "CompiledModel",
    "CompiledStage",
    "FLOW",
    "FeatureVector",
    "FrameColumns",
    "InternedSignature",
    "ParsedRules",
    "LogPoint",
    "LogPointRegistry",
    "NodeRuntime",
    "OutlierModel",
    "PERFORMANCE",
    "ProportionTest",
    "RealThreadContext",
    "RegistryDrift",
    "SAAD",
    "SAADConfig",
    "Signature",
    "SignatureProfile",
    "SignatureIdSpace",
    "SimThreadContext",
    "Stage",
    "StageKey",
    "StageModel",
    "StageRegistry",
    "SynopsisCollector",
    "SynopsisStream",
    "TaskExecutionTracker",
    "TaskLabel",
    "TaskSynopsis",
    "ThreadContextProvider",
    "TrackerStats",
    "canonical_tuple",
    "clear_intern_table",
    "compile_model",
    "decode_batch",
    "decode_columns",
    "decode_frame",
    "decode_frames",
    "encode_batch",
    "encode_frame",
    "features_from",
    "format_signature",
    "intern_signature",
    "intern_table_size",
    "kfold_splits",
    "load_model",
    "model_from_json",
    "model_to_json",
    "parse_rules",
    "percentile",
    "percentile_sorted",
    "proportion_exceeds_test",
    "render_rules",
    "save_model",
]
