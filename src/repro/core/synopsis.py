"""Task synopses and their wire codec.

The synopsis is the paper's central data reduction: a few tens of bytes
summarizing an entire task execution.  Wire layout mirrors the struct in
Sec. 4.1::

    struct synopsis{
      byte  sid;        // stage id
      int   uid;        // unique id per task
      int   ts;         // task start time (ms)
      int   duration;   // task duration (us)
      struct { short lpid; int count; } log_points[];
    }

We prepend a host id byte and a log-point count byte so a single stream
can multiplex a cluster.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple

_HEADER = struct.Struct("<BBIIiB")  # host, sid, uid, ts_ms, duration_us, n_lps
_ENTRY = struct.Struct("<Hi")  # lpid, count

MAX_LOG_POINT_ENTRIES = 255


@dataclass
class TaskSynopsis:
    """Summary of one task execution, produced at task termination.

    Attributes
    ----------
    host_id:
        Small integer identifying the originating node.
    stage_id:
        The stage this task is an instance of.
    uid:
        Per-host unique task id.
    start_time:
        Task start, in seconds (the tracker's clock).
    duration:
        Seconds from task start to the last log point encountered.
    log_points:
        Mapping of log point id -> visit count.
    """

    host_id: int
    stage_id: int
    uid: int
    start_time: float
    duration: float
    log_points: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative duration {self.duration}")
        if self.host_id < 0 or self.host_id > 255:
            raise ValueError(f"host_id must fit a byte, got {self.host_id}")
        if self.stage_id < 0 or self.stage_id > 255:
            raise ValueError(f"stage_id must fit a byte, got {self.stage_id}")

    @property
    def signature(self) -> FrozenSet[int]:
        """The task signature: the *set* of distinct log points visited."""
        return frozenset(self.log_points)

    @property
    def total_log_calls(self) -> int:
        return sum(self.log_points.values())

    # -- codec ---------------------------------------------------------------
    def encode(self) -> bytes:
        """Binary wire form (little-endian, paper Sec. 4.1 layout)."""
        entries = sorted(self.log_points.items())
        if len(entries) > MAX_LOG_POINT_ENTRIES:
            raise ValueError(
                f"too many distinct log points ({len(entries)}) for one synopsis"
            )
        parts = [
            _HEADER.pack(
                self.host_id,
                self.stage_id,
                self.uid & 0xFFFFFFFF,
                int(self.start_time * 1000) & 0xFFFFFFFF,
                min(int(self.duration * 1_000_000), 2**31 - 1),
                len(entries),
            )
        ]
        for lpid, count in entries:
            if lpid < 0 or lpid > 0xFFFF:
                raise ValueError(f"log point id {lpid} does not fit a short")
            parts.append(_ENTRY.pack(lpid, min(count, 2**31 - 1)))
        return b"".join(parts)

    @classmethod
    def decode(cls, payload: bytes) -> "TaskSynopsis":
        """Inverse of :meth:`encode`."""
        synopsis, consumed = cls.decode_from(payload, 0)
        if consumed != len(payload):
            raise ValueError(
                f"trailing bytes after synopsis ({len(payload) - consumed})"
            )
        return synopsis

    @classmethod
    def decode_from(cls, payload: bytes, offset: int) -> Tuple["TaskSynopsis", int]:
        """Decode one synopsis starting at ``offset``; returns (synopsis, end)."""
        if len(payload) - offset < _HEADER.size:
            raise ValueError("truncated synopsis header")
        host_id, stage_id, uid, ts_ms, duration_us, n_entries = _HEADER.unpack_from(
            payload, offset
        )
        offset += _HEADER.size
        needed = n_entries * _ENTRY.size
        if len(payload) - offset < needed:
            raise ValueError("truncated synopsis log point entries")
        log_points: Dict[int, int] = {}
        for _ in range(n_entries):
            lpid, count = _ENTRY.unpack_from(payload, offset)
            offset += _ENTRY.size
            log_points[lpid] = count
        return (
            cls(
                host_id=host_id,
                stage_id=stage_id,
                uid=uid,
                start_time=ts_ms / 1000.0,
                duration=duration_us / 1_000_000.0,
                log_points=log_points,
            ),
            offset,
        )

    def encoded_size(self) -> int:
        """Wire size in bytes (the Fig. 8 "synopses" volume metric)."""
        return _HEADER.size + _ENTRY.size * len(self.log_points)


def encode_batch(synopses: Iterable[TaskSynopsis]) -> bytes:
    """Concatenate the wire forms of many synopses."""
    return b"".join(s.encode() for s in synopses)


def decode_batch(payload: bytes) -> List[TaskSynopsis]:
    """Decode a concatenated batch produced by :func:`encode_batch`."""
    out: List[TaskSynopsis] = []
    offset = 0
    while offset < len(payload):
        synopsis, offset = TaskSynopsis.decode_from(payload, offset)
        out.append(synopsis)
    return out
