"""Task synopses and their wire codec.

The synopsis is the paper's central data reduction: a few tens of bytes
summarizing an entire task execution.  Wire layout mirrors the struct in
Sec. 4.1 (with the timestamp widened to 64 bits so real wall-clock epochs
round-trip exactly instead of silently truncating)::

    struct synopsis{
      byte  sid;        // stage id
      int   uid;        // unique id per task
      long  ts;         // task start time (ms)
      int   duration;   // task duration (us)
      struct { short lpid; int count; } log_points[];
    }

We prepend a host id byte and a log-point count byte so a single stream
can multiplex a cluster.  For transport, synopses are grouped into
length-prefixed *frames* (:func:`encode_frame` / :func:`decode_frame`)
so a batch can be shipped and validated in one shot.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional, Tuple

from .interning import intern_signature
from .interning import InternedSignature as _InternedSignature

_HEADER = struct.Struct("<BBIQiB")  # host, sid, uid, ts_ms, duration_us, n_lps
_ENTRY = struct.Struct("<Hi")  # lpid, count

MAX_LOG_POINT_ENTRIES = 255
MAX_UID = 0xFFFFFFFF
MAX_TS_MS = 0xFFFFFFFFFFFFFFFF
_MAX_COUNT = 2**31 - 1

# Entry arrays are packed/unpacked in one struct call per synopsis rather
# than one per entry; the per-length Struct objects are cached here.
_ENTRY_ARRAYS: Dict[int, struct.Struct] = {}


def _entry_array(n: int) -> struct.Struct:
    cached = _ENTRY_ARRAYS.get(n)
    if cached is None:
        cached = _ENTRY_ARRAYS.setdefault(n, struct.Struct("<" + "Hi" * n))
    return cached


#: Public aliases of the packed layouts for zero-copy consumers: the
#: sharded analyzer routes synopses between workers by scanning these
#: fields straight out of frame bytes, and the detector's wire ingest
#: path classifies without materializing :class:`TaskSynopsis` objects.
SYNOPSIS_HEADER = _HEADER
SYNOPSIS_ENTRY = _ENTRY


def entry_struct(n: int) -> struct.Struct:
    """The cached packed layout of ``n`` consecutive log-point entries."""
    return _entry_array(n)


@dataclass(slots=True)
class TaskSynopsis:
    """Summary of one task execution, produced at task termination.

    Attributes
    ----------
    host_id:
        Small integer identifying the originating node.
    stage_id:
        The stage this task is an instance of.
    uid:
        Per-host unique task id.
    start_time:
        Task start, in seconds (the tracker's clock).
    duration:
        Seconds from task start to the last log point encountered.
    log_points:
        Mapping of log point id -> visit count.
    """

    host_id: int
    stage_id: int
    uid: int
    start_time: float
    duration: float
    log_points: Dict[int, int] = field(default_factory=dict)
    _signature: Optional[_InternedSignature] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative duration {self.duration}")
        if self.host_id < 0 or self.host_id > 255:
            raise ValueError(f"host_id must fit a byte, got {self.host_id}")
        if self.stage_id < 0 or self.stage_id > 255:
            raise ValueError(f"stage_id must fit a byte, got {self.stage_id}")

    @property
    def signature(self) -> _InternedSignature:
        """The task signature: the *set* of distinct log points visited.

        Interned and cached — every synopsis with the same log-point set
        returns the same shared frozenset object.
        """
        signature = self._signature
        if signature is None:
            signature = intern_signature(self.log_points)
            self._signature = signature
        return signature

    @property
    def total_log_calls(self) -> int:
        """Total log-point visits recorded in this task."""
        return sum(self.log_points.values())

    # -- codec ---------------------------------------------------------------
    def encode(self) -> bytes:
        """Binary wire form (little-endian, paper Sec. 4.1 layout)."""
        entries = sorted(self.log_points.items())
        n = len(entries)
        if n > MAX_LOG_POINT_ENTRIES:
            raise ValueError(
                f"too many distinct log points ({n}) for one synopsis"
            )
        if self.uid < 0 or self.uid > MAX_UID:
            raise ValueError(f"uid {self.uid} does not fit the 32-bit wire field")
        ts_ms = int(self.start_time * 1000)
        if ts_ms < 0 or ts_ms > MAX_TS_MS:
            raise ValueError(
                f"start_time {self.start_time} does not fit the 64-bit wire field"
            )
        if n and (entries[0][0] < 0 or entries[-1][0] > 0xFFFF):
            bad = entries[0][0] if entries[0][0] < 0 else entries[-1][0]
            raise ValueError(f"log point id {bad} does not fit a short")
        header = _HEADER.pack(
            self.host_id,
            self.stage_id,
            self.uid,
            ts_ms,
            min(int(self.duration * 1_000_000), _MAX_COUNT),
            n,
        )
        if not n:
            return header
        flat: List[int] = []
        for lpid, count in entries:
            flat.append(lpid)
            flat.append(count if count <= _MAX_COUNT else _MAX_COUNT)
        return header + _entry_array(n).pack(*flat)

    @classmethod
    def decode(cls, payload: bytes) -> "TaskSynopsis":
        """Inverse of :meth:`encode`."""
        synopsis, consumed = cls.decode_from(payload, 0)
        if consumed != len(payload):
            raise ValueError(
                f"trailing bytes after synopsis ({len(payload) - consumed})"
            )
        return synopsis

    @classmethod
    def decode_from(cls, payload: bytes, offset: int) -> Tuple["TaskSynopsis", int]:
        """Decode one synopsis starting at ``offset``; returns (synopsis, end)."""
        if len(payload) - offset < _HEADER.size:
            raise ValueError("truncated synopsis header")
        host_id, stage_id, uid, ts_ms, duration_us, n_entries = _HEADER.unpack_from(
            payload, offset
        )
        offset += _HEADER.size
        needed = n_entries * _ENTRY.size
        if len(payload) - offset < needed:
            raise ValueError("truncated synopsis log point entries")
        if n_entries:
            flat = _entry_array(n_entries).unpack_from(payload, offset)
            offset += needed
            log_points = dict(zip(islice(flat, 0, None, 2), islice(flat, 1, None, 2)))
        else:
            log_points = {}
        return (
            cls(
                host_id=host_id,
                stage_id=stage_id,
                uid=uid,
                start_time=ts_ms / 1000.0,
                duration=duration_us / 1_000_000.0,
                log_points=log_points,
            ),
            offset,
        )

    def encoded_size(self) -> int:
        """Wire size in bytes (the Fig. 8 "synopses" volume metric)."""
        return _HEADER.size + _ENTRY.size * len(self.log_points)


def encode_batch(synopses: Iterable[TaskSynopsis]) -> bytes:
    """Concatenate the wire forms of many synopses."""
    return b"".join(s.encode() for s in synopses)


def decode_batch(payload: bytes) -> List[TaskSynopsis]:
    """Decode a concatenated batch produced by :func:`encode_batch`."""
    out: List[TaskSynopsis] = []
    offset = 0
    while offset < len(payload):
        synopsis, offset = TaskSynopsis.decode_from(payload, offset)
        out.append(synopsis)
    return out


# -- framed transport ---------------------------------------------------------
#: Frame layout: payload byte length (u32) + synopsis count (u16) + payload.
FRAME_HEADER = struct.Struct("<IH")
MAX_FRAME_SYNOPSES = 0xFFFF


def encode_frame(synopses: List[TaskSynopsis]) -> bytes:
    """One length-prefixed frame holding a whole batch of synopses."""
    if len(synopses) > MAX_FRAME_SYNOPSES:
        raise ValueError(f"too many synopses for one frame ({len(synopses)})")
    payload = encode_batch(synopses)
    return FRAME_HEADER.pack(len(payload), len(synopses)) + payload


def decode_frame(payload: bytes, offset: int = 0) -> Tuple[List[TaskSynopsis], int]:
    """Decode one frame starting at ``offset``; returns (synopses, end)."""
    if len(payload) - offset < FRAME_HEADER.size:
        raise ValueError("truncated frame header")
    length, count = FRAME_HEADER.unpack_from(payload, offset)
    offset += FRAME_HEADER.size
    if len(payload) - offset < length:
        raise ValueError("truncated frame payload")
    synopses = decode_batch(payload[offset : offset + length])
    if len(synopses) != count:
        raise ValueError(
            f"frame count mismatch: header says {count}, payload holds {len(synopses)}"
        )
    return synopses, offset + length


def decode_frames(payload: bytes) -> List[TaskSynopsis]:
    """Decode a back-to-back sequence of frames."""
    out: List[TaskSynopsis] = []
    offset = 0
    while offset < len(payload):
        synopses, offset = decode_frame(payload, offset)
        out.extend(synopses)
    return out
