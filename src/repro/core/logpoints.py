"""Log points and the log template dictionary.

During the paper's static pre-processing pass, every log statement in the
server source gets a unique identifier and its static text is recorded in
a *log template dictionary*.  At runtime only the identifier travels; the
dictionary is consulted again only when presenting anomalies to a human.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.loglib.levels import INFO, level_name, parse_level


@dataclass(frozen=True)
class LogPoint:
    """One log statement in the source, with its assigned identifier."""

    lpid: int
    template: str
    level: int = INFO
    logger_name: str = ""
    source_file: str = ""
    line: int = 0

    def describe(self) -> str:
        """One-line human description used in anomaly reports."""
        location = f" ({self.source_file}:{self.line})" if self.source_file else ""
        return f"L{self.lpid} [{level_name(self.level)}] {self.template}{location}"


@dataclass(frozen=True)
class RegistryDrift:
    """Disagreement between a source scan and a persisted registry.

    ``missing`` templates exist in the source but not the registry (the
    dictionary is out of date); ``stale`` templates exist only in the
    registry (the source moved on).  Either direction silently corrupts
    reverse-mapping in anomaly reports, so saadlint's LP004 treats both
    as errors.
    """

    missing: Tuple[str, ...] = ()
    stale: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """True when the scan found no missing or stale templates."""
        return not self.missing and not self.stale


class LogPointRegistry:
    """The log template dictionary: assigns and resolves log point ids.

    Ids are assigned densely from 0 in registration order, which makes
    registration order part of the instrumentation contract — the same
    source scan always yields the same ids.
    """

    def __init__(self) -> None:
        self._by_id: List[LogPoint] = []
        self._by_key: Dict[tuple, LogPoint] = {}

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[LogPoint]:
        return iter(self._by_id)

    def register(
        self,
        template: str,
        level: int = INFO,
        logger_name: str = "",
        source_file: str = "",
        line: int = 0,
    ) -> LogPoint:
        """Register a log statement; idempotent on (template, logger, file, line)."""
        key = (template, logger_name, source_file, line)
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        point = LogPoint(
            lpid=len(self._by_id),
            template=template,
            level=level,
            logger_name=logger_name,
            source_file=source_file,
            line=line,
        )
        self._by_id.append(point)
        self._by_key[key] = point
        return point

    def get(self, lpid: int) -> LogPoint:
        """The log point with id ``lpid``; raises KeyError when unknown."""
        if 0 <= lpid < len(self._by_id):
            return self._by_id[lpid]
        raise KeyError(f"unknown log point id {lpid}")

    def maybe_get(self, lpid: int) -> Optional[LogPoint]:
        """The log point with id ``lpid``, or None when out of range."""
        if 0 <= lpid < len(self._by_id):
            return self._by_id[lpid]
        return None

    def templates(self) -> List[str]:
        """Every registered template, in log-point-id order."""
        return [p.template for p in self._by_id]

    def drift(self, scanned_templates: Iterable[str]) -> RegistryDrift:
        """Compare this (persisted) dictionary against a fresh source scan.

        Returns the templates the scan found that this registry lacks
        (``missing``) and the templates only this registry still carries
        (``stale``).  An empty drift means ids resolve against current
        source text.
        """
        scanned = set(scanned_templates)
        known = set(self.templates())
        return RegistryDrift(
            missing=tuple(sorted(scanned - known)),
            stale=tuple(sorted(known - scanned)),
        )

    # -- persistence -----------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the dictionary (for shipping to the analyzer side)."""
        return json.dumps(
            [
                {
                    "lpid": p.lpid,
                    "template": p.template,
                    "level": level_name(p.level),
                    "logger_name": p.logger_name,
                    "source_file": p.source_file,
                    "line": p.line,
                }
                for p in self._by_id
            ]
        )

    @classmethod
    def from_json(cls, payload: str) -> "LogPointRegistry":
        """Rebuild a registry from :meth:`to_json` output (lpid order kept)."""
        registry = cls()
        entries = json.loads(payload)
        for entry in sorted(entries, key=lambda e: e["lpid"]):
            point = registry.register(
                template=entry["template"],
                level=parse_level(entry["level"]),
                logger_name=entry.get("logger_name", ""),
                source_file=entry.get("source_file", ""),
                line=entry.get("line", 0),
            )
            if point.lpid != entry["lpid"]:
                raise ValueError(
                    f"non-dense log point ids in payload (expected {point.lpid}, "
                    f"got {entry['lpid']})"
                )
        return registry
