"""Per-thread task-context providers.

The tracker keeps each in-flight task's state in *thread-local storage*
(paper Sec. 4.1).  What "the current thread" means differs between a real
Python program and our discrete-event simulations, so the tracker talks to
a small provider interface:

* :class:`RealThreadContext` — backed by :mod:`threading` locals; used when
  SAAD instruments an actual Python application.
* :class:`SimThreadContext` — backed by the simulation environment's active
  :class:`~repro.simsys.threads.SimThread`; supports exit hooks, which model
  Java's ``finalize()``-based task-termination inference for the
  dispatcher-worker staging model.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional


class ThreadContextProvider:
    """Interface the tracker uses to reach per-thread storage."""

    def slot(self) -> Optional[Dict[str, Any]]:
        """Mutable per-thread dict, or None when no thread context exists."""
        raise NotImplementedError

    def thread_name(self) -> str:
        """Display name of the current thread."""
        raise NotImplementedError

    def register_exit_hook(self, hook: Callable[[], None]) -> bool:
        """Ask to run ``hook`` when the current thread dies.

        Returns False when the platform cannot observe thread death (the
        tracker then relies on ``set_context`` re-entry or explicit
        ``end_task``).
        """
        return False


class RealThreadContext(ThreadContextProvider):
    """Thread-local storage on real Python threads."""

    def __init__(self) -> None:
        self._local = threading.local()

    def slot(self) -> Dict[str, Any]:
        """This thread's private dict (created on first access)."""
        store = getattr(self._local, "store", None)
        if store is None:
            store = {}
            self._local.store = store
        return store

    def thread_name(self) -> str:
        """Name of the current OS thread."""
        return threading.current_thread().name


class SimThreadContext(ThreadContextProvider):
    """Thread-local storage on simulated threads.

    Log calls made outside any simulated thread (e.g. module-level driver
    code) fall into a shared fallback slot so they are tolerated but not
    attributed to a task.
    """

    def __init__(self, env) -> None:
        self.env = env
        self._fallback: Dict[str, Any] = {}

    def slot(self) -> Dict[str, Any]:
        """The active simulated thread's locals (main-thread fallback)."""
        thread = self.env.active_thread
        return thread.locals if thread is not None else self._fallback

    def thread_name(self) -> str:
        """Name of the active simulated thread (or "main")."""
        thread = self.env.active_thread
        return thread.name if thread is not None else "main"

    def register_exit_hook(self, hook: Callable[[], None]) -> bool:
        """Attach ``hook`` to the active simulated thread's death."""
        thread = self.env.active_thread
        if thread is None:
            return False
        thread.exit_hooks.append(lambda _thread: hook())
        return True
