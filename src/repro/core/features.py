"""Feature creation (paper Sec. 3.3.1).

From each task synopsis the analyzer derives the feature vector
``<id, stage, signature, duration>``:

* **signature** — the set of distinct log points the task encountered;
  the slightest difference means the task executed different code.
* **duration** — seconds from task start to its last log point; the
  performance feature.

Signatures are interned (see :mod:`repro.core.interning`): vectorizing a
million tasks that executed the same code path yields a million feature
vectors sharing *one* frozenset object, so every downstream dict lookup
hits a cached hash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from .interning import canonical_tuple
from .synopsis import TaskSynopsis

Signature = FrozenSet[int]
#: Stage key used throughout the analyzer: (host_id, stage_id).  The paper
#: trains and tests per host; set host_id to 0 everywhere for a pooled model.
StageKey = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class FeatureVector:
    """The analyzer-side view of one task."""

    uid: int
    host_id: int
    stage_id: int
    signature: Signature
    duration: float
    start_time: float

    @property
    def stage_key(self) -> StageKey:
        """(host_id, stage_id) grouping key for per-host analysis."""
        return (self.host_id, self.stage_id)

    @classmethod
    def from_synopsis(cls, synopsis: TaskSynopsis) -> "FeatureVector":
        """Vectorize one task synopsis (signature interned by the tracker)."""
        return cls(
            uid=synopsis.uid,
            host_id=synopsis.host_id,
            stage_id=synopsis.stage_id,
            signature=synopsis.signature,
            duration=synopsis.duration,
            start_time=synopsis.start_time,
        )


def features_from(synopses: Iterable[TaskSynopsis]) -> List[FeatureVector]:
    """Vectorize a batch of synopses."""
    return [FeatureVector.from_synopsis(s) for s in synopses]


def format_signature(signature: Signature) -> str:
    """Stable human-readable form, e.g. ``{L1,L2,L4,L5}``."""
    return "{" + ",".join(f"L{lpid}" for lpid in canonical_tuple(signature)) + "}"
