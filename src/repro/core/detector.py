"""Online anomaly detection over the synopsis stream (paper Sec. 3.3.3).

The detector buckets classified tasks into fixed time windows per stage
key.  When a window closes (event time passes its end) it runs:

* **Flow anomaly test** — reject H0 "proportion of flow outliers <= the
  training proportion" at ``alpha``; *or* any never-seen signature.
* **Performance anomaly test** — per (stage, signature) group, reject H0
  "proportion of performance outliers <= the training proportion".

Emitted :class:`AnomalyEvent` objects carry everything the reporting
layer needs to render a human-readable root-cause hint.

Hot-path notes: open windows are indexed by a min-heap of window indices,
so each ``observe`` peeks at the earliest deadline instead of scanning
every open bucket (closing is O(ripe · log open) amortized); per-(stage,
signature) performance baselines are memoized because the model is frozen
for the detector's lifetime.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .config import SAADConfig
from .features import FeatureVector, Signature, StageKey
from .interning import canonical_tuple
from .model import OutlierModel
from .stats import ProportionTest, proportion_exceeds_test
from .synopsis import TaskSynopsis

FLOW = "flow"
PERFORMANCE = "performance"


@dataclass(frozen=True)
class AnomalyEvent:
    """One detected anomaly for one stage in one window."""

    kind: str  # FLOW or PERFORMANCE
    host_id: int
    stage_id: int
    window_start: float
    window_end: float
    outliers: int
    n: int
    baseline: float
    p_value: float
    new_signatures: Tuple[Signature, ...] = ()
    offending_signatures: Tuple[Signature, ...] = ()

    @property
    def stage_key(self) -> StageKey:
        return (self.host_id, self.stage_id)


@dataclass
class _WindowBucket:
    """Accumulator for one (stage key, window index)."""

    n: int = 0
    flow_outliers: int = 0
    new_signatures: Set[Signature] = field(default_factory=set)
    # signature -> [perf outliers, eligible task count]
    perf: Dict[Signature, List[int]] = field(default_factory=dict)


class AnomalyDetector:
    """Streaming detector; feed :meth:`observe`, call :meth:`flush` at end.

    Windows are closed by *event time*: when a task with
    ``start_time >= window_end + lateness`` arrives for any stage, all
    windows ending earlier are finalized.  ``flush()`` closes the rest.
    """

    def __init__(
        self,
        model: OutlierModel,
        config: Optional[SAADConfig] = None,
        lateness_s: float = 0.0,
    ):
        self.model = model
        self.config = config or model.config
        self.lateness_s = lateness_s
        self._buckets: Dict[Tuple[StageKey, int], _WindowBucket] = {}
        # Ripeness index: min-heap of open window indices plus, per index,
        # the stage keys opened in arrival order (for deterministic close
        # order matching the insertion-ordered scan it replaces).
        self._index_heap: List[int] = []
        self._index_keys: Dict[int, List[StageKey]] = {}
        self._watermark = float("-inf")
        self.anomalies: List[AnomalyEvent] = []
        self.tasks_seen = 0
        #: Buckets examined for ripeness so far — the old implementation
        #: visited every open bucket on every observe; the heap visits
        #: one per peek.  Exposed for tests/benchmarks.
        self.bucket_probe_count = 0
        #: Windows finalized so far (ripe closes + flush).
        self.windows_closed = 0
        # (stage_key, signature) -> baseline proportion for the perf test.
        self._perf_baselines: Dict[Tuple[StageKey, Signature], float] = {}

    # -- ingestion -----------------------------------------------------------
    def observe(self, synopsis: TaskSynopsis) -> List[AnomalyEvent]:
        """Ingest one synopsis; returns anomalies from any closed windows.

        Fast path: classifies straight from the synopsis fields without
        materializing a :class:`FeatureVector`.
        """
        stage_key = (
            (synopsis.host_id, synopsis.stage_id)
            if self.model.config.per_host
            else (0, synopsis.stage_id)
        )
        return self._observe(
            stage_key, synopsis.signature, synopsis.duration, synopsis.start_time
        )

    def observe_feature(self, feature: FeatureVector) -> List[AnomalyEvent]:
        return self._observe(
            self.model.stage_key_for(feature),
            feature.signature,
            feature.duration,
            feature.start_time,
        )

    def _observe(
        self,
        stage_key: StageKey,
        signature: Signature,
        duration: float,
        start_time: float,
    ) -> List[AnomalyEvent]:
        self.tasks_seen += 1
        label = self.model.classify_parts(stage_key, signature, duration)
        index = int(start_time // self.config.window_s)
        bucket_key = (stage_key, index)
        bucket = self._buckets.get(bucket_key)
        if bucket is None:
            bucket = self._buckets[bucket_key] = _WindowBucket()
            keys = self._index_keys.get(index)
            if keys is None:
                self._index_keys[index] = [stage_key]
                heapq.heappush(self._index_heap, index)
            else:
                keys.append(stage_key)
        bucket.n += 1
        if label.any_flow:
            bucket.flow_outliers += 1
        if label.new_signature:
            bucket.new_signatures.add(signature)
        if label.perf_eligible:
            counts = bucket.perf.get(signature)
            if counts is None:
                counts = bucket.perf[signature] = [0, 0]
            counts[1] += 1
            if label.perf_outlier:
                counts[0] += 1
        if start_time > self._watermark:
            self._watermark = start_time
        return self._close_ripe_windows()

    def flush(self) -> List[AnomalyEvent]:
        """Close every open window (end of stream)."""
        emitted: List[AnomalyEvent] = []
        for index in sorted(self._index_keys):
            for stage_key in self._index_keys[index]:
                emitted.extend(self._close_window((stage_key, index)))
        self._buckets.clear()
        self._index_keys.clear()
        self._index_heap.clear()
        return emitted

    # -- window lifecycle -------------------------------------------------------
    def _close_ripe_windows(self) -> List[AnomalyEvent]:
        heap = self._index_heap
        if not heap:
            return []
        width = self.config.window_s
        horizon = self._watermark - self.lateness_s
        self.bucket_probe_count += 1
        if (heap[0] + 1) * width > horizon:
            return []  # earliest open window is not ripe — nothing to scan
        emitted: List[AnomalyEvent] = []
        while heap and (heap[0] + 1) * width <= horizon:
            index = heapq.heappop(heap)
            self.bucket_probe_count += 1
            for stage_key in self._index_keys.pop(index):
                key = (stage_key, index)
                emitted.extend(self._close_window(key))
                del self._buckets[key]
        return emitted

    def _close_window(self, key: Tuple[StageKey, int]) -> List[AnomalyEvent]:
        self.windows_closed += 1
        stage_key, index = key
        bucket = self._buckets[key]
        width = self.config.window_s
        window_start, window_end = index * width, (index + 1) * width
        events: List[AnomalyEvent] = []
        stage_model = self.model.stage_model(stage_key)
        host_id, stage_id = stage_key
        flow_baseline = stage_model.flow_outlier_share if stage_model else 0.0

        if bucket.n < self.config.min_window_tasks:
            # Too few tasks for proportion tests — but a *new* signature
            # is a flow anomaly regardless of volume (paper Sec. 3.3.3:
            # "we observe a new signature that we have not seen during
            # training").
            if bucket.new_signatures:
                events.append(
                    AnomalyEvent(
                        kind=FLOW,
                        host_id=host_id,
                        stage_id=stage_id,
                        window_start=window_start,
                        window_end=window_end,
                        outliers=bucket.flow_outliers,
                        n=bucket.n,
                        baseline=flow_baseline,
                        p_value=0.0,
                        new_signatures=tuple(
                            sorted(bucket.new_signatures, key=canonical_tuple)
                        ),
                    )
                )
                self.anomalies.extend(events)
            return events

        flow_test = proportion_exceeds_test(
            bucket.flow_outliers, bucket.n, flow_baseline, self.config.alpha
        )
        if flow_test.reject or bucket.new_signatures:
            events.append(
                AnomalyEvent(
                    kind=FLOW,
                    host_id=host_id,
                    stage_id=stage_id,
                    window_start=window_start,
                    window_end=window_end,
                    outliers=bucket.flow_outliers,
                    n=bucket.n,
                    baseline=flow_baseline,
                    p_value=flow_test.p_value if flow_test.reject else 0.0,
                    new_signatures=tuple(
                        sorted(bucket.new_signatures, key=canonical_tuple)
                    ),
                )
            )

        offending: List[Signature] = []
        worst: Optional[ProportionTest] = None
        for signature, (outliers, eligible) in bucket.perf.items():
            if eligible < self.config.min_window_tasks:
                continue
            baseline = self._perf_baseline(stage_key, stage_model, signature)
            test = proportion_exceeds_test(
                outliers, eligible, baseline, self.config.alpha
            )
            if test.reject:
                offending.append(signature)
                if worst is None or test.p_value < worst.p_value:
                    worst = test
        if offending and worst is not None:
            total_eligible = sum(counts[1] for counts in bucket.perf.values())
            total_outliers = sum(counts[0] for counts in bucket.perf.values())
            events.append(
                AnomalyEvent(
                    kind=PERFORMANCE,
                    host_id=host_id,
                    stage_id=stage_id,
                    window_start=window_start,
                    window_end=window_end,
                    outliers=total_outliers,
                    n=total_eligible,
                    baseline=worst.baseline,
                    p_value=worst.p_value,
                    offending_signatures=tuple(sorted(offending, key=canonical_tuple)),
                )
            )
        self.anomalies.extend(events)
        return events

    def _perf_baseline(
        self, stage_key: StageKey, stage_model, signature: Signature
    ) -> float:
        """Memoized ``max(1 - q, trained outlier share)`` for one group."""
        memo_key = (stage_key, signature)
        baseline = self._perf_baselines.get(memo_key)
        if baseline is None:
            baseline = 1.0 - self.config.duration_percentile
            if stage_model is not None:
                profile = stage_model.signatures.get(signature)
                if profile is not None:
                    baseline = max(baseline, profile.perf_outlier_share)
            self._perf_baselines[memo_key] = baseline
        return baseline
