"""Online anomaly detection over the synopsis stream (paper Sec. 3.3.3).

The detector buckets classified tasks into fixed time windows per stage
key.  When a window closes (event time passes its end) it runs:

* **Flow anomaly test** — reject H0 "proportion of flow outliers <= the
  training proportion" at ``alpha``; *or* any never-seen signature.
* **Performance anomaly test** — per (stage, signature) group, reject H0
  "proportion of performance outliers <= the training proportion".

Emitted :class:`AnomalyEvent` objects carry everything the reporting
layer needs to render a human-readable root-cause hint.

Hot-path notes: open windows are indexed by a min-heap of window indices,
so each ``observe`` peeks at the earliest deadline instead of scanning
every open bucket (closing is O(ripe · log open) amortized); per-(stage,
signature) performance baselines are memoized because the model is frozen
for the detector's lifetime.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.telemetry import MetricsRegistry

from . import columnar
from .config import SAADConfig
from .features import FeatureVector, Signature, StageKey
from .interning import SignatureIdSpace, canonical_tuple, intern_signature
from .model import OutlierModel
from .stats import ProportionTest, proportion_exceeds_test
from .synopsis import (
    FRAME_HEADER,
    SYNOPSIS_HEADER,
    SYNOPSIS_ENTRY,
    TaskSynopsis,
    entry_struct,
)

FLOW = "flow"
PERFORMANCE = "performance"

#: Bound on the wire-ingest signature cache (raw entry bytes -> interned
#: signature).  Real streams repeat a handful of shapes per stage; the
#: cap only matters for adversarial inputs, where the cache resets.
_WIRE_SIGNATURE_CACHE_MAX = 1 << 16

#: Records per vectorized slice of the batch detect path.  Bounds the
#: working set of the gathered columns (~1 MiB of int64 per column).
_BATCH_CHUNK = 1 << 16

#: Window-close triggers tolerated per chunk before the remainder of the
#: chunk degrades to the per-record path.  Each trigger rescans the
#: chunk's tail, so an adversarial close-every-task stream would
#: otherwise make the scan quadratic; real streams close a handful of
#: windows per chunk.
_BATCH_MAX_TRIGGERS = 64

#: Timestamps at/above 2**53 ms lose integer precision as float64; the
#: batch path hands such records to the exact per-record path.
_BATCH_TS_LIMIT = 1 << 53

#: Window indices must leave room for the packed (index, stage, sig-id,
#: verdict-bit) count keys to fit a signed 64-bit lane.
_BATCH_INDEX_LIMIT = 1 << 28


class _WireTask:
    """Minimal task handle the wire ingest path hands to exemplar tracking.

    Only the ``(host_id, uid)`` trace key is needed there, so the fused
    loop avoids building a full :class:`TaskSynopsis` when tracing is on.
    """

    __slots__ = ("host_id", "uid")

    def __init__(self, host_id: int, uid: int):
        self.host_id = host_id
        self.uid = uid


@dataclass(frozen=True)
class AnomalyEvent:
    """One detected anomaly for one stage in one window.

    ``exemplars`` carries up to K pinned :class:`~repro.tracing.
    TaskTrace` objects — concrete evidence for the verdict (new-signature
    tasks first, then the window's slowest) — when the deployment runs
    with tracing enabled; empty otherwise.  Excluded from equality so
    events compare on the verdict itself.
    """

    kind: str  # FLOW or PERFORMANCE
    host_id: int
    stage_id: int
    window_start: float
    window_end: float
    outliers: int
    n: int
    baseline: float
    p_value: float
    new_signatures: Tuple[Signature, ...] = ()
    offending_signatures: Tuple[Signature, ...] = ()
    exemplars: Tuple = field(default=(), compare=False)

    @property
    def stage_key(self) -> StageKey:
        """(host_id, stage_id) key of the stage this event belongs to."""
        return (self.host_id, self.stage_id)


@dataclass
class _WindowBucket:
    """Accumulator for one (stage key, window index)."""

    n: int = 0
    flow_outliers: int = 0
    new_signatures: Set[Signature] = field(default_factory=set)
    # signature -> [perf outliers, eligible task count]
    perf: Dict[Signature, List[int]] = field(default_factory=dict)
    # Exemplar candidates, tracked only when tracing is on:
    # trace keys of new-signature tasks (first K, arrival order) ...
    new_sig_keys: List[Tuple[int, int]] = field(default_factory=list)
    # ... and a min-heap of (duration, trace key) for the K slowest.
    slow: List[Tuple[float, Tuple[int, int]]] = field(default_factory=list)


class AnomalyDetector:
    """Streaming detector; feed :meth:`observe`, call :meth:`flush` at end.

    Windows are closed by *event time*: when a task with
    ``start_time >= window_end + lateness`` arrives for any stage, all
    windows ending earlier are finalized.  ``flush()`` closes the rest.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.model.OutlierModel`; frozen for
        the detector's lifetime (baselines are memoized off it).
    config:
        Analyzer configuration; defaults to the model's own.
    lateness_s:
        Allowed event-time lateness before a window is considered ripe.
    registry:
        Telemetry registry for the ``detector_*`` metrics; defaults to
        a private :class:`~repro.telemetry.MetricsRegistry`, or pass a
        :class:`~repro.telemetry.NullRegistry` to disable (the
        benchmark's unmetered leg).
    tracer:
        The deployment's :class:`~repro.tracing.Tracer`; when enabled,
        each anomalous window pins up to ``exemplars_per_window``
        buffered traces and attaches them to the emitted events.
        Defaults to the inert :data:`~repro.tracing.NULL_TRACER`.
    exemplars_per_window:
        Cap on exemplar traces per flagged window (new-signature tasks
        first, then slowest).
    on_event:
        Optional callback invoked with each emitted
        :class:`AnomalyEvent` (after exemplar attachment), on the
        thread that closed the window.  The facade uses it to correlate
        anomalies with health incidents
        (:meth:`~repro.health.HealthEngine.note_anomaly`); a raising
        callback propagates to the caller.

    Telemetry: the per-task path mutates plain private ints exposed via
    callback-backed counters (``detector_tasks_observed``,
    ``detector_bucket_probes``); the rare window-lifecycle path uses real
    locked metrics — ``detector_windows_opened`` / ``_closed{stage}`` /
    the ``detector_windows_open`` gauge, the ``detector_close_lag_seconds``
    histogram, ``detector_anomalies{kind}``, ``detector_new_signatures``.
    """

    def __init__(
        self,
        model: OutlierModel,
        config: Optional[SAADConfig] = None,
        lateness_s: float = 0.0,
        registry=None,
        tracer=None,
        exemplars_per_window: int = 3,
        on_event: Optional[Callable[["AnomalyEvent"], None]] = None,
    ):
        self.model = model
        self.config = config or model.config
        self.lateness_s = lateness_s
        if tracer is None:
            from repro.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self._tracing = bool(tracer.enabled)
        if exemplars_per_window < 0:
            raise ValueError(f"exemplars_per_window must be >= 0: {exemplars_per_window}")
        self.exemplars_per_window = exemplars_per_window
        self._on_event = on_event
        self._buckets: Dict[Tuple[StageKey, int], _WindowBucket] = {}
        # Ripeness index: min-heap of open window indices plus, per index,
        # the stage keys opened in arrival order (for deterministic close
        # order matching the insertion-ordered scan it replaces).
        self._index_heap: List[int] = []
        self._index_keys: Dict[int, List[StageKey]] = {}
        self._watermark = float("-inf")
        self.anomalies: List[AnomalyEvent] = []
        self._tasks_seen = 0
        self._bucket_probe_count = 0
        self._windows_closed = 0
        # (stage_key, signature) -> baseline proportion for the perf test.
        self._perf_baselines: Dict[Tuple[StageKey, Signature], float] = {}
        # Wire ingest path: raw entry bytes -> interned signature.
        self._wire_signatures: Dict[bytes, Signature] = {}
        # Columnar batch path: compiled verdict tables plus the dense
        # signature-id space they are indexed by.  The space outlives
        # recompiles (it is append-only), so ids stay stable across model
        # generations while stale tables are rebuilt lazily.
        self._compiled: Optional[columnar.CompiledModel] = None
        self._sig_space: Optional[SignatureIdSpace] = None
        self._columnar_tasks = 0
        self._columnar_fallback_tasks = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        self._register_metrics()

    def _register_metrics(self) -> None:
        registry = self.registry
        registry.counter(
            "detector_tasks_observed", "synopses/features classified"
        ).set_function(lambda: self._tasks_seen)
        registry.counter(
            "detector_bucket_probes", "ripeness-index probes (heap peeks/pops)"
        ).set_function(lambda: self._bucket_probe_count)
        registry.counter(
            "columnar_tasks", "synopses ingested through the batch detect path"
        ).set_function(lambda: self._columnar_tasks)
        registry.counter(
            "columnar_fallback_tasks",
            "batch-path synopses that degraded to the exact per-task path",
        ).set_function(lambda: self._columnar_fallback_tasks)
        self._m_columnar_batches = registry.counter(
            "columnar_batches", "observe_batch calls ingested"
        )
        self._m_windows_opened = registry.counter(
            "detector_windows_opened", "window buckets opened"
        )
        self._m_windows_open = registry.gauge(
            "detector_windows_open", "window buckets currently open"
        )
        self._m_windows_closed = registry.counter(
            "detector_windows_closed",
            "windows finalized (ripe closes + flush)",
            labels=("stage",),
        )
        # Per-stage children resolved once, then cached: _close_window
        # runs per window, but labels() takes the family lock.
        self._m_closed_by_stage: Dict[int, object] = {}
        self._m_close_lag = registry.histogram(
            "detector_close_lag_seconds",
            "event-time lag between a closed window's end and the watermark",
        )
        self._m_anomalies = registry.counter(
            "detector_anomalies", "anomaly events emitted", labels=("kind",)
        )
        self._m_anomalies_flow = self._m_anomalies.labels(kind=FLOW)
        self._m_anomalies_perf = self._m_anomalies.labels(kind=PERFORMANCE)
        self._m_new_signatures = registry.counter(
            "detector_new_signatures",
            "distinct never-trained signatures observed in closed windows",
        )

    # -- accounting (telemetry-backed, read-only) ----------------------------
    @property
    def tasks_seen(self) -> int:
        """Synopses/features classified so far."""
        return self._tasks_seen

    @property
    def bucket_probe_count(self) -> int:
        """Buckets examined for ripeness so far — the old implementation
        visited every open bucket on every observe; the heap visits one
        per peek.  Exposed for tests/benchmarks."""
        return self._bucket_probe_count

    @property
    def windows_closed(self) -> int:
        """Windows finalized so far (ripe closes + flush)."""
        return self._windows_closed

    @property
    def watermark(self) -> float:
        """The event-time watermark: highest task start time observed.

        ``-inf`` before the first task.  A window ``[s, e)`` is closed
        once ``watermark - lateness_s >= e``, so a peer that knows this
        value knows exactly which of its replayed-elsewhere windows are
        already finalized here (the fleet reroute protocol's retention
        horizon, DESIGN.md §16).
        """
        return self._watermark

    # -- ingestion -----------------------------------------------------------
    def observe(self, synopsis: TaskSynopsis) -> List[AnomalyEvent]:
        """Ingest one synopsis; returns anomalies from any closed windows.

        Fast path: classifies straight from the synopsis fields without
        materializing a :class:`FeatureVector`.
        """
        stage_key = (
            (synopsis.host_id, synopsis.stage_id)
            if self.model.config.per_host
            else (0, synopsis.stage_id)
        )
        return self._observe(
            stage_key,
            synopsis.signature,
            synopsis.duration,
            synopsis.start_time,
            synopsis if self._tracing else None,
        )

    def observe_feature(self, feature: FeatureVector) -> List[AnomalyEvent]:
        """Ingest one already-extracted :class:`FeatureVector`.

        Same semantics as :meth:`observe`; used by replay paths that
        work from training traces rather than live synopses.
        """
        return self._observe(
            self.model.stage_key_for(feature),
            feature.signature,
            feature.duration,
            feature.start_time,
            feature if self._tracing else None,
        )

    def _observe(
        self,
        stage_key: StageKey,
        signature: Signature,
        duration: float,
        start_time: float,
        task=None,
    ) -> List[AnomalyEvent]:
        self._tasks_seen += 1
        label = self.model.classify_parts(stage_key, signature, duration)
        index = int(start_time // self.config.window_s)
        bucket_key = (stage_key, index)
        bucket = self._buckets.get(bucket_key)
        if bucket is None:
            bucket = self._buckets[bucket_key] = _WindowBucket()
            keys = self._index_keys.get(index)
            if keys is None:
                self._index_keys[index] = [stage_key]
                heapq.heappush(self._index_heap, index)
            else:
                keys.append(stage_key)
            self._m_windows_opened.inc()
            self._m_windows_open.inc()
        bucket.n += 1
        if label.any_flow:
            bucket.flow_outliers += 1
        if label.new_signature:
            bucket.new_signatures.add(signature)
        if label.perf_eligible:
            counts = bucket.perf.get(signature)
            if counts is None:
                counts = bucket.perf[signature] = [0, 0]
            counts[1] += 1
            if label.perf_outlier:
                counts[0] += 1
        if task is not None:
            # Exemplar candidates.  The (host_id, uid) trace key is built
            # only on admission — candidate turnover is O(K log n) over a
            # window, so the steady-state cost is two comparisons.
            k = self.exemplars_per_window
            if label.new_signature and len(bucket.new_sig_keys) < k:
                bucket.new_sig_keys.append((task.host_id, task.uid))
            slow = bucket.slow
            if len(slow) < k:
                heapq.heappush(slow, (duration, (task.host_id, task.uid)))
            elif slow and duration > slow[0][0]:
                heapq.heapreplace(slow, (duration, (task.host_id, task.uid)))
        if start_time > self._watermark:
            self._watermark = start_time
        return self._close_ripe_windows()

    def observe_frame(self, frame: bytes, offset: int = 0) -> List[AnomalyEvent]:
        """Ingest one length-prefixed wire frame straight from its bytes.

        The fused fast path behind sharded workers: each synopsis is
        classified directly from the packed layout — header fields via
        one ``unpack_from``, the signature via a cache keyed on the raw
        log-point entry bytes — without materializing a
        :class:`TaskSynopsis`.  Semantically identical to decoding the
        frame and calling :meth:`observe` per synopsis (the cache maps
        every distinct entry byte pattern to the same interned signature
        the decode path would produce).

        Returns anomalies from any windows the frame's tasks closed.
        Raises ``ValueError`` on a truncated or inconsistent frame,
        mirroring :func:`repro.core.synopsis.decode_frame`.
        """
        if len(frame) - offset < FRAME_HEADER.size:
            raise ValueError("truncated frame header")
        length, count = FRAME_HEADER.unpack_from(frame, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if len(frame) < end:
            raise ValueError("truncated frame payload")
        return self._observe_payload(frame, start, end, count)

    def _observe_payload(
        self, payload: bytes, offset: int, end: int, expected: int
    ) -> List[AnomalyEvent]:
        events: List[AnomalyEvent] = []
        unpack_header = SYNOPSIS_HEADER.unpack_from
        header_size = SYNOPSIS_HEADER.size
        entry_size = SYNOPSIS_ENTRY.size
        cache = self._wire_signatures
        per_host = self.model.config.per_host
        tracing = self._tracing
        observe = self._observe
        seen = 0
        while offset < end:
            if end - offset < header_size:
                raise ValueError("truncated synopsis header")
            host_id, stage_id, uid, ts_ms, duration_us, n = unpack_header(
                payload, offset
            )
            offset += header_size
            entries_end = offset + entry_size * n
            if entries_end > end:
                raise ValueError("truncated synopsis log point entries")
            entry_bytes = payload[offset:entries_end]
            signature = cache.get(entry_bytes)
            if signature is None:
                flat = entry_struct(n).unpack_from(payload, offset) if n else ()
                if len(cache) >= _WIRE_SIGNATURE_CACHE_MAX:
                    cache.clear()
                signature = cache[entry_bytes] = intern_signature(flat[0::2])
            offset = entries_end
            emitted = observe(
                (host_id, stage_id) if per_host else (0, stage_id),
                signature,
                duration_us / 1_000_000.0,
                ts_ms / 1000.0,
                _WireTask(host_id, uid) if tracing else None,
            )
            if emitted:
                events.extend(emitted)
            seen += 1
        if seen != expected:
            raise ValueError(
                f"frame count mismatch: header says {expected}, payload "
                f"holds {seen}"
            )
        return events

    # -- columnar batch ingestion (DESIGN §13) -------------------------------
    def compiled_model(self) -> columnar.CompiledModel:
        """The compiled verdict tables for the current model generation.

        Compiled lazily and cached; a retrain (generation bump) or a
        model swap invalidates the cache and the next batch recompiles —
        the invalidation-on-retrain contract of DESIGN §13.  The dense
        signature-id space is shared across recompiles, so ids already
        handed out stay valid.
        """
        compiled = self._compiled
        model = self.model
        if (
            compiled is None
            or compiled.model is not model
            or compiled.generation != model.generation
        ):
            if self._sig_space is None:
                self._sig_space = SignatureIdSpace()
            compiled = columnar.compile_model(
                model, space=self._sig_space, registry=self.registry
            )
            self._compiled = compiled
        return compiled

    def observe_batch(self, frames, offset: int = 0) -> List[AnomalyEvent]:
        """Ingest a run of concatenated wire frames through the columnar path.

        ``frames`` is a bytes-like object holding one or more
        length-prefixed frames back to back (or an iterable of such
        chunks, which is joined).  The batch path explodes the frames
        into columns, classifies them against the compiled per-stage
        tables (:meth:`compiled_model`), and applies window-bucket
        counts a column run at a time — **bit-identical** to calling
        :meth:`observe_frame` per frame, including event order, exemplar
        pins, and the error/partial-state behaviour on truncated input
        (the complete prefix is ingested, then ``ValueError`` raises
        with the scalar path's message).

        Equivalence is preserved under degradation: when tracing is on,
        numpy is unavailable, or a chunk trips an exactness guard
        (timestamp/window-index range, signature-id exhaustion,
        pathological close rates), the affected records flow through the
        exact per-task path instead (``columnar_fallback_tasks``).

        Returns the anomalies from every window the batch closed, in
        close order.
        """
        if isinstance(frames, (bytes, bytearray, memoryview)):
            data = frames if isinstance(frames, bytes) else bytes(frames)
        else:
            data = b"".join(bytes(chunk) for chunk in frames)
        self._m_columnar_batches.inc()
        before = self._tasks_seen
        try:
            if self._tracing or not columnar.HAVE_NUMPY:
                return self._observe_batch_scalar(data, offset)
            return self._observe_batch_vector(data, offset)
        finally:
            self._columnar_tasks += self._tasks_seen - before

    def _observe_batch_scalar(self, data: bytes, offset: int) -> List[AnomalyEvent]:
        """Whole-batch fallback: frame-by-frame through the scalar path.

        Used when tracing is enabled (exemplar candidates need per-task
        trace keys) or numpy is missing; exact by construction.
        """
        events: List[AnomalyEvent] = []
        before = self._tasks_seen
        total = len(data)
        try:
            while offset < total:
                emitted = self.observe_frame(data, offset)
                if emitted:
                    events.extend(emitted)
                length, _ = FRAME_HEADER.unpack_from(data, offset)
                offset += FRAME_HEADER.size + length
        finally:
            self._columnar_fallback_tasks += self._tasks_seen - before
        return events

    def _observe_batch_vector(self, data: bytes, offset: int) -> List[AnomalyEvent]:
        """Vectorized batch ingest over the scanned record offsets."""
        np = columnar._np
        offsets, _, error = columnar.scan_frames(data, offset)
        events: List[AnomalyEvent] = []
        if offsets:
            compiled = self.compiled_model()
            b = np.frombuffer(data, dtype=np.uint8)
            offs_all = np.asarray(offsets, dtype=np.int64)
            for lo in range(0, len(offs_all), _BATCH_CHUNK):
                self._ingest_chunk(
                    np, b, data, offs_all[lo : lo + _BATCH_CHUNK], compiled, events
                )
        if error is not None:
            # The scalar loop would have ingested every complete record
            # before raising; the prefix above reproduces that state.
            raise ValueError(error)
        return events

    def _ingest_chunk(self, np, b, data, offs, compiled, events) -> None:
        """Decode, classify, and apply one chunk of records.

        Any exactness guard tripping hands the (rest of the) chunk to
        :meth:`_observe_records`; otherwise counts are grouped by
        (window, stage, signature, verdict) and applied in
        first-occurrence order, which reproduces the scalar path's
        bucket / perf-dict creation order exactly.
        """
        m = len(offs)
        if not m:
            return
        ts_ms = columnar._gather_u64(b, offs, 6, 8)
        ts_lo, ts_hi = int(ts_ms.min()), int(ts_ms.max())
        width = self.config.window_s
        bounds = None
        if 0 <= ts_lo and ts_hi < _BATCH_TS_LIMIT:
            bounds = columnar.window_boundaries(ts_lo, ts_hi, width)
            if bounds is not None:
                first, _ = bounds
                if not 0 <= first < _BATCH_INDEX_LIMIT - 4096:
                    bounds = None
        sig = None
        if bounds is not None:
            sig = columnar.resolve_sig_ids(
                b, offs + SYNOPSIS_HEADER.size, b[offs + 18].astype(np.int64),
                compiled.space,
            )
        if sig is None:
            events.extend(self._observe_records(data, offs, 0, m))
            return
        first, boundaries = bounds
        idx = first + np.searchsorted(
            np.asarray(boundaries, dtype=np.int64), ts_ms, side="right"
        )
        stage_int = b[offs + 1].astype(np.int64)
        if self.model.config.per_host:
            stage_int |= b[offs].astype(np.int64) << 8
        cell = (stage_int << columnar.SIG_BITS) | sig
        duration = (
            columnar._gather_u64(b, offs, 14, 4)
            .astype(np.uint32)
            .view(np.int32)
            .astype(np.int64)
        )
        unique_cells, inverse = np.unique(cell, return_inverse=True)
        cuts = np.empty(len(unique_cells), dtype=np.int64)
        for j, packed in enumerate(unique_cells):
            cuts[j] = compiled.rule(int(packed))[1]
        bit = (duration > cuts[inverse]).astype(np.int64)
        span = columnar.SIG_BITS + 16  # cell bits: 8 host + 8 stage + sig
        kk = (idx * (1 << span) + cell) * 2 + bit
        ts_sec = ts_ms / 1000.0
        lateness = self.lateness_s
        pos = 0
        triggers = 0
        while pos < m:
            # Running heap-min / watermark the scalar path would hold
            # after each record (no closes happen inside a segment, so
            # both are pure accumulates seeded with the current state).
            seg_min = np.minimum.accumulate(idx[pos:])
            if self._index_heap:
                seg_min = np.minimum(seg_min, self._index_heap[0])
            seg_wm = np.maximum.accumulate(ts_sec[pos:])
            seg_wm = np.maximum(seg_wm, self._watermark)
            # Same IEEE ops as _close_ripe_windows' ripeness test, so the
            # first hit is exactly where the scalar path would close.
            hits = np.flatnonzero((seg_min + 1) * width <= seg_wm - lateness)
            t = int(hits[0]) if hits.size else m - pos - 1
            self._apply_counts(np, kk[pos : pos + t + 1], compiled)
            self._watermark = float(seg_wm[t])
            pos += t + 1
            if hits.size:
                emitted = self._close_ripe_windows()
                if emitted:
                    events.extend(emitted)
                triggers += 1
                if triggers >= _BATCH_MAX_TRIGGERS and pos < m:
                    events.extend(self._observe_records(data, offs, pos, m))
                    return

    def _apply_counts(self, np, kk, compiled) -> None:
        """Apply one segment's grouped counts to the window buckets.

        Groups are applied in order of first occurrence, so buckets and
        per-signature perf entries are created in exactly the order the
        scalar per-task loop would create them (close order and
        worst-offender tie-breaks depend on it).
        """
        unique_keys, firsts, counts = np.unique(
            kk, return_index=True, return_counts=True
        )
        space = compiled.space
        span = columnar.SIG_BITS + 16
        cell_mask = (1 << span) - 1
        sig_mask = (1 << columnar.SIG_BITS) - 1
        buckets = self._buckets
        for j in np.argsort(firsts):
            packed = int(unique_keys[j])
            count = int(counts[j])
            outlier_bit = packed & 1
            rest = packed >> 1
            index = rest >> span
            cell = rest & cell_mask
            stage_int = cell >> columnar.SIG_BITS
            stage_key = (stage_int >> 8, stage_int & 0xFF)
            bucket_key = (stage_key, index)
            bucket = buckets.get(bucket_key)
            if bucket is None:
                # Mirrors _observe's bucket creation (kept inline there
                # to spare the scalar hot path a call).
                bucket = buckets[bucket_key] = _WindowBucket()
                keys = self._index_keys.get(index)
                if keys is None:
                    self._index_keys[index] = [stage_key]
                    heapq.heappush(self._index_heap, index)
                else:
                    keys.append(stage_key)
                self._m_windows_opened.inc()
                self._m_windows_open.inc()
            bucket.n += count
            flags, _ = compiled.rule(cell)
            if not flags & columnar.KNOWN:
                bucket.flow_outliers += count
                bucket.new_signatures.add(space.signature_of(cell & sig_mask))
            else:
                if flags & columnar.FLOW_OUTLIER:
                    bucket.flow_outliers += count
                if flags & columnar.PERF_ELIGIBLE:
                    signature = space.signature_of(cell & sig_mask)
                    perf = bucket.perf.get(signature)
                    if perf is None:
                        perf = bucket.perf[signature] = [0, 0]
                    perf[1] += count
                    if outlier_bit:
                        perf[0] += count
            self._tasks_seen += count

    def _observe_records(self, data, offs, lo: int, hi: int) -> List[AnomalyEvent]:
        """Exact per-record fallback for a slice of scanned offsets.

        Decodes each record and funnels it through :meth:`_observe`,
        identically to the fused scalar wire path (shared signature
        cache included).  Only reached with tracing off.
        """
        events: List[AnomalyEvent] = []
        unpack_header = SYNOPSIS_HEADER.unpack_from
        header_size = SYNOPSIS_HEADER.size
        cache = self._wire_signatures
        per_host = self.model.config.per_host
        observe = self._observe
        before = self._tasks_seen
        try:
            for i in range(lo, hi):
                record = int(offs[i])
                host_id, stage_id, _uid, ts_ms, duration_us, n = unpack_header(
                    data, record
                )
                start = record + header_size
                entry_bytes = data[start : start + 6 * n]
                signature = cache.get(entry_bytes)
                if signature is None:
                    flat = entry_struct(n).unpack_from(data, start) if n else ()
                    if len(cache) >= _WIRE_SIGNATURE_CACHE_MAX:
                        cache.clear()
                    signature = cache[entry_bytes] = intern_signature(flat[0::2])
                emitted = observe(
                    (host_id, stage_id) if per_host else (0, stage_id),
                    signature,
                    duration_us / 1_000_000.0,
                    ts_ms / 1000.0,
                    None,
                )
                if emitted:
                    events.extend(emitted)
        finally:
            self._columnar_fallback_tasks += self._tasks_seen - before
        return events

    def flush(self) -> List[AnomalyEvent]:
        """Close every open window (end of stream).

        Also resets the per-window gauges: flush bypasses the ripe-close
        path that decrements ``detector_windows_open``, so without the
        explicit reset the gauge would stay stuck at the pre-flush open
        count forever.
        """
        emitted: List[AnomalyEvent] = []
        for index in sorted(self._index_keys):
            for stage_key in self._index_keys[index]:
                emitted.extend(self._close_window((stage_key, index)))
        self._buckets.clear()
        self._index_keys.clear()
        self._index_heap.clear()
        self._m_windows_open.set(0)
        return emitted

    # -- fleet reroute support (DESIGN.md §16) ----------------------------------
    def disown(self, stage_ids) -> int:
        """Drop every open window of the given stages without emitting.

        The fleet reroute path: when a consistent-hash ring change moves
        a stage to another analyzer, the *old* owner must forget its
        partially filled windows for that stage — the router replays the
        same synopses to the new owner, which rebuilds those windows
        whole.  Closing (and emitting from) the partial buckets here
        would double-count against the new owner's full rebuild.

        Returns the number of window buckets dropped.
        """
        stages = set(stage_ids)
        if not stages:
            return 0
        dropped = 0
        for bucket_key in [
            key for key in self._buckets if key[0][1] in stages
        ]:
            del self._buckets[bucket_key]
            stage_key, index = bucket_key
            keys = self._index_keys[index]
            keys.remove(stage_key)
            if not keys:
                del self._index_keys[index]
            dropped += 1
            self._m_windows_open.dec()
        if dropped:
            # Rebuild the ripeness heap: indices whose last stage key
            # was disowned must not linger (an index miss would KeyError
            # in _close_ripe_windows' pop).
            self._index_heap = list(self._index_keys)
            heapq.heapify(self._index_heap)
        return dropped

    def absorb_frame(self, frame: bytes, offset: int = 0) -> List[AnomalyEvent]:
        """Ingest one *replayed* wire frame, deferring window closes.

        The new-owner half of a fleet reroute: replayed synopses are
        old data, so this detector's watermark may already be past
        their windows' close horizon.  Observing them through the
        normal path would close each rebuilt window after its *first*
        task — emitting from a one-task partial bucket.  This path
        suspends ripe closes while the whole frame is applied, then
        runs one close sweep, so every replayed window is finalized
        only once it holds everything the frame carried for it.
        """
        saved = self.lateness_s
        self.lateness_s = float("inf")
        try:
            self.observe_frame(frame, offset)
        finally:
            self.lateness_s = saved
        return self._close_ripe_windows()

    # -- window lifecycle -------------------------------------------------------
    def _close_ripe_windows(self) -> List[AnomalyEvent]:
        heap = self._index_heap
        if not heap:
            return []
        width = self.config.window_s
        horizon = self._watermark - self.lateness_s
        self._bucket_probe_count += 1
        if (heap[0] + 1) * width > horizon:
            return []  # earliest open window is not ripe — nothing to scan
        emitted: List[AnomalyEvent] = []
        while heap and (heap[0] + 1) * width <= horizon:
            index = heapq.heappop(heap)
            self._bucket_probe_count += 1
            for stage_key in self._index_keys.pop(index):
                key = (stage_key, index)
                emitted.extend(self._close_window(key))
                del self._buckets[key]
                self._m_windows_open.dec()
        return emitted

    def _close_window(self, key: Tuple[StageKey, int]) -> List[AnomalyEvent]:
        self._windows_closed += 1
        stage_key, index = key
        bucket = self._buckets[key]
        width = self.config.window_s
        window_start, window_end = index * width, (index + 1) * width
        events: List[AnomalyEvent] = []
        stage_model = self.model.stage_model(stage_key)
        host_id, stage_id = stage_key
        closed_child = self._m_closed_by_stage.get(stage_id)
        if closed_child is None:
            closed_child = self._m_windows_closed.labels(stage=str(stage_id))
            self._m_closed_by_stage[stage_id] = closed_child
        closed_child.inc()
        self._m_close_lag.observe(max(0.0, self._watermark - window_end))
        if bucket.new_signatures:
            self._m_new_signatures.inc(len(bucket.new_signatures))
        flow_baseline = stage_model.flow_outlier_share if stage_model else 0.0

        if bucket.n < self.config.min_window_tasks:
            # Too few tasks for proportion tests — but a *new* signature
            # is a flow anomaly regardless of volume (paper Sec. 3.3.3:
            # "we observe a new signature that we have not seen during
            # training").
            if bucket.new_signatures:
                events.append(
                    AnomalyEvent(
                        kind=FLOW,
                        host_id=host_id,
                        stage_id=stage_id,
                        window_start=window_start,
                        window_end=window_end,
                        outliers=bucket.flow_outliers,
                        n=bucket.n,
                        baseline=flow_baseline,
                        p_value=0.0,
                        new_signatures=tuple(
                            sorted(bucket.new_signatures, key=canonical_tuple)
                        ),
                    )
                )
                self._m_anomalies_flow.inc()
            return self._emit(events, bucket)

        flow_test = proportion_exceeds_test(
            bucket.flow_outliers, bucket.n, flow_baseline, self.config.alpha
        )
        if flow_test.reject or bucket.new_signatures:
            events.append(
                AnomalyEvent(
                    kind=FLOW,
                    host_id=host_id,
                    stage_id=stage_id,
                    window_start=window_start,
                    window_end=window_end,
                    outliers=bucket.flow_outliers,
                    n=bucket.n,
                    baseline=flow_baseline,
                    p_value=flow_test.p_value if flow_test.reject else 0.0,
                    new_signatures=tuple(
                        sorted(bucket.new_signatures, key=canonical_tuple)
                    ),
                )
            )
            self._m_anomalies_flow.inc()

        offending: List[Signature] = []
        worst: Optional[ProportionTest] = None
        for signature, (outliers, eligible) in bucket.perf.items():
            if eligible < self.config.min_window_tasks:
                continue
            baseline = self._perf_baseline(stage_key, stage_model, signature)
            test = proportion_exceeds_test(
                outliers, eligible, baseline, self.config.alpha
            )
            if test.reject:
                offending.append(signature)
                if worst is None or test.p_value < worst.p_value:
                    worst = test
        if offending and worst is not None:
            total_eligible = sum(counts[1] for counts in bucket.perf.values())
            total_outliers = sum(counts[0] for counts in bucket.perf.values())
            events.append(
                AnomalyEvent(
                    kind=PERFORMANCE,
                    host_id=host_id,
                    stage_id=stage_id,
                    window_start=window_start,
                    window_end=window_end,
                    outliers=total_outliers,
                    n=total_eligible,
                    baseline=worst.baseline,
                    p_value=worst.p_value,
                    offending_signatures=tuple(sorted(offending, key=canonical_tuple)),
                )
            )
            self._m_anomalies_perf.inc()
        return self._emit(events, bucket)

    def _emit(
        self, events: List[AnomalyEvent], bucket: _WindowBucket
    ) -> List[AnomalyEvent]:
        """Attach exemplar traces (tracing on) and record the events."""
        if events and self._tracing and self.exemplars_per_window:
            exemplars = self._pin_exemplars(bucket)
            if exemplars:
                events = [replace(event, exemplars=exemplars) for event in events]
        self.anomalies.extend(events)
        if events and self._on_event is not None:
            for event in events:
                self._on_event(event)
        return events

    def _pin_exemplars(self, bucket: _WindowBucket) -> Tuple:
        """Pin up to K of the window's candidate traces as exemplars.

        New-signature tasks come first (they *are* the flow anomaly),
        then the slowest tasks, slowest first; candidates whose trace
        was sampled out or already evicted are skipped.
        """
        exemplars = []
        seen: Set[Tuple[int, int]] = set()
        slowest = [key for _, key in sorted(bucket.slow, reverse=True)]
        for trace_key in (*bucket.new_sig_keys, *slowest):
            if trace_key in seen:
                continue
            seen.add(trace_key)
            trace = self.tracer.pin(trace_key)
            if trace is not None:
                exemplars.append(trace)
                if len(exemplars) >= self.exemplars_per_window:
                    break
        return tuple(exemplars)

    def _perf_baseline(
        self, stage_key: StageKey, stage_model, signature: Signature
    ) -> float:
        """Memoized ``max(1 - q, trained outlier share)`` for one group."""
        memo_key = (stage_key, signature)
        baseline = self._perf_baselines.get(memo_key)
        if baseline is None:
            baseline = 1.0 - self.config.duration_percentile
            if stage_model is not None:
                profile = stage_model.signatures.get(signature)
                if profile is not None:
                    baseline = max(baseline, profile.perf_outlier_share)
            self._perf_baselines[memo_key] = baseline
        return baseline
