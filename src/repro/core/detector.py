"""Online anomaly detection over the synopsis stream (paper Sec. 3.3.3).

The detector buckets classified tasks into fixed time windows per stage
key.  When a window closes (event time passes its end) it runs:

* **Flow anomaly test** — reject H0 "proportion of flow outliers <= the
  training proportion" at ``alpha``; *or* any never-seen signature.
* **Performance anomaly test** — per (stage, signature) group, reject H0
  "proportion of performance outliers <= the training proportion".

Emitted :class:`AnomalyEvent` objects carry everything the reporting
layer needs to render a human-readable root-cause hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .config import SAADConfig
from .features import FeatureVector, Signature, StageKey
from .model import OutlierModel
from .stats import ProportionTest, proportion_exceeds_test
from .synopsis import TaskSynopsis

FLOW = "flow"
PERFORMANCE = "performance"


@dataclass(frozen=True)
class AnomalyEvent:
    """One detected anomaly for one stage in one window."""

    kind: str  # FLOW or PERFORMANCE
    host_id: int
    stage_id: int
    window_start: float
    window_end: float
    outliers: int
    n: int
    baseline: float
    p_value: float
    new_signatures: Tuple[Signature, ...] = ()
    offending_signatures: Tuple[Signature, ...] = ()

    @property
    def stage_key(self) -> StageKey:
        return (self.host_id, self.stage_id)


@dataclass
class _WindowBucket:
    """Accumulator for one (stage key, window index)."""

    n: int = 0
    flow_outliers: int = 0
    new_signatures: Set[Signature] = field(default_factory=set)
    # signature -> [perf outliers, eligible task count]
    perf: Dict[Signature, List[int]] = field(default_factory=dict)


class AnomalyDetector:
    """Streaming detector; feed :meth:`observe`, call :meth:`flush` at end.

    Windows are closed by *event time*: when a task with
    ``start_time >= window_end + lateness`` arrives for any stage, all
    windows ending earlier are finalized.  ``flush()`` closes the rest.
    """

    def __init__(
        self,
        model: OutlierModel,
        config: Optional[SAADConfig] = None,
        lateness_s: float = 0.0,
    ):
        self.model = model
        self.config = config or model.config
        self.lateness_s = lateness_s
        self._buckets: Dict[Tuple[StageKey, int], _WindowBucket] = {}
        self._watermark = float("-inf")
        self.anomalies: List[AnomalyEvent] = []
        self.tasks_seen = 0

    # -- ingestion -----------------------------------------------------------
    def observe(self, synopsis: TaskSynopsis) -> List[AnomalyEvent]:
        """Ingest one synopsis; returns anomalies from any closed windows."""
        return self.observe_feature(FeatureVector.from_synopsis(synopsis))

    def observe_feature(self, feature: FeatureVector) -> List[AnomalyEvent]:
        self.tasks_seen += 1
        label = self.model.classify(feature)
        stage_key = self.model.stage_key_for(feature)
        index = int(feature.start_time // self.config.window_s)
        bucket = self._buckets.setdefault((stage_key, index), _WindowBucket())
        bucket.n += 1
        if label.any_flow:
            bucket.flow_outliers += 1
        if label.new_signature:
            bucket.new_signatures.add(feature.signature)
        if label.perf_eligible:
            counts = bucket.perf.setdefault(feature.signature, [0, 0])
            counts[1] += 1
            if label.perf_outlier:
                counts[0] += 1
        self._watermark = max(self._watermark, feature.start_time)
        return self._close_ripe_windows()

    def flush(self) -> List[AnomalyEvent]:
        """Close every open window (end of stream)."""
        emitted: List[AnomalyEvent] = []
        for key in sorted(self._buckets, key=lambda pair: pair[1]):
            emitted.extend(self._close_window(key))
        self._buckets.clear()
        return emitted

    # -- window lifecycle -------------------------------------------------------
    def _close_ripe_windows(self) -> List[AnomalyEvent]:
        width = self.config.window_s
        emitted: List[AnomalyEvent] = []
        ripe = [
            key
            for key in self._buckets
            if (key[1] + 1) * width + self.lateness_s <= self._watermark
        ]
        for key in sorted(ripe, key=lambda pair: pair[1]):
            emitted.extend(self._close_window(key))
            del self._buckets[key]
        return emitted

    def _close_window(self, key: Tuple[StageKey, int]) -> List[AnomalyEvent]:
        stage_key, index = key
        bucket = self._buckets[key]
        width = self.config.window_s
        window_start, window_end = index * width, (index + 1) * width
        events: List[AnomalyEvent] = []
        stage_model = self.model.stage_model(stage_key)
        host_id, stage_id = stage_key
        flow_baseline = stage_model.flow_outlier_share if stage_model else 0.0

        if bucket.n < self.config.min_window_tasks:
            # Too few tasks for proportion tests — but a *new* signature
            # is a flow anomaly regardless of volume (paper Sec. 3.3.3:
            # "we observe a new signature that we have not seen during
            # training").
            if bucket.new_signatures:
                events.append(
                    AnomalyEvent(
                        kind=FLOW,
                        host_id=host_id,
                        stage_id=stage_id,
                        window_start=window_start,
                        window_end=window_end,
                        outliers=bucket.flow_outliers,
                        n=bucket.n,
                        baseline=flow_baseline,
                        p_value=0.0,
                        new_signatures=tuple(
                            sorted(bucket.new_signatures, key=sorted)
                        ),
                    )
                )
                self.anomalies.extend(events)
            return events

        flow_test = proportion_exceeds_test(
            bucket.flow_outliers, bucket.n, flow_baseline, self.config.alpha
        )
        if flow_test.reject or bucket.new_signatures:
            events.append(
                AnomalyEvent(
                    kind=FLOW,
                    host_id=host_id,
                    stage_id=stage_id,
                    window_start=window_start,
                    window_end=window_end,
                    outliers=bucket.flow_outliers,
                    n=bucket.n,
                    baseline=flow_baseline,
                    p_value=flow_test.p_value if flow_test.reject else 0.0,
                    new_signatures=tuple(sorted(bucket.new_signatures, key=sorted)),
                )
            )

        offending: List[Signature] = []
        worst: Optional[ProportionTest] = None
        for signature, (outliers, eligible) in bucket.perf.items():
            if eligible < self.config.min_window_tasks:
                continue
            baseline = 1.0 - self.config.duration_percentile
            if stage_model is not None:
                profile = stage_model.signatures.get(signature)
                if profile is not None:
                    baseline = max(baseline, profile.perf_outlier_share)
            test = proportion_exceeds_test(
                outliers, eligible, baseline, self.config.alpha
            )
            if test.reject:
                offending.append(signature)
                if worst is None or test.p_value < worst.p_value:
                    worst = test
        if offending and worst is not None:
            total_eligible = sum(counts[1] for counts in bucket.perf.values())
            total_outliers = sum(counts[0] for counts in bucket.perf.values())
            events.append(
                AnomalyEvent(
                    kind=PERFORMANCE,
                    host_id=host_id,
                    stage_id=stage_id,
                    window_start=window_start,
                    window_end=window_end,
                    outliers=total_outliers,
                    n=total_eligible,
                    baseline=worst.baseline,
                    p_value=worst.p_value,
                    offending_signatures=tuple(sorted(offending, key=sorted)),
                )
            )
        self.anomalies.extend(events)
        return events
