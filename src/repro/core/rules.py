"""Readable export of compiled per-stage classifier tables.

``python -m repro rules MODEL.json`` lowers a saved model through
:func:`repro.core.columnar.compile_model` and prints each stage's verdict
table as plain rule text — one line per trained signature, stating the
flow verdict and the exact integer microsecond duration cut the columnar
detect path applies (DESIGN §13).  The format is deliberately both
human-readable *and* parseable: :func:`parse_rules` reconstructs the
tables from the text, and the round-trip classifies identically to the
compiled stage it came from (covered by ``tests/core/test_rules.py``).

Example::

    # saad compiled rules v1
    # model: generation=1 per_host=False stages=3 signatures=7
    stage host=0 id=1 tasks=667 flow_share=0.0
      sig 10,11 -> normal perf cut_us=117204
      sig 10,11,19 -> flow-outlier
      sig * -> novel (flow anomaly)

A ``sig`` line names the signature's sorted log-point ids (``-`` for the
empty signature); the verdict after ``->`` is the baked flow-outlier
flag; a ``perf cut_us=N`` clause marks a perf-eligible signature whose
tasks are performance outliers strictly above ``N`` microseconds
(``inf`` when the profile has no finite threshold).  The ``sig *`` line
spells out the fallback every table carries: signatures unseen at
compile time are flow anomalies.
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional, Tuple

from .columnar import (
    FLOW_OUTLIER,
    KNOWN,
    NO_CUT,
    PERF_ELIGIBLE,
    CompiledModel,
    compile_model,
)
from .features import StageKey
from .interning import canonical_tuple
from .model import _LABEL_NEW_SIGNATURE, TaskLabel
from .persistence import load_model

FORMAT_LINE = "# saad compiled rules v1"

#: One stage's parsed table: sorted log-point tuple -> (flags, cut_us).
RuleTable = Dict[Tuple[int, ...], Tuple[int, int]]


def _render_signature(canonical: Tuple[int, ...]) -> str:
    """``10,11,12`` for a signature's sorted log-point ids (``-`` empty)."""
    return ",".join(str(point) for point in canonical) if canonical else "-"


def render_rules(compiled: CompiledModel) -> str:
    """The rule-text form of every stage table in ``compiled``.

    Deterministic: stages sort by (host, stage) key, signatures by their
    canonical log-point tuples — the golden-file test depends on it.
    """
    stages = sorted(compiled.stages.values(), key=lambda stage: stage.stage_key)
    total_rules = sum(
        1 for stage in stages for flag in stage.flags if flag & KNOWN
    )
    lines = [
        FORMAT_LINE,
        f"# model: generation={compiled.generation} "
        f"per_host={compiled.per_host} stages={len(stages)} "
        f"signatures={total_rules}",
    ]
    for stage in stages:
        host_id, stage_id = stage.stage_key
        lines.append(
            f"stage host={host_id} id={stage_id} tasks={stage.total_tasks} "
            f"flow_share={stage.flow_outlier_share!r}"
        )
        rules = []
        for sig_id, flag in enumerate(stage.flags):
            if not flag & KNOWN:
                continue
            canonical = canonical_tuple(compiled.space.signature_of(sig_id))
            rules.append((canonical, flag, stage.cuts[sig_id]))
        for canonical, flag, cut in sorted(rules):
            verdict = "flow-outlier" if flag & FLOW_OUTLIER else "normal"
            line = f"  sig {_render_signature(canonical)} -> {verdict}"
            if flag & PERF_ELIGIBLE:
                line += f" perf cut_us={'inf' if cut >= NO_CUT else cut}"
            lines.append(line)
        lines.append("  sig * -> novel (flow anomaly)")
    return "\n".join(lines) + "\n"


class ParsedRules:
    """Classifier tables reconstructed from exported rule text.

    Classifies identically to the :class:`~repro.core.columnar.
    CompiledModel` the text was rendered from — same flags, same exact
    integer cuts, same novel-signature fallback — so an operator can
    audit (or diff) the text with confidence that it *is* the deployed
    behaviour.
    """

    def __init__(
        self, per_host: bool, generation: int, stages: Dict[StageKey, RuleTable]
    ):
        self.per_host = per_host
        self.generation = generation
        self.stages = stages

    def rule(self, stage_key: StageKey, signature) -> Optional[Tuple[int, int]]:
        """``(flags, cut)`` for one signature, or None when novel."""
        table = self.stages.get(stage_key)
        if table is None:
            return None
        return table.get(canonical_tuple(signature))

    def classify(
        self, host_id: int, stage_id: int, signature, duration_us: int
    ) -> TaskLabel:
        """Verdict for one task, mirroring ``CompiledModel.classify``."""
        key = (host_id, stage_id) if self.per_host else (0, stage_id)
        rule = self.rule(key, signature)
        if rule is None:
            return _LABEL_NEW_SIGNATURE
        flags, cut = rule
        return TaskLabel(
            flow_outlier=bool(flags & FLOW_OUTLIER),
            new_signature=False,
            perf_outlier=bool(flags & PERF_ELIGIBLE) and duration_us > cut,
            perf_eligible=bool(flags & PERF_ELIGIBLE),
        )


def parse_rules(text: str) -> ParsedRules:
    """Inverse of :func:`render_rules`; raises ``ValueError`` on bad text."""
    lines = text.splitlines()
    if not lines or lines[0] != FORMAT_LINE:
        raise ValueError("not a saad compiled rules file")
    per_host = False
    generation = 0
    stages: Dict[StageKey, RuleTable] = {}
    table: Optional[RuleTable] = None
    for line in lines[1:]:
        if line.startswith("# model:"):
            fields = dict(
                pair.split("=", 1) for pair in line[len("# model:") :].split()
            )
            per_host = fields.get("per_host") == "True"
            generation = int(fields.get("generation", 0))
        elif line.startswith("stage "):
            fields = dict(pair.split("=", 1) for pair in line[len("stage ") :].split())
            key = (int(fields["host"]), int(fields["id"]))
            table = stages.setdefault(key, {})
        elif line.startswith("  sig "):
            if table is None:
                raise ValueError(f"sig rule outside any stage: {line!r}")
            body = line[len("  sig ") :]
            points_text, _, verdict = body.partition(" -> ")
            if not verdict:
                raise ValueError(f"malformed sig rule: {line!r}")
            if points_text == "*":
                continue  # the implicit novel fallback
            canonical = (
                ()
                if points_text == "-"
                else tuple(int(point) for point in points_text.split(","))
            )
            flags = KNOWN
            if verdict.startswith("flow-outlier"):
                flags |= FLOW_OUTLIER
            elif not verdict.startswith("normal"):
                raise ValueError(f"unknown verdict in rule: {line!r}")
            cut = NO_CUT
            if " perf cut_us=" in verdict:
                flags |= PERF_ELIGIBLE
                cut_text = verdict.rsplit("cut_us=", 1)[1].strip()
                cut = NO_CUT if cut_text == "inf" else int(cut_text)
            table[canonical] = (flags, cut)
        elif line.startswith("#") or not line.strip():
            continue
        else:
            raise ValueError(f"unrecognized rules line: {line!r}")
    return ParsedRules(per_host, generation, stages)


def main(argv=None) -> int:
    """CLI: compile a saved model and print its rule tables.

    ``python -m repro rules MODEL.json [--out RULES.txt]``
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro rules",
        description="export a saved model's compiled per-stage classifier "
        "tables as readable rule text",
    )
    parser.add_argument("model", help="path to a model saved by save_model()")
    parser.add_argument(
        "--out", default=None, help="write the rules here instead of stdout"
    )
    args = parser.parse_args(argv)
    text = render_rules(compile_model(load_model(args.model)))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


__all__ = ["ParsedRules", "main", "parse_rules", "render_rules"]
