"""Model persistence: save/load a trained outlier model.

The paper's deployment trains the model from a trace and then runs the
analyzer continuously; persisting the learned model lets the analyzer
restart (or move to another machine) without retraining, and makes the
training artifact auditable.

The format is plain JSON: stable, diffable, and independent of Python
pickling.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.telemetry import NULL_REGISTRY

from .config import SAADConfig
from .interning import intern_signature
from .model import OutlierModel, SignatureProfile, StageModel

FORMAT_VERSION = 1


def _persistence_metrics(registry):
    """The four ``model_*`` persistence counters from ``registry``."""
    return (
        registry.counter("model_saves", "trained models written to disk"),
        registry.counter("model_loads", "trained models read from disk"),
        registry.counter("model_bytes_written", "serialized model bytes written"),
        registry.counter("model_bytes_read", "serialized model bytes read"),
    )


def model_to_json(model: OutlierModel) -> str:
    """Serialize a trained model (config + every stage's statistics)."""
    if not model.trained:
        raise ValueError("cannot serialize an untrained model")
    config = model.config
    payload = {
        "format_version": FORMAT_VERSION,
        "config": {
            "flow_percentile": config.flow_percentile,
            "duration_percentile": config.duration_percentile,
            "alpha": config.alpha,
            "window_s": config.window_s,
            "kfold": config.kfold,
            "kfold_discard_factor": config.kfold_discard_factor,
            "min_signature_samples": config.min_signature_samples,
            "min_window_tasks": config.min_window_tasks,
            "per_host": config.per_host,
        },
        "stages": [
            {
                "host_id": host_id,
                "stage_id": stage_id,
                "total_tasks": stage.total_tasks,
                "flow_outlier_share": stage.flow_outlier_share,
                "signatures": [
                    {
                        "log_points": sorted(profile.signature),
                        "count": profile.count,
                        "share": profile.share,
                        "is_flow_outlier": profile.is_flow_outlier,
                        "duration_threshold": profile.duration_threshold,
                        "perf_outlier_share": profile.perf_outlier_share,
                        "perf_eligible": profile.perf_eligible,
                        "cv_outlier_rate": profile.cv_outlier_rate,
                    }
                    for profile in stage.signatures.values()
                ],
            }
            for (host_id, stage_id), stage in sorted(model.stages.items())
        ],
    }
    return json.dumps(payload)


def model_from_json(payload: str, registry=None) -> OutlierModel:
    """Inverse of :func:`model_to_json`.

    ``registry`` is handed to the reconstructed :class:`OutlierModel`
    (defaults to a private one, as direct construction does).
    """
    data = json.loads(payload)
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version!r}")
    config = SAADConfig(**data["config"])
    model = OutlierModel(config, registry=registry)
    for stage_data in data["stages"]:
        stage_key = (stage_data["host_id"], stage_data["stage_id"])
        stage = StageModel(
            stage_key=stage_key,
            total_tasks=stage_data["total_tasks"],
            flow_outlier_share=stage_data["flow_outlier_share"],
        )
        for entry in stage_data["signatures"]:
            # Interned so a reloaded model shares signature objects with
            # live decoding/feature extraction.
            signature = intern_signature(entry["log_points"])
            stage.signatures[signature] = SignatureProfile(
                signature=signature,
                count=entry["count"],
                share=entry["share"],
                is_flow_outlier=entry["is_flow_outlier"],
                duration_threshold=entry["duration_threshold"],
                perf_outlier_share=entry["perf_outlier_share"],
                perf_eligible=entry["perf_eligible"],
                cv_outlier_rate=entry["cv_outlier_rate"],
            )
        model.stages[stage_key] = stage
    model.trained = True
    # A reloaded model embodies one completed training pass: start its
    # generation past zero so compiled artifacts built from it are
    # distinguishable from "never trained" (DESIGN.md §13).
    model.generation = 1
    return model


def broadcast_model(model: OutlierModel) -> str:
    """The wire form used to broadcast a trained model to shard workers.

    The sharded analyzer serializes the model once and hands every
    worker process the same payload — the plain-JSON persistence format,
    so a broadcast is byte-identical to what :func:`save_model` writes
    and a worker can equally be pointed at a file on disk.
    """
    return model_to_json(model)


def receive_model(payload: str, registry=None) -> OutlierModel:
    """Reconstruct a broadcast model inside a worker process.

    The inverse of :func:`broadcast_model`; signatures are interned into
    the worker's own process-local table (see
    :mod:`repro.core.interning`), so shards never share mutable state.
    ``registry`` defaults to a private one, as direct construction does.
    """
    return model_from_json(payload, registry=registry)


def save_model(model: OutlierModel, path: str, registry=NULL_REGISTRY) -> None:
    """Write the model to ``path``.

    ``registry`` receives the ``model_saves`` / ``model_bytes_written``
    counters; the default :data:`~repro.telemetry.NULL_REGISTRY` keeps
    standalone scripts metric-free (the ``SAAD`` facade passes its own).
    """
    payload = model_to_json(model)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    saves, _, bytes_written, _ = _persistence_metrics(registry)
    saves.inc()
    bytes_written.inc(len(payload.encode("utf-8")))


def load_model(path: str, registry=NULL_REGISTRY) -> OutlierModel:
    """Read a model previously written by :func:`save_model`.

    ``registry`` receives the ``model_loads`` / ``model_bytes_read``
    counters and is threaded into the reconstructed model's ``train_*``
    metrics; defaults to :data:`~repro.telemetry.NULL_REGISTRY`.
    """
    with open(path, encoding="utf-8") as handle:
        payload = handle.read()
    _, loads, _, bytes_read = _persistence_metrics(registry)
    loads.inc()
    bytes_read.inc(len(payload.encode("utf-8")))
    return model_from_json(payload, registry=registry)
