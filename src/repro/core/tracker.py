"""The task execution tracker (paper Sec. 3.2, 4.1).

A thin layer between server code and the logging library:

* ``set_context(stage_id)`` — inserted at the beginning of each stage —
  tells the tracker the current thread is about to execute a new task.
  If the thread already carries an open task (producer-consumer thread
  reuse), that task is finalized first.
* :meth:`on_log` — installed as a loglib interceptor — records the log
  point id and bumps its visit count in the thread-local task structure.
  Message content is never touched.
* Task termination is inferred three ways, matching the paper: re-entry
  of ``set_context`` on the same thread (producer-consumer), thread exit
  hooks (the ``finalize()`` trick for dispatcher-worker), and an explicit
  :meth:`end_task` for code that knows its own boundaries.

On termination the tracker builds a :class:`TaskSynopsis` and hands it to
the configured sink (normally a synopsis stream to the analyzer).
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.loglib.record import LogCall
from repro.telemetry import MetricsRegistry

from .context import RealThreadContext, ThreadContextProvider
from .synopsis import TaskSynopsis

_SLOT_KEY = "saad.task"
_HOOK_KEY = "saad.exit_hook"

SynopsisSink = Callable[[TaskSynopsis], None]


class _OpenTask:
    """Mutable per-task state kept in thread-local storage.

    ``events`` stays None unless tracing is enabled, so the untraced
    hot path never pays for an empty list per task.
    """

    __slots__ = (
        "stage_id",
        "uid",
        "start_time",
        "last_log_time",
        "log_points",
        "events",
    )

    def __init__(self, stage_id: int, uid: int, start_time: float, traced: bool = False):
        self.stage_id = stage_id
        self.uid = uid
        self.start_time = start_time
        self.last_log_time = start_time
        self.log_points: Dict[int, int] = {}
        self.events: Optional[List[Tuple[int, float]]] = [] if traced else None


class TrackerStats:
    """Hot-path accumulator for the tracker's self-accounting.

    Plain integer attributes mutated inline (``on_log`` runs once per
    log call; a locked metric increment there would be measurable).  The
    tracker registers callback-backed telemetry counters over these
    fields at construction, so the registry reads them lazily at
    collection time — the blessed pattern for per-event counting
    (DESIGN.md §10).
    """

    def __init__(self) -> None:
        self.tasks_started = 0
        self.tasks_completed = 0
        self.log_calls_tracked = 0
        self.log_calls_untracked = 0
        self.synopsis_bytes = 0


class TaskExecutionTracker:
    """Per-node tracker; install on a repository via ``add_interceptor``.

    Parameters
    ----------
    host_id:
        Small integer identifying this node in the synopsis stream.
    sink:
        Callable receiving each finished :class:`TaskSynopsis`.
    context:
        Thread-context provider; defaults to real Python threads.
    clock:
        Time source; simulations pass ``lambda: env.now``.
    enabled:
        When False the tracker ignores everything (the "original" system
        of the Fig. 7 overhead comparison).
    registry:
        Telemetry registry receiving the tracker's self-metrics
        (``tracker_*{host=...}``).  Defaults to a private
        :class:`~repro.telemetry.MetricsRegistry`; pass a shared one
        (the ``SAAD`` facade does) to aggregate a deployment, or a
        :class:`~repro.telemetry.NullRegistry` to disable.
    tracer:
        Span recorder receiving one :class:`~repro.tracing.TaskTrace`
        per finished task (the ``SAAD`` facade shares one tracer across
        all nodes).  Defaults to the inert
        :data:`~repro.tracing.NULL_TRACER`, in which case the tracker
        skips all per-event timeline work — same type-swap off-switch
        as the telemetry registry.
    """

    def __init__(
        self,
        host_id: int = 0,
        sink: Optional[SynopsisSink] = None,
        context: Optional[ThreadContextProvider] = None,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        registry=None,
        tracer=None,
    ):
        self.host_id = host_id
        self.sink = sink
        self.context = context or RealThreadContext()
        self.clock = clock or _time.time
        self.enabled = enabled
        self.stats = TrackerStats()
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None:
            from repro.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self._traced = bool(tracer.enabled)
        self._register_metrics()
        self._next_uid = 0
        # Bound-method caches for the per-log-call hot path: on_log runs
        # once per logging call in the instrumented system, so each saved
        # attribute hop matters (paper Fig. 7: tracker overhead must stay
        # negligible).
        self._slot = self.context.slot

    def _register_metrics(self) -> None:
        """Register callback-backed counters over :class:`TrackerStats`.

        The hot path keeps mutating plain ints; the registry evaluates
        these callbacks only when a snapshot is taken, so instrumenting
        the tracker costs nothing per log call.
        """
        stats = self.stats
        host = str(self.host_id)
        for name, help_text, fn in (
            (
                "tracker_tasks_started",
                "tasks opened by set_context",
                lambda: stats.tasks_started,
            ),
            (
                "tracker_tasks_completed",
                "tasks finalized into a synopsis",
                lambda: stats.tasks_completed,
            ),
            (
                "tracker_log_calls_tracked",
                "log-point visits recorded into an open task",
                lambda: stats.log_calls_tracked,
            ),
            (
                "tracker_log_calls_untracked",
                "log calls seen with no open task on the thread",
                lambda: stats.log_calls_untracked,
            ),
            (
                "tracker_synopsis_bytes",
                "wire bytes of all emitted synopses",
                lambda: stats.synopsis_bytes,
            ),
        ):
            self.registry.counter(name, help_text, labels=("host",)).labels(
                host=host
            ).set_function(fn)

    # -- stage delimiters -------------------------------------------------------
    def set_context(self, stage_id: int) -> None:
        """The paper's ``setContext(int stageId)`` stage delimiter."""
        if not self.enabled:
            return
        slot = self.context.slot()
        if slot is None:
            return
        open_task = slot.get(_SLOT_KEY)
        if open_task is not None:
            # Thread reuse: starting a new task implies the previous one
            # finished (producer-consumer termination inference).
            self._finalize(slot, open_task)
        slot[_SLOT_KEY] = _OpenTask(
            stage_id=stage_id,
            uid=self._alloc_uid(),
            start_time=self.clock(),
            traced=self._traced,
        )
        self.stats.tasks_started += 1
        if not slot.get(_HOOK_KEY):
            # Dispatcher-worker termination inference: finalize on thread
            # death (models Java's GC finalize()).  Register once per thread.
            if self.context.register_exit_hook(lambda: self._on_thread_exit(slot)):
                slot[_HOOK_KEY] = True

    def end_task(self) -> Optional[TaskSynopsis]:
        """Explicitly finalize the current thread's open task."""
        if not self.enabled:
            return None
        slot = self.context.slot()
        if slot is None:
            return None
        open_task = slot.get(_SLOT_KEY)
        if open_task is None:
            return None
        return self._finalize(slot, open_task)

    def current_stage_id(self) -> Optional[int]:
        """Stage id of the current thread's open task, if any."""
        slot = self.context.slot()
        task = slot.get(_SLOT_KEY) if slot is not None else None
        return task.stage_id if task is not None else None

    # -- logging interception -----------------------------------------------------
    def on_log(self, call: LogCall) -> None:
        """loglib interceptor: register one log point encounter."""
        lpid = call.lpid
        if lpid is None or not self.enabled:
            return
        slot = self._slot()
        task = slot.get(_SLOT_KEY) if slot is not None else None
        if task is None:
            self.stats.log_calls_untracked += 1
            return
        log_points = task.log_points
        log_points[lpid] = log_points.get(lpid, 0) + 1
        task.last_log_time = call.time
        events = task.events
        if events is not None:
            events.append((lpid, call.time))
        self.stats.log_calls_tracked += 1

    # -- internals ----------------------------------------------------------------
    def _alloc_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def _on_thread_exit(self, slot: Dict[str, Any]) -> None:
        open_task = slot.get(_SLOT_KEY)
        if open_task is not None:
            self._finalize(slot, open_task)

    def _finalize(self, slot: Dict[str, Any], task: _OpenTask) -> TaskSynopsis:
        slot.pop(_SLOT_KEY, None)
        # Paper Sec. 3.3.1: duration = last log point time - task start.
        duration = max(0.0, task.last_log_time - task.start_time)
        synopsis = TaskSynopsis(
            host_id=self.host_id,
            stage_id=task.stage_id,
            uid=task.uid,
            start_time=task.start_time,
            duration=duration,
            log_points=task.log_points,
        )
        self.stats.tasks_completed += 1
        self.stats.synopsis_bytes += synopsis.encoded_size()
        if task.events is not None:
            # Record before the sink runs: the sink chain may reach the
            # detector synchronously, which may close a window and try
            # to pin this very trace as an exemplar.
            self.tracer.finish(synopsis, task.events)
        if self.sink is not None:
            self.sink(synopsis)
        return synopsis
