"""Analyzer configuration, with the paper's defaults."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SAADConfig:
    """Knobs for the statistical analyzer.

    Attributes
    ----------
    flow_percentile:
        Signatures whose share of a stage's tasks is below
        ``1 - flow_percentile`` are flow outliers (paper: 99th percentile,
        i.e. signatures covering < 1 % of tasks).
    duration_percentile:
        Per (stage, signature) duration threshold quantile (paper: 0.99).
    alpha:
        Significance level of the anomaly t-tests (paper: 0.001).
    window_s:
        Width of the periodic detection windows in seconds (the paper's
        Cassandra timeline uses 3-minute splits).
    kfold:
        Folds for the duration-stability cross-validation (Sec. 3.3.2).
    kfold_discard_factor:
        A signature is discarded for performance detection when its
        cross-validated outlier rate exceeds
        ``factor * (1 - duration_percentile)``.
    min_signature_samples:
        Signatures with fewer training tasks than this are not eligible
        for performance-outlier detection (their percentile threshold
        would be noise), though they still participate in flow detection.
    min_window_tasks:
        Detection windows with fewer tasks for a stage are skipped.
    per_host:
        Train and test per (host, stage), as the paper does; set False to
        pool all hosts into one model per stage.
    """

    flow_percentile: float = 0.99
    duration_percentile: float = 0.99
    alpha: float = 0.001
    window_s: float = 180.0
    kfold: int = 5
    kfold_discard_factor: float = 3.0
    min_signature_samples: int = 20
    min_window_tasks: int = 8
    per_host: bool = True

    def __post_init__(self) -> None:
        if not 0.5 <= self.flow_percentile < 1.0:
            raise ValueError(f"flow_percentile out of range: {self.flow_percentile}")
        if not 0.5 <= self.duration_percentile < 1.0:
            raise ValueError(
                f"duration_percentile out of range: {self.duration_percentile}"
            )
        if not 0.0 < self.alpha < 0.5:
            raise ValueError(f"alpha out of range: {self.alpha}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive: {self.window_s}")
        if self.kfold < 2:
            raise ValueError(f"kfold must be >= 2: {self.kfold}")
        if self.kfold_discard_factor < 1.0:
            raise ValueError(
                f"kfold_discard_factor must be >= 1: {self.kfold_discard_factor}"
            )
