"""The learned outlier model (paper Sec. 3.3.2).

Training is deliberately cheap — counting and percentiles:

1. Per stage, count tasks per signature.  Signatures whose share of the
   stage's tasks is below ``1 - flow_percentile`` are **flow outliers**.
2. Per (stage, signature), the ``duration_percentile`` quantile of
   training durations is the **performance outlier threshold**.
3. A k-fold cross-validation pass discards signatures whose duration
   distribution does not admit a stable percentile threshold: build the
   threshold on k-1 folds, measure the held-out outlier rate, and discard
   the signature when the average rate is far above the nominal
   ``1 - duration_percentile``.

Each signature's durations are sorted **once**; the threshold, the
outlier share, and every fold's held-out rate are derived from that one
sorted array (the per-fold training percentile walks the sorted array
skipping the held-out multiset instead of copying and re-sorting).

Classification at runtime is hash-map lookups plus one float comparison,
matching the paper's "extremely light-weight" claim; the hot path
(:meth:`OutlierModel.classify_parts`) returns per-profile cached labels
so steady-state classification allocates nothing.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.telemetry import MetricsRegistry

from .config import SAADConfig
from .features import FeatureVector, Signature, StageKey, features_from
from .interning import InternedSignature, intern_signature
from .stats import kfold_splits, percentile_sorted
from .synopsis import TaskSynopsis


@dataclass
class SignatureProfile:
    """What training learned about one (stage, signature) group."""

    signature: Signature
    count: int
    share: float
    is_flow_outlier: bool
    duration_threshold: Optional[float] = None
    perf_outlier_share: float = 0.0
    perf_eligible: bool = False
    cv_outlier_rate: Optional[float] = None
    # Cached classification results (all tasks of one profile with the
    # same outlier verdict get the same immutable label).
    _label_normal: Optional["TaskLabel"] = field(
        default=None, repr=False, compare=False
    )
    _label_perf_outlier: Optional["TaskLabel"] = field(
        default=None, repr=False, compare=False
    )


@dataclass
class StageModel:
    """Learned statistics for one stage key."""

    stage_key: StageKey
    total_tasks: int
    signatures: Dict[Signature, SignatureProfile] = field(default_factory=dict)
    flow_outlier_share: float = 0.0

    @property
    def known_signatures(self) -> Set[Signature]:
        """The signatures observed for this stage during training."""
        return set(self.signatures)


@dataclass(frozen=True)
class TaskLabel:
    """Classification of one task against the model."""

    flow_outlier: bool
    new_signature: bool
    perf_outlier: bool
    perf_eligible: bool

    @property
    def any_flow(self) -> bool:
        """Counts toward the flow-anomaly test (rare or never-seen flow)."""
        return self.flow_outlier or self.new_signature


#: Shared label for tasks whose signature (or stage) was never trained.
_LABEL_NEW_SIGNATURE = TaskLabel(
    flow_outlier=False, new_signature=True, perf_outlier=False, perf_eligible=False
)


def _percentile_excluding(
    ordered: List[float], exclude: Dict[float, int], m: int, q: float
) -> float:
    """``q``-quantile of ``ordered`` minus the ``exclude`` multiset.

    ``ordered`` is the full sorted duration array; ``exclude`` maps value
    -> occurrences held out (consumed destructively); ``m`` is the size of
    the remaining training multiset (must be >= 2).  Walks the sorted
    array from the top, so for high quantiles it touches only the tail.
    """
    position = q * (m - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    lower_value: Optional[float] = None
    upper_value: Optional[float] = None
    index = m - 1
    for value in reversed(ordered):
        remaining = exclude.get(value)
        if remaining:
            exclude[value] = remaining - 1
            continue
        if index == upper:
            upper_value = value
        if index == lower:
            lower_value = value
            break
        index -= 1
    assert lower_value is not None and upper_value is not None
    if lower == upper:
        return float(lower_value)
    weight = position - lower
    return float(lower_value * (1.0 - weight) + upper_value * weight)


class OutlierModel:
    """The trained classifier: stage -> signature stats + thresholds.

    Parameters
    ----------
    config:
        Analyzer configuration; defaults to a fresh :class:`SAADConfig`.
    registry:
        Telemetry registry for the ``train_*`` counters; defaults to a
        private :class:`~repro.telemetry.MetricsRegistry`.  Training is
        a rare batch operation, so these are ordinary locked counters.
    """

    def __init__(self, config: Optional[SAADConfig] = None, registry=None):
        self.config = config or SAADConfig()
        self.stages: Dict[StageKey, StageModel] = {}
        self.trained = False
        #: Monotone training epoch: bumped by every (re)training pass so
        #: derived artifacts — compiled stage tables
        #: (:func:`repro.core.columnar.compile_model`), exported rules —
        #: can detect staleness and invalidate (DESIGN.md §13).
        self.generation = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_train_tasks = self.registry.counter(
            "train_tasks", "feature vectors consumed by training"
        )
        self._m_train_stages = self.registry.counter(
            "train_stages", "stage models built by training"
        )
        self._m_signatures_ranked = self.registry.counter(
            "train_signatures_ranked", "signature profiles fitted by training"
        )
        self._m_signatures_discarded = self.registry.counter(
            "train_signatures_discarded",
            "signatures whose duration threshold failed the k-fold "
            "stability check",
        )

    # -- training ---------------------------------------------------------------
    def train(self, synopses: Iterable[TaskSynopsis]) -> "OutlierModel":
        """Build the model from a fault-free training trace."""
        return self.train_features(features_from(synopses))

    def train_features(self, features: List[FeatureVector]) -> "OutlierModel":
        """Build the model from already-extracted feature vectors."""
        config = self.config
        self._m_train_tasks.inc(len(features))
        grouped: Dict[StageKey, Dict[Signature, List[float]]] = {}
        per_host = config.per_host
        for feature in features:
            key = feature.stage_key if per_host else (0, feature.stage_id)
            signature = feature.signature
            if not isinstance(signature, InternedSignature):
                signature = intern_signature(signature)
            grouped.setdefault(key, {}).setdefault(signature, []).append(
                feature.duration
            )

        outlier_share_cutoff = 1.0 - config.flow_percentile
        for stage_key, by_signature in grouped.items():
            total = sum(len(durations) for durations in by_signature.values())
            stage_model = StageModel(stage_key=stage_key, total_tasks=total)
            flow_outlier_tasks = 0
            for signature, durations in by_signature.items():
                share = len(durations) / total
                is_flow_outlier = share < outlier_share_cutoff
                if is_flow_outlier:
                    flow_outlier_tasks += len(durations)
                profile = SignatureProfile(
                    signature=signature,
                    count=len(durations),
                    share=share,
                    is_flow_outlier=is_flow_outlier,
                )
                self._fit_duration(profile, durations)
                self._m_signatures_ranked.inc()
                stage_model.signatures[signature] = profile
            stage_model.flow_outlier_share = flow_outlier_tasks / total if total else 0.0
            self.stages[stage_key] = stage_model
            self._m_train_stages.inc()
        self.trained = True
        self.generation += 1
        return self

    def _fit_duration(self, profile: SignatureProfile, durations: List[float]) -> None:
        """Steps 2-3: percentile threshold plus k-fold stability check.

        One ``sorted()`` call per signature; everything else — threshold,
        outlier share, per-fold training percentiles — reads that array.
        """
        config = self.config
        n = len(durations)
        if n < config.min_signature_samples:
            return
        ordered = sorted(durations)
        q = config.duration_percentile
        threshold = percentile_sorted(ordered, q)
        profile.duration_threshold = threshold
        nominal_rate = 1.0 - q
        profile.perf_outlier_share = (n - bisect_right(ordered, threshold)) / n

        # k-fold cross-validation (paper Sec. 3.3.2): is the held-out
        # outlier rate consistent with what a stable distribution would
        # give?  For iid continuous data the expected exceedance of a
        # q-quantile threshold built from m samples is NOT (1-q) but
        # (m(1-q) + 1) / (m + 1)  — the order-statistic correction that
        # matters at small m.  Discard only rates far above *that*.
        # Folds are contiguous runs of the *collection order* (so drift
        # over the trace is what gets caught), while each fold's training
        # percentile comes from the shared sorted array.
        rates = []
        expected_rates = []
        for start, end in kfold_splits(n, config.kfold):
            held_out = durations[start:end]
            m = n - len(held_out)
            if not held_out or m < 2:
                continue
            exclude: Dict[float, int] = {}
            for value in held_out:
                exclude[value] = exclude.get(value, 0) + 1
            fold_threshold = _percentile_excluding(ordered, exclude, m, q)
            rates.append(
                sum(1 for d in held_out if d > fold_threshold) / len(held_out)
            )
            expected_rates.append((m * nominal_rate + 1.0) / (m + 1.0))
        if not rates:
            return
        profile.cv_outlier_rate = sum(rates) / len(rates)
        expected = sum(expected_rates) / len(expected_rates)
        profile.perf_eligible = (
            profile.cv_outlier_rate <= config.kfold_discard_factor * expected
        )
        if not profile.perf_eligible:
            self._m_signatures_discarded.inc()

    # -- classification ---------------------------------------------------------
    def stage_key_for(self, feature: FeatureVector) -> StageKey:
        """The grouping key ``feature`` falls under (respects per_host)."""
        return feature.stage_key if self.config.per_host else (0, feature.stage_id)

    def stage_model(self, stage_key: StageKey) -> Optional[StageModel]:
        """The learned :class:`StageModel` for ``stage_key``, or None."""
        return self.stages.get(stage_key)

    def classify(self, feature: FeatureVector) -> TaskLabel:
        """Label one task; unknown stages yield all-normal labels."""
        return self.classify_parts(
            self.stage_key_for(feature), feature.signature, feature.duration
        )

    def classify_parts(
        self, stage_key: StageKey, signature: Signature, duration: float
    ) -> TaskLabel:
        """Hot-path classification from the raw feature components.

        Avoids constructing a :class:`FeatureVector` and returns cached
        label objects — zero allocations at steady state.
        """
        if not self.trained:
            raise RuntimeError("model must be trained before classification")
        stage = self.stages.get(stage_key)
        if stage is None:
            # A whole stage never seen in training: treat its tasks as new
            # flows (conservative; surfaces brand-new code paths).
            return _LABEL_NEW_SIGNATURE
        profile = stage.signatures.get(signature)
        if profile is None:
            return _LABEL_NEW_SIGNATURE
        threshold = profile.duration_threshold
        if profile.perf_eligible and threshold is not None and duration > threshold:
            label = profile._label_perf_outlier
            if label is None:
                label = TaskLabel(
                    flow_outlier=profile.is_flow_outlier,
                    new_signature=False,
                    perf_outlier=True,
                    perf_eligible=True,
                )
                profile._label_perf_outlier = label
            return label
        label = profile._label_normal
        if label is None:
            label = TaskLabel(
                flow_outlier=profile.is_flow_outlier,
                new_signature=False,
                perf_outlier=False,
                perf_eligible=profile.perf_eligible,
            )
            profile._label_normal = label
        return label

    # -- introspection ------------------------------------------------------------
    def signature_distribution(self, stage_key: StageKey) -> List[Tuple[Signature, float]]:
        """(signature, share) pairs sorted by share descending (Fig. 6 data)."""
        stage = self.stages.get(stage_key)
        if stage is None:
            return []
        return sorted(
            ((sig, prof.share) for sig, prof in stage.signatures.items()),
            key=lambda pair: pair[1],
            reverse=True,
        )

    def summary(self) -> Dict[StageKey, Tuple[int, int]]:
        """Per stage: (total tasks, distinct signatures)."""
        return {
            key: (model.total_tasks, len(model.signatures))
            for key, model in self.stages.items()
        }
