"""The learned outlier model (paper Sec. 3.3.2).

Training is deliberately cheap — counting and percentiles:

1. Per stage, count tasks per signature.  Signatures whose share of the
   stage's tasks is below ``1 - flow_percentile`` are **flow outliers**.
2. Per (stage, signature), the ``duration_percentile`` quantile of
   training durations is the **performance outlier threshold**.
3. A k-fold cross-validation pass discards signatures whose duration
   distribution does not admit a stable percentile threshold: build the
   threshold on k-1 folds, measure the held-out outlier rate, and discard
   the signature when the average rate is far above the nominal
   ``1 - duration_percentile``.

Classification at runtime is hash-map lookups plus one float comparison,
matching the paper's "extremely light-weight" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .config import SAADConfig
from .features import FeatureVector, Signature, StageKey, features_from
from .stats import kfold_splits, percentile
from .synopsis import TaskSynopsis


@dataclass
class SignatureProfile:
    """What training learned about one (stage, signature) group."""

    signature: Signature
    count: int
    share: float
    is_flow_outlier: bool
    duration_threshold: Optional[float] = None
    perf_outlier_share: float = 0.0
    perf_eligible: bool = False
    cv_outlier_rate: Optional[float] = None


@dataclass
class StageModel:
    """Learned statistics for one stage key."""

    stage_key: StageKey
    total_tasks: int
    signatures: Dict[Signature, SignatureProfile] = field(default_factory=dict)
    flow_outlier_share: float = 0.0

    @property
    def known_signatures(self) -> Set[Signature]:
        return set(self.signatures)


@dataclass(frozen=True)
class TaskLabel:
    """Classification of one task against the model."""

    flow_outlier: bool
    new_signature: bool
    perf_outlier: bool
    perf_eligible: bool

    @property
    def any_flow(self) -> bool:
        """Counts toward the flow-anomaly test (rare or never-seen flow)."""
        return self.flow_outlier or self.new_signature


class OutlierModel:
    """The trained classifier: stage -> signature stats + thresholds."""

    def __init__(self, config: Optional[SAADConfig] = None):
        self.config = config or SAADConfig()
        self.stages: Dict[StageKey, StageModel] = {}
        self.trained = False

    # -- training ---------------------------------------------------------------
    def train(self, synopses: Iterable[TaskSynopsis]) -> "OutlierModel":
        """Build the model from a fault-free training trace."""
        return self.train_features(features_from(synopses))

    def train_features(self, features: List[FeatureVector]) -> "OutlierModel":
        config = self.config
        grouped: Dict[StageKey, Dict[Signature, List[float]]] = {}
        for feature in features:
            key = feature.stage_key if config.per_host else (0, feature.stage_id)
            grouped.setdefault(key, {}).setdefault(feature.signature, []).append(
                feature.duration
            )

        outlier_share_cutoff = 1.0 - config.flow_percentile
        for stage_key, by_signature in grouped.items():
            total = sum(len(durations) for durations in by_signature.values())
            stage_model = StageModel(stage_key=stage_key, total_tasks=total)
            flow_outlier_tasks = 0
            for signature, durations in by_signature.items():
                share = len(durations) / total
                is_flow_outlier = share < outlier_share_cutoff
                if is_flow_outlier:
                    flow_outlier_tasks += len(durations)
                profile = SignatureProfile(
                    signature=signature,
                    count=len(durations),
                    share=share,
                    is_flow_outlier=is_flow_outlier,
                )
                self._fit_duration(profile, durations)
                stage_model.signatures[signature] = profile
            stage_model.flow_outlier_share = flow_outlier_tasks / total if total else 0.0
            self.stages[stage_key] = stage_model
        self.trained = True
        return self

    def _fit_duration(self, profile: SignatureProfile, durations: List[float]) -> None:
        """Steps 2-3: percentile threshold plus k-fold stability check."""
        config = self.config
        if len(durations) < config.min_signature_samples:
            return
        profile.duration_threshold = percentile(durations, config.duration_percentile)
        nominal_rate = 1.0 - config.duration_percentile
        profile.perf_outlier_share = sum(
            1 for d in durations if d > profile.duration_threshold
        ) / len(durations)

        # k-fold cross-validation (paper Sec. 3.3.2): is the held-out
        # outlier rate consistent with what a stable distribution would
        # give?  For iid continuous data the expected exceedance of a
        # q-quantile threshold built from m samples is NOT (1-q) but
        # (m(1-q) + 1) / (m + 1)  — the order-statistic correction that
        # matters at small m.  Discard only rates far above *that*.
        rates = []
        expected_rates = []
        splits = kfold_splits(len(durations), config.kfold)
        for start, end in splits:
            held_out = durations[start:end]
            training = durations[:start] + durations[end:]
            if not held_out or len(training) < 2:
                continue
            threshold = percentile(training, config.duration_percentile)
            rates.append(sum(1 for d in held_out if d > threshold) / len(held_out))
            m = len(training)
            expected_rates.append((m * nominal_rate + 1.0) / (m + 1.0))
        if not rates:
            return
        profile.cv_outlier_rate = sum(rates) / len(rates)
        expected = sum(expected_rates) / len(expected_rates)
        profile.perf_eligible = (
            profile.cv_outlier_rate <= config.kfold_discard_factor * expected
        )

    # -- classification ---------------------------------------------------------
    def stage_key_for(self, feature: FeatureVector) -> StageKey:
        return feature.stage_key if self.config.per_host else (0, feature.stage_id)

    def stage_model(self, stage_key: StageKey) -> Optional[StageModel]:
        return self.stages.get(stage_key)

    def classify(self, feature: FeatureVector) -> TaskLabel:
        """Label one task; unknown stages yield all-normal labels."""
        if not self.trained:
            raise RuntimeError("model must be trained before classification")
        stage = self.stages.get(self.stage_key_for(feature))
        if stage is None:
            # A whole stage never seen in training: treat its tasks as new
            # flows (conservative; surfaces brand-new code paths).
            return TaskLabel(
                flow_outlier=False,
                new_signature=True,
                perf_outlier=False,
                perf_eligible=False,
            )
        profile = stage.signatures.get(feature.signature)
        if profile is None:
            return TaskLabel(
                flow_outlier=False,
                new_signature=True,
                perf_outlier=False,
                perf_eligible=False,
            )
        perf_outlier = (
            profile.perf_eligible
            and profile.duration_threshold is not None
            and feature.duration > profile.duration_threshold
        )
        return TaskLabel(
            flow_outlier=profile.is_flow_outlier,
            new_signature=False,
            perf_outlier=perf_outlier,
            perf_eligible=profile.perf_eligible,
        )

    # -- introspection ------------------------------------------------------------
    def signature_distribution(self, stage_key: StageKey) -> List[Tuple[Signature, float]]:
        """(signature, share) pairs sorted by share descending (Fig. 6 data)."""
        stage = self.stages.get(stage_key)
        if stage is None:
            return []
        return sorted(
            ((sig, prof.share) for sig, prof in stage.signatures.items()),
            key=lambda pair: pair[1],
            reverse=True,
        )

    def summary(self) -> Dict[StageKey, Tuple[int, int]]:
        """Per stage: (total tasks, distinct signatures)."""
        return {
            key: (model.total_tasks, len(model.signatures))
            for key, model in self.stages.items()
        }
