"""Columnar batch decoding + compiled per-stage classifiers (DESIGN §13).

The scalar detect path classifies one synopsis at a time: per task it
interns a signature, probes two model dicts, and compares one float.
This module lowers the trained model and the wire format into forms the
batch path (:meth:`repro.core.detector.AnomalyDetector.observe_batch`)
can process an entire frame run at a time:

* :func:`decode_columns` explodes encoded synopsis frames into parallel
  arrays — stage-id, sig-id, duration, timestamp, uid — without
  constructing a :class:`~repro.core.synopsis.TaskSynopsis` per task.
  Signatures become dense integer ids through a
  :class:`~repro.core.interning.SignatureIdSpace`.
* :func:`compile_model` lowers each trained
  :class:`~repro.core.model.StageModel` into a :class:`CompiledStage`:
  a flat ``sig-id -> verdict flags`` array plus a flat array of integer
  microsecond duration cuts, with a novel-signature fallback for ids
  the stage never trained on.  Classification is then array indexing
  plus one integer comparison — no dict walks, no float math.

The integer cuts are *exact*: for each profile's float
``duration_threshold`` the compiler finds the largest integer ``cut``
with ``cut / 1e6 <= threshold``, so ``duration_us > cut`` decides
exactly like the scalar path's ``duration_us / 1e6 > threshold``.
Equivalence is enforced bit-for-bit by ``tests/core/test_columnar.py``.

Compiled tables are immutable snapshots of one model **generation**
(:attr:`~repro.core.model.OutlierModel.generation`); retraining bumps
the generation and consumers recompile (the invalidation-on-retrain
contract, DESIGN §13).  The same tables back ``python -m repro rules``
(:mod:`repro.core.rules`), which renders them as readable per-stage
rule text.

numpy is a declared dependency and drives the vectorized batch path;
every consumer still degrades to the exact scalar path when it is
missing (``HAVE_NUMPY``), so the module imports lazily and never hard-
fails.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry import NULL_REGISTRY

from .features import StageKey
from .interning import SignatureIdSpace
from .model import _LABEL_NEW_SIGNATURE, OutlierModel, TaskLabel
from .synopsis import FRAME_HEADER, SYNOPSIS_HEADER

try:  # pragma: no cover - exercised via HAVE_NUMPY in both states
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: True when the vectorized decode path is available; the detector falls
#: back to the exact per-task path otherwise.
HAVE_NUMPY = _np is not None

#: Verdict flag bits in :attr:`CompiledStage.flags` (0 == novel).
KNOWN = 1
FLOW_OUTLIER = 2
PERF_ELIGIBLE = 4

#: Sentinel cut for signatures without a finite duration threshold: no
#: encodable (int32) wire duration exceeds it, so the comparison path
#: needs no None checks.
NO_CUT = 1 << 62

#: Bits reserved for sig-ids inside packed (stage, sig-id) cell keys;
#: must cover :data:`repro.core.interning.MAX_SIGNATURE_IDS`.
SIG_BITS = 17

_HEADER_SIZE = SYNOPSIS_HEADER.size
_FRAME_HEADER_SIZE = FRAME_HEADER.size
_ENTRY_SIZE = 6


def exact_duration_cut(threshold: float) -> int:
    """Largest integer ``cut`` with ``cut / 1_000_000.0 <= threshold``.

    ``duration_us > exact_duration_cut(t)`` then decides exactly like
    the scalar path's ``duration_us / 1_000_000.0 > t`` for every wire
    duration — the float division is monotone in the integer numerator,
    so a single integer boundary separates the two verdicts.
    """
    # Wire durations are int32; thresholds beyond that range need no
    # search (also guards against absurd thresholds making the
    # correction loops below walk far).
    if threshold >= 2147.483647:  # (2**31 - 1) / 1e6
        return NO_CUT
    if threshold < -2147.483648:  # -(2**31) / 1e6
        return -NO_CUT
    cut = int(threshold * 1_000_000.0)
    while cut / 1_000_000.0 > threshold:
        cut -= 1
    while (cut + 1) / 1_000_000.0 <= threshold:
        cut += 1
    return cut


class CompiledStage:
    """One stage's classifier lowered to flat verdict tables.

    ``flags[sig_id]`` holds the verdict bits (:data:`KNOWN`,
    :data:`FLOW_OUTLIER`, :data:`PERF_ELIGIBLE`); ``cuts[sig_id]`` holds
    the exact integer microsecond duration cut (:data:`NO_CUT` when the
    profile has no usable threshold).  Ids at or past ``len(flags)`` —
    signatures first seen after compilation — fall back to the
    novel-signature verdict, exactly like the scalar path's dict miss.
    """

    __slots__ = ("stage_key", "flags", "cuts", "total_tasks", "flow_outlier_share")

    def __init__(
        self,
        stage_key: StageKey,
        flags: bytearray,
        cuts: List[int],
        total_tasks: int = 0,
        flow_outlier_share: float = 0.0,
    ):
        self.stage_key = stage_key
        self.flags = flags
        self.cuts = cuts
        self.total_tasks = total_tasks
        self.flow_outlier_share = flow_outlier_share

    def rule(self, sig_id: int) -> Tuple[int, int]:
        """``(flags, cut)`` for one sig-id; ``(0, NO_CUT)`` when novel."""
        if 0 <= sig_id < len(self.flags):
            flag = self.flags[sig_id]
            if flag & KNOWN:
                return flag, self.cuts[sig_id]
        return 0, NO_CUT

    def classify(self, sig_id: int, duration_us: int) -> TaskLabel:
        """Verdict for one (sig-id, integer µs duration) pair.

        Bit-identical to
        :meth:`repro.core.model.OutlierModel.classify_parts` on the
        decoded equivalents — the columnar equivalence suite holds the
        two paths to the same answers.
        """
        flag, cut = self.rule(sig_id)
        if not flag & KNOWN:
            return _LABEL_NEW_SIGNATURE
        return TaskLabel(
            flow_outlier=bool(flag & FLOW_OUTLIER),
            new_signature=False,
            perf_outlier=bool(flag & PERF_ELIGIBLE) and duration_us > cut,
            perf_eligible=bool(flag & PERF_ELIGIBLE),
        )


class CompiledModel:
    """Every stage of one trained model, lowered (see :func:`compile_model`).

    Holds the :class:`~repro.core.interning.SignatureIdSpace` that
    defines the sig-id vocabulary of its tables, the source model's
    ``generation`` for staleness checks, and the per-stage
    :class:`CompiledStage` tables keyed by the packed stage int
    (``host_id << 8 | stage_id``; plain ``stage_id`` when the model
    ignores hosts).
    """

    __slots__ = ("model", "generation", "space", "stages", "per_host")

    def __init__(
        self,
        model: OutlierModel,
        space: SignatureIdSpace,
        stages: Dict[int, CompiledStage],
    ):
        self.model = model
        self.generation = model.generation
        self.space = space
        self.stages = stages
        self.per_host = model.config.per_host

    @property
    def stale(self) -> bool:
        """True when the source model has been retrained since compile."""
        return self.generation != self.model.generation

    def stage(self, host_id: int, stage_id: int) -> Optional[CompiledStage]:
        """The compiled table for one stage key, or None when untrained."""
        key = (host_id << 8) | stage_id if self.per_host else stage_id
        return self.stages.get(key)

    def rule(self, cell: int) -> Tuple[int, int]:
        """``(flags, cut)`` for a packed ``stage_int << SIG_BITS | sig_id``
        cell key; ``(0, NO_CUT)`` for untrained stages (novel verdict)."""
        stage = self.stages.get(cell >> SIG_BITS)
        if stage is None:
            return 0, NO_CUT
        return stage.rule(cell & ((1 << SIG_BITS) - 1))

    def classify(self, host_id: int, stage_id: int, sig_id: int, duration_us: int) -> TaskLabel:
        """Verdict for one task from its columnar fields."""
        stage = self.stage(host_id, stage_id)
        if stage is None:
            return _LABEL_NEW_SIGNATURE
        return stage.classify(sig_id, duration_us)


def compile_model(
    model: OutlierModel,
    space: Optional[SignatureIdSpace] = None,
    registry=None,
) -> CompiledModel:
    """Lower a trained model into :class:`CompiledStage` verdict tables.

    Every signature the model knows is assigned a dense id in ``space``
    (fresh by default) *before* the tables are sized, so any id minted
    later by live traffic is novel by construction.  ``registry``
    receives the ``compile_*`` counters (defaults to the null registry —
    compilation is rare, but the telemetry shows when it happens).

    Raises ``RuntimeError`` for an untrained model, mirroring
    :meth:`~repro.core.model.OutlierModel.classify_parts`.
    """
    if not model.trained:
        raise RuntimeError("model must be trained before compilation")
    registry = registry if registry is not None else NULL_REGISTRY
    m_stages = registry.counter(
        "compile_stages", "stage classifier tables lowered by the model compiler"
    )
    m_signatures = registry.counter(
        "compile_signatures", "signature rules lowered into verdict tables"
    )
    space = space if space is not None else SignatureIdSpace()
    per_host = model.config.per_host
    # First pass assigns ids so every stage's table covers the full
    # compile-time vocabulary (stages share one id space).
    for stage_model in model.stages.values():
        for signature in stage_model.signatures:
            space.id_of(signature)
    size = len(space)
    stages: Dict[int, CompiledStage] = {}
    for stage_key, stage_model in model.stages.items():
        host_id, stage_id = stage_key
        flags = bytearray(size)
        cuts = [NO_CUT] * size
        for signature, profile in stage_model.signatures.items():
            sig_id = space.id_of(signature)
            if sig_id is None or sig_id >= size:  # id space exhausted
                continue
            flag = KNOWN
            if profile.is_flow_outlier:
                flag |= FLOW_OUTLIER
            if profile.perf_eligible:
                flag |= PERF_ELIGIBLE
                if profile.duration_threshold is not None:
                    cuts[sig_id] = exact_duration_cut(profile.duration_threshold)
            flags[sig_id] = flag
            m_signatures.inc()
        cell = (host_id << 8) | stage_id if per_host else stage_id
        stages[cell] = CompiledStage(
            stage_key=stage_key,
            flags=flags,
            cuts=cuts,
            total_tasks=stage_model.total_tasks,
            flow_outlier_share=stage_model.flow_outlier_share,
        )
        m_stages.inc()
    return CompiledModel(model, space, stages)


def scan_frames(data, offset: int = 0) -> Tuple[List[int], int, Optional[str]]:
    """Walk concatenated wire frames; collect each synopsis's offset.

    Returns ``(offsets, end_offset, error)`` where ``error`` is the
    message the scalar path would raise for the same malformed input
    (None for a clean scan).  Offsets cover every *complete* synopsis
    scanned before the error point, so a caller can ingest exactly what
    the scalar path would have ingested before raising — the batch path
    relies on this for error-for-error equivalence.
    """
    offsets: List[int] = []
    unpack_frame = FRAME_HEADER.unpack_from
    end = offset
    total = len(data)
    while offset < total:
        if total - offset < _FRAME_HEADER_SIZE:
            return offsets, end, "truncated frame header"
        length, count = unpack_frame(data, offset)
        start = offset + _FRAME_HEADER_SIZE
        frame_end = start + length
        if total < frame_end:
            return offsets, end, "truncated frame payload"
        record = start
        seen = 0
        while record < frame_end:
            if frame_end - record < _HEADER_SIZE:
                return offsets, end, "truncated synopsis header"
            record_end = record + _HEADER_SIZE + _ENTRY_SIZE * data[record + 18]
            if record_end > frame_end:
                return offsets, end, "truncated synopsis log point entries"
            offsets.append(record)
            seen += 1
            record = record_end
        if seen != count:
            return (
                offsets,
                end,
                f"frame count mismatch: header says {count}, payload "
                f"holds {seen}",
            )
        offset = end = frame_end
    return offsets, end, None


def _gather_u64(b, offs, at: int, nbytes: int):
    """Little-endian integer field at ``offs + at`` as an int64 column."""
    value = b[offs + at].astype(_np.int64)
    for i in range(1, nbytes):
        value |= b[offs + at + i].astype(_np.int64) << (8 * i)
    return value


def resolve_sig_ids(b, offs, counts, space: SignatureIdSpace):
    """Sig-id column for the records at ``offs`` (numpy path).

    ``counts`` is the per-record log-point entry count column.  Records
    are grouped by entry count; within a group the fixed-width entry
    byte patterns are gathered into rows and deduplicated
    (``np.unique`` on a void view — exact byte equality, no hashing
    tricks), so the Python-level signature interning runs once per
    *distinct* pattern instead of once per task.  Returns None when the
    id space fills up mid-batch (callers fall back to the exact scalar
    path).
    """
    sig_ids = _np.empty(len(offs), dtype=_np.int64)
    for n in _np.unique(counts):
        member = _np.flatnonzero(counts == n)
        if n == 0:
            sig_id = space.resolve_entry(b"")
            if sig_id is None:
                return None
            sig_ids[member] = sig_id
            continue
        width = _ENTRY_SIZE * int(n)
        rows = b[offs[member, None] + _np.arange(width, dtype=_np.int64)]
        patterns, inverse = _np.unique(
            _np.ascontiguousarray(rows).view(_np.dtype((_np.void, width))).ravel(),
            return_inverse=True,
        )
        ids = _np.empty(len(patterns), dtype=_np.int64)
        for i, pattern in enumerate(patterns):
            sig_id = space.resolve_entry(pattern.tobytes())
            if sig_id is None:
                return None
            ids[i] = sig_id
        sig_ids[member] = ids[inverse]
    return sig_ids


class FrameColumns:
    """Decoded frames as parallel columns (the columnar exchange format).

    Attributes are numpy ``int64`` arrays (plain Python lists without
    numpy), one element per synopsis in scan order: ``host_id``,
    ``stage_id``, ``sig_id`` (dense ids in ``space``), ``duration_us``,
    ``ts_ms``, and ``uid``.  No per-task objects are constructed;
    :meth:`signature` recovers the shared
    :class:`~repro.core.interning.InternedSignature` behind an id.
    """

    __slots__ = ("host_id", "stage_id", "sig_id", "duration_us", "ts_ms", "uid", "space")

    def __init__(self, host_id, stage_id, sig_id, duration_us, ts_ms, uid, space):
        self.host_id = host_id
        self.stage_id = stage_id
        self.sig_id = sig_id
        self.duration_us = duration_us
        self.ts_ms = ts_ms
        self.uid = uid
        self.space = space

    def __len__(self) -> int:
        """Number of decoded synopses."""
        return len(self.host_id)

    def signature(self, sig_id: int):
        """The interned signature object behind one dense id."""
        return self.space.signature_of(sig_id)


def decode_columns(
    data, offset: int = 0, space: Optional[SignatureIdSpace] = None
) -> FrameColumns:
    """Explode concatenated wire frames into a :class:`FrameColumns`.

    Raises ``ValueError`` with the scalar decoder's message on
    malformed input.  Requires numpy for the vectorized gathers; when
    unavailable, falls back to an exact per-record loop (same columns,
    Python lists).  Mostly a debugging/analysis surface — the detector
    fuses this decode with counting and never materializes all columns.
    """
    space = space if space is not None else SignatureIdSpace()
    offsets, _, error = scan_frames(data, offset)
    if error is not None:
        raise ValueError(error)
    if not HAVE_NUMPY:
        host, stage, sig, dur, ts, uid = [], [], [], [], [], []
        unpack = SYNOPSIS_HEADER.unpack_from
        for record in offsets:
            host_id, stage_id, uid_v, ts_ms, duration_us, n = unpack(data, record)
            entries = bytes(data[record + _HEADER_SIZE : record + _HEADER_SIZE + 6 * n])
            host.append(host_id)
            stage.append(stage_id)
            sig.append(space.resolve_entry(entries))
            dur.append(duration_us)
            ts.append(ts_ms)
            uid.append(uid_v)
        return FrameColumns(host, stage, sig, dur, ts, uid, space)
    b = _np.frombuffer(bytes(data), dtype=_np.uint8)
    offs = _np.asarray(offsets, dtype=_np.int64)
    counts = b[offs + 18].astype(_np.int64) if len(offs) else _np.empty(0, _np.int64)
    sig_ids = resolve_sig_ids(b, offs + _HEADER_SIZE, counts, space)
    if sig_ids is None:
        raise ValueError("signature id space exhausted while decoding columns")
    duration = (
        _gather_u64(b, offs, 14, 4).astype(_np.uint32).view(_np.int32).astype(_np.int64)
        if len(offs)
        else _np.empty(0, _np.int64)
    )
    return FrameColumns(
        host_id=b[offs].astype(_np.int64),
        stage_id=b[offs + 1].astype(_np.int64),
        sig_id=sig_ids,
        duration_us=duration,
        ts_ms=_gather_u64(b, offs, 6, 8),
        uid=_gather_u64(b, offs, 2, 4),
        space=space,
    )


def window_boundaries(
    ts_lo: int, ts_hi: int, width: float, max_windows: int = 4096
) -> Optional[Tuple[int, List[int]]]:
    """Exact integer-ms window boundaries covering ``[ts_lo, ts_hi]``.

    The scalar path maps a task to its window with float math —
    ``int((ts_ms / 1000.0) // width)`` — and the batch path must agree
    bit-for-bit.  Rather than trusting vectorized float semantics, the
    mapping is reduced to integer comparisons: because it is monotone
    in ``ts_ms``, each window index has a first integer millisecond,
    found here by bisection *using the scalar expression itself*.
    Returns ``(first_index, boundaries)`` where ``boundaries[j]`` is
    the first ``ts_ms`` of window ``first_index + 1 + j``; a
    searchsorted against them reproduces the scalar mapping exactly.

    Returns None when the span covers more than ``max_windows`` windows
    (callers fall back to the scalar path instead of building a huge
    table).
    """

    def index_of(ts_ms: int) -> int:
        return int((ts_ms / 1000.0) // width)

    first = index_of(ts_lo)
    last = index_of(ts_hi)
    if last - first > max_windows:
        return None
    boundaries: List[int] = []
    lo = ts_lo
    for index in range(first + 1, last + 1):
        # First integer t in (lo, ts_hi] with index_of(t) >= index.
        hi = ts_hi
        while lo < hi:
            mid = (lo + hi) // 2
            if index_of(mid) >= index:
                hi = mid
            else:
                lo = mid + 1
        boundaries.append(lo)
    return first, boundaries


__all__ = [
    "CompiledModel",
    "CompiledStage",
    "FLOW_OUTLIER",
    "FrameColumns",
    "HAVE_NUMPY",
    "KNOWN",
    "NO_CUT",
    "PERF_ELIGIBLE",
    "SIG_BITS",
    "compile_model",
    "decode_columns",
    "exact_duration_cut",
    "resolve_sig_ids",
    "scan_frames",
    "window_boundaries",
]
