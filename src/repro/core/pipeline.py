"""End-to-end SAAD wiring: node runtimes + the central analyzer.

:class:`SAAD` is the facade a deployment (or a simulation) uses:

* shared :class:`StageRegistry` and :class:`LogPointRegistry` produced by
  the one-time instrumentation pass;
* per-node :class:`NodeRuntime` bundling a logger repository, the task
  execution tracker, and a synopsis stream;
* a central :class:`SynopsisCollector`, :class:`OutlierModel` training,
  and the streaming :class:`AnomalyDetector`;
* the fleet health surface: a lazy
  :class:`~repro.health.HealthEngine` behind :meth:`SAAD.health`, fed
  by the registry (federated node snapshots included) and answering
  the wire ``HEALTH`` probe of a listening deployment.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional

from repro.loglib import INFO, LoggerRepository
from repro.telemetry import MetricsRegistry

from .config import SAADConfig
from .context import RealThreadContext, SimThreadContext, ThreadContextProvider
from .detector import AnomalyDetector, AnomalyEvent
from .logpoints import LogPointRegistry
from .model import OutlierModel
from .report import AnomalyReporter
from .stages import StageRegistry
from .stream import DEFAULT_FLUSH_SIZE, SynopsisCollector, SynopsisStream
from .synopsis import TaskSynopsis
from .tracker import TaskExecutionTracker


class NodeRuntime:
    """Everything SAAD installs on one server node: a logger repository,
    the task execution tracker intercepting it, and the synopsis stream
    the tracker feeds.  Construct through :meth:`SAAD.add_node` — the
    facade assigns host ids and threads its shared telemetry registry
    through (each node's metrics carry a ``host=<id>`` label)."""

    def __init__(
        self,
        saad: "SAAD",
        host_id: int,
        host_name: str,
        context: ThreadContextProvider,
        clock: Callable[[], float],
        log_level: int = INFO,
        wire_format: bool = False,
        wire_flush_size: int = DEFAULT_FLUSH_SIZE,
        tracker_enabled: bool = True,
    ):
        self.saad = saad
        self.host_id = host_id
        self.host_name = host_name
        registry = saad.registry
        self.stream = SynopsisStream(
            wire_format=wire_format,
            retain=False,
            flush_size=wire_flush_size,
            registry=registry,
            host=str(host_id),
        )
        self.tracker = TaskExecutionTracker(
            host_id=host_id,
            sink=self.stream.sink,
            context=context,
            clock=clock,
            enabled=tracker_enabled,
            registry=registry,
            tracer=saad.tracer,
        )
        self.repository = LoggerRepository(
            root_level=log_level,
            clock=clock,
            thread_namer=context.thread_name,
        )
        if tracker_enabled:
            self.repository.add_interceptor(self.tracker)
        self._client = None

    def logger(self, name: str):
        """A named logger from this node's repository (tracker attached)."""
        return self.repository.get_logger(name)

    def set_context(self, stage_name: str) -> None:
        """Stage delimiter by name (resolved through the shared registry)."""
        stage = self.saad.stages.by_name(stage_name)
        self.tracker.set_context(stage.stage_id)

    def end_task(self) -> Optional[TaskSynopsis]:
        """Explicitly finalize the current thread's open task."""
        return self.tracker.end_task()

    def connect(
        self,
        address,
        *,
        compression: bool = False,
        node: Optional[str] = None,
        telemetry_source=None,
        telemetry_interval_s: Optional[float] = 30.0,
    ) -> None:
        """Ship this node's wire frames to a remote analyzer over TCP.

        ``address`` is the ``(host, port)`` a
        :class:`~repro.shard.server.SynopsisServer` is listening on
        (e.g. :attr:`SAAD.address` of a ``SAAD(listen=...)``
        deployment).  Requires the node to run with ``wire_format=True``
        — frames are the transport unit.  The previous ``frame_sink``
        (if any) is replaced.

        The sender negotiates the credit/ack ingest protocol and tunes
        this node's ``flush_size`` adaptively from ack round-trips (the
        client's :class:`~repro.shard.server.AdaptiveFlush` controller
        writes straight through to the stream).  ``compression=True``
        requests zlib frame compression; the server may decline.

        Telemetry federation (docs/OPERATIONS.md §9) is opt-in: pass
        ``telemetry_source`` (this node's deployment registry, or any
        ``collect()``-able / zero-arg callable) and registry snapshots
        piggyback on the data stream every ``telemetry_interval_s``
        seconds, landing in the analyzer's fleet view under
        ``node=<node>`` (default: this runtime's ``host_name``).  It is
        off by default because a loopback node shares :attr:`SAAD.
        registry` with its analyzer — federating that registry into
        itself would double-count; only ship a *remote* deployment's
        registry.
        """
        if not self.stream.wire_format:
            raise ValueError("connect() requires a wire_format=True node")
        from repro.shard.server import FrameClient

        if self._client is not None:
            self._client.close()
        stream = self.stream
        self._client = FrameClient(
            address,
            registry=self.saad.registry,
            compression=compression,
            on_flush_size=lambda size: setattr(stream, "flush_size", size),
            node=node or self.host_name,
            telemetry_source=telemetry_source,
            telemetry_interval_s=telemetry_interval_s,
        )
        self.stream.frame_sink = self._client

    def probe_health(self, timeout: Optional[float] = None) -> dict:
        """Ask the connected analyzer for its health report.

        Round-trips the wire ``HEALTH`` probe on this node's sender and
        returns the analyzer-side :meth:`SAAD.health` payload (state,
        firing alerts, per-rule statuses, incident flag).  Requires
        :meth:`connect` first.
        """
        if self._client is None:
            raise RuntimeError("probe_health() requires connect() first")
        return self._client.health(timeout=timeout)

    def disconnect(self) -> None:
        """Flush pending frames and close the TCP sender.  Idempotent."""
        if self._client is None:
            return
        self.stream.flush_wire()
        self._client.close()
        self._client = None
        self.stream.frame_sink = None


class SAAD:
    """The deployment facade tying registries, nodes, and the analyzer.

    Parameters
    ----------
    config:
        Analyzer configuration; defaults to a fresh :class:`SAADConfig`.
    registry:
        The deployment's shared telemetry registry.  Defaults to a fresh
        :class:`~repro.telemetry.MetricsRegistry`; every node runtime,
        the collector, training, and detectors created through this
        facade register into it, so one
        ``python -m repro stats`` snapshot covers the whole deployment.
        Pass a :class:`~repro.telemetry.NullRegistry` to disable.
    tracer:
        The deployment's shared :class:`~repro.tracing.Tracer`; pass
        one to control capacities/sampling.  Defaults to the inert
        :data:`~repro.tracing.NULL_TRACER` unless ``tracing=True``.
    tracing:
        Convenience switch: True builds a default
        :class:`~repro.tracing.Tracer` on the shared telemetry registry.
        Ignored when an explicit ``tracer`` is passed.
    shards:
        Scale-out switch: partition detection across this many worker
        processes (see :class:`~repro.shard.ShardedAnalyzer` and
        DESIGN.md §12).  :meth:`detect` then routes through a sharded
        pool, and :meth:`shard` hands out long-lived pools.  Default
        None keeps the single-process analyzer.
    listen:
        ``(host, port)`` to accept wire frames over TCP: starts a
        :class:`~repro.shard.SynopsisServer` feeding this deployment's
        collector (port 0 picks a free port; see :attr:`address`).
        Remote nodes connect with :meth:`NodeRuntime.connect`.
    fleet:
        Elastic scale-out switch: analyzer node ids (or a count) for a
        gossip-coordinated loopback fleet (see
        :class:`~repro.fleet.AnalyzerFleet` and DESIGN.md §16).
        :meth:`detect` then routes through a fleet, and :meth:`fleet`
        hands out long-lived ones with ``kill``/``join`` membership
        drills.  Mutually exclusive with ``shards``.
    """

    def __init__(
        self,
        config: Optional[SAADConfig] = None,
        registry=None,
        tracer=None,
        tracing: bool = False,
        shards: Optional[int] = None,
        listen=None,
        fleet=None,
    ):
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1: {shards}")
        if fleet is not None and shards is not None:
            raise ValueError("pass shards= or fleet=, not both")
        if isinstance(fleet, int) and fleet < 1:
            raise ValueError(f"fleet needs at least one node: {fleet}")
        self.config = config or SAADConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None:
            from repro.tracing import NULL_TRACER, Tracer

            tracer = Tracer(registry=self.registry) if tracing else NULL_TRACER
        self.tracer = tracer
        self.stages = StageRegistry()
        self.logpoints = LogPointRegistry()
        self.collector = SynopsisCollector(retain=True, registry=self.registry)
        self.nodes: Dict[str, NodeRuntime] = {}
        self.model: Optional[OutlierModel] = None
        self.shards = shards
        self.fleet_nodes = fleet
        self.server = None
        self._health_engine = None
        self.registry.gauge(
            "saad_nodes", "node runtimes registered with this deployment"
        ).set_function(lambda: len(self.nodes))
        if listen is not None:
            self.listen(*listen)

    # -- node management ----------------------------------------------------
    def add_node(
        self,
        host_name: str,
        context: Optional[ThreadContextProvider] = None,
        clock: Optional[Callable[[], float]] = None,
        log_level: int = INFO,
        wire_format: bool = False,
        wire_flush_size: int = DEFAULT_FLUSH_SIZE,
        tracker_enabled: bool = True,
    ) -> NodeRuntime:
        """Create and register the runtime for one node."""
        if host_name in self.nodes:
            raise ValueError(f"node {host_name!r} already registered")
        node = NodeRuntime(
            saad=self,
            host_id=len(self.nodes),
            host_name=host_name,
            context=context or RealThreadContext(),
            clock=clock or _time.time,
            log_level=log_level,
            wire_format=wire_format,
            wire_flush_size=wire_flush_size,
            tracker_enabled=tracker_enabled,
        )
        self.collector.attach(node.stream)
        self.nodes[host_name] = node
        return node

    def add_sim_node(self, host_name: str, env, **kwargs) -> NodeRuntime:
        """Node runtime wired to a simulation environment's clock/threads."""
        return self.add_node(
            host_name,
            context=SimThreadContext(env),
            clock=lambda: env.now,
            **kwargs,
        )

    @property
    def host_names(self) -> Dict[int, str]:
        """host_id -> host_name for every registered node."""
        return {node.host_id: name for name, node in self.nodes.items()}

    # -- analyzer -----------------------------------------------------------
    def train(self, synopses: Optional[List[TaskSynopsis]] = None) -> OutlierModel:
        """Train the outlier model (default: everything collected so far)."""
        trace = synopses if synopses is not None else self.collector.synopses
        self.model = OutlierModel(self.config, registry=self.registry).train(trace)
        # From here on the tracer's tail retention is model-driven: keep
        # traces the trained classifier would flag, not just novel ones.
        self.tracer.set_model(self.model)
        return self.model

    def detector(self, lateness_s: float = 0.0) -> AnomalyDetector:
        """A fresh streaming detector bound to the trained model."""
        if self.model is None:
            raise RuntimeError("call train() before creating a detector")
        return AnomalyDetector(
            self.model,
            self.config,
            lateness_s=lateness_s,
            registry=self.registry,
            tracer=self.tracer,
            on_event=self._note_anomaly,
        )

    def stream_detector(self, lateness_s: float = 0.0) -> AnomalyDetector:
        """A detector fed frame-wise by this deployment's collector.

        Builds a :meth:`detector` and subscribes its columnar
        :meth:`~repro.core.detector.AnomalyDetector.observe_batch` to
        the collector's frame fan-out
        (:meth:`~repro.core.stream.SynopsisCollector.subscribe_frames`),
        so wire frames arriving over TCP (:meth:`listen`) or from local
        wire-format nodes are classified straight from their bytes —
        no per-synopsis object decode on the detection path.  The
        caller owns the detector's lifecycle (``flush()`` at end of
        stream); its anomalies accumulate on ``detector.anomalies``.
        """
        detector = self.detector(lateness_s=lateness_s)
        self.collector.subscribe_frames(detector.observe_batch)
        return detector

    def shard(self, shards: Optional[int] = None, lateness_s: float = 0.0):
        """A sharded analyzer pool bound to the trained model.

        ``shards`` defaults to the facade's ``shards`` setting.  The
        pool shares this deployment's telemetry registry and tracer, so
        ``shard_*`` metrics land in the same snapshot and merged events
        resolve their exemplar trace keys against the deployment's
        traces.  Callers own the pool's lifecycle (``flush`` /
        ``close``, or use it as a context manager).
        """
        if self.model is None:
            raise RuntimeError("call train() before creating a sharded analyzer")
        shards = shards if shards is not None else self.shards
        if shards is None:
            raise ValueError("pass shards= here or to the SAAD constructor")
        from repro.shard import ShardedAnalyzer

        return ShardedAnalyzer(
            self.model,
            shards,
            lateness_s=lateness_s,
            registry=self.registry,
            tracer=self.tracer,
        )

    def fleet(self, nodes=None, lateness_s: float = 0.0, **kwargs):
        """A gossip-coordinated analyzer fleet bound to the trained model.

        ``nodes`` (ids or a count) defaults to the facade's ``fleet``
        setting.  The fleet shares this deployment's telemetry registry
        so ``fleet_*`` membership/ring/reroute metrics land in the same
        snapshot.  Callers own the fleet's lifecycle (``flush`` /
        ``close``, or use it as a context manager); ``kill``/``join``
        drive elastic resharding (DESIGN.md §16).
        """
        if self.model is None:
            raise RuntimeError("call train() before creating a fleet")
        nodes = nodes if nodes is not None else self.fleet_nodes
        if nodes is None:
            raise ValueError("pass nodes= here or fleet= to the SAAD constructor")
        from repro.fleet import AnalyzerFleet

        return AnalyzerFleet(
            self.model,
            nodes,
            config=self.config,
            lateness_s=lateness_s,
            registry=self.registry,
            **kwargs,
        )

    def detect(self, synopses: List[TaskSynopsis]) -> List[AnomalyEvent]:
        """Batch detection convenience: stream a list, flush, return events.

        With ``shards`` or ``fleet`` configured the batch runs through
        the corresponding scale-out path; the returned events are
        identical (canonically ordered) either way.
        """
        if self.fleet_nodes is not None:
            with self.fleet() as fleet:
                fleet.dispatch(synopses)
                events = fleet.close()
                for event in events:
                    self._note_anomaly(event)
                return events
        if self.shards is not None and self.shards > 1:
            with self.shard() as analyzer:
                analyzer.dispatch(synopses)
                analyzer.close()
                for event in analyzer.anomalies:
                    self._note_anomaly(event)
                return analyzer.anomalies
        from repro.shard import EVENT_ORDER

        detector = self.detector()
        for synopsis in synopses:
            detector.observe(synopsis)
        detector.flush()
        return sorted(detector.anomalies, key=EVENT_ORDER)

    # -- health -------------------------------------------------------------
    def health_engine(self, rules=None, **kwargs):
        """The deployment's :class:`~repro.health.HealthEngine` (lazy).

        Created on first use against the shared registry — with the
        built-in rule pack (:func:`~repro.health.builtin_rules`) unless
        ``rules`` is given; extra keyword arguments (hysteresis,
        history) pass through to the engine constructor.  Later calls
        return the existing engine and must be argument-free: the
        engine carries alert state and incident history, so silently
        rebuilding it would discard both.

        Once the engine exists, detector anomalies emitted through this
        facade (:meth:`detector`, :meth:`stream_detector`,
        :meth:`detect`) land on its incident timeline automatically.
        """
        if self._health_engine is None:
            from repro.health import HealthEngine

            self._health_engine = HealthEngine(
                self.registry, rules=rules, **kwargs
            )
        elif rules is not None or kwargs:
            raise RuntimeError(
                "health engine already created; it keeps alert/incident "
                "state, so reconfiguring it here would silently drop that"
            )
        return self._health_engine

    def health(self) -> dict:
        """One JSON-able health report for this deployment.

        Evaluates the rule pack against the live registry (federated
        node snapshots included) and returns
        :meth:`~repro.health.HealthEngine.report_dict`.  Creates the
        engine on first use; remote senders receive exactly this
        payload from the wire ``HEALTH`` probe
        (:meth:`NodeRuntime.probe_health`).
        """
        return self.health_engine().report_dict()

    def _note_anomaly(self, event) -> None:
        """Detector hook: correlate an anomaly with any open incident."""
        engine = self._health_engine
        if engine is not None:
            engine.note_anomaly(event)

    # -- transport ----------------------------------------------------------
    def listen(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        credit_window: Optional[int] = None,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        shed_watermark: Optional[int] = None,
        hard_watermark: Optional[int] = None,
        compression: bool = True,
    ):
        """Start (or return) the deployment's TCP synopsis server.

        Frames received on the socket feed the central collector via
        its reassembly inlet (:meth:`~repro.core.stream.
        SynopsisCollector.feed`), exactly as locally attached streams
        do.  Returns the bound ``(host, port)``.

        The overload knobs (docs/OPERATIONS.md §8) pass through to the
        server: ``credit_window`` bounds each connection's in-flight
        bytes, reads pause/resume at ``high_watermark`` /
        ``low_watermark`` of backlog, and a ``shed_watermark`` attaches
        a :class:`~repro.shard.LoadShedder` dropping head-sampled
        frames first (exemplar-bearing ones only past
        ``hard_watermark``, default twice the shed mark).  Omitted
        knobs take the server defaults; without ``shed_watermark`` no
        shedding happens — only backpressure.

        The server also carries the fleet observability plane
        (docs/OPERATIONS.md §9): ``TELEMETRY`` snapshots from senders
        merge into this registry's federation under ``node=<id>``
        labels, and ``HEALTH`` probes are answered with
        :meth:`health`.
        """
        if self.server is None:
            from repro.shard import LoadShedder, SynopsisServer

            shedder = None
            if shed_watermark is not None:
                shedder = LoadShedder(
                    shed_watermark, hard_watermark, registry=self.registry
                )
            self.server = SynopsisServer(
                self.collector.feed,
                host=host,
                port=port,
                registry=self.registry,
                credit_window=credit_window,
                high_watermark=high_watermark,
                low_watermark=low_watermark,
                shedder=shedder,
                compression=compression,
                federation=self.registry.federation(),
                health=self.health,
            )
            self.server.start()
        return self.server.address

    @property
    def address(self):
        """The TCP server's bound ``(host, port)``; None when not listening."""
        return self.server.address if self.server is not None else None

    def close(self) -> None:
        """Shut down transports and seal the collector.

        Disconnects every node's TCP sender (flushing pending frames
        first), stops the listen server, and closes the collector —
        which raises if a truncated frame would have lost the last
        batch (see :meth:`~repro.core.stream.SynopsisCollector.close`).
        """
        for node in self.nodes.values():
            node.disconnect()
        try:
            self.collector.close()
        finally:
            if self.server is not None:
                self.server.close()
                self.server = None

    def reporter(self) -> AnomalyReporter:
        """A reporter resolving ids through this deployment's registries."""
        return AnomalyReporter(self.stages, self.logpoints, self.host_names)
