"""End-to-end SAAD wiring: node runtimes + the central analyzer.

:class:`SAAD` is the facade a deployment (or a simulation) uses:

* shared :class:`StageRegistry` and :class:`LogPointRegistry` produced by
  the one-time instrumentation pass;
* per-node :class:`NodeRuntime` bundling a logger repository, the task
  execution tracker, and a synopsis stream;
* a central :class:`SynopsisCollector`, :class:`OutlierModel` training,
  and the streaming :class:`AnomalyDetector`.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional

from repro.loglib import INFO, LoggerRepository
from repro.telemetry import MetricsRegistry

from .config import SAADConfig
from .context import RealThreadContext, SimThreadContext, ThreadContextProvider
from .detector import AnomalyDetector, AnomalyEvent
from .logpoints import LogPointRegistry
from .model import OutlierModel
from .report import AnomalyReporter
from .stages import StageRegistry
from .stream import DEFAULT_FLUSH_SIZE, SynopsisCollector, SynopsisStream
from .synopsis import TaskSynopsis
from .tracker import TaskExecutionTracker


class NodeRuntime:
    """Everything SAAD installs on one server node: a logger repository,
    the task execution tracker intercepting it, and the synopsis stream
    the tracker feeds.  Construct through :meth:`SAAD.add_node` — the
    facade assigns host ids and threads its shared telemetry registry
    through (each node's metrics carry a ``host=<id>`` label)."""

    def __init__(
        self,
        saad: "SAAD",
        host_id: int,
        host_name: str,
        context: ThreadContextProvider,
        clock: Callable[[], float],
        log_level: int = INFO,
        wire_format: bool = False,
        wire_flush_size: int = DEFAULT_FLUSH_SIZE,
        tracker_enabled: bool = True,
    ):
        self.saad = saad
        self.host_id = host_id
        self.host_name = host_name
        registry = saad.registry
        self.stream = SynopsisStream(
            wire_format=wire_format,
            retain=False,
            flush_size=wire_flush_size,
            registry=registry,
            host=str(host_id),
        )
        self.tracker = TaskExecutionTracker(
            host_id=host_id,
            sink=self.stream.sink,
            context=context,
            clock=clock,
            enabled=tracker_enabled,
            registry=registry,
            tracer=saad.tracer,
        )
        self.repository = LoggerRepository(
            root_level=log_level,
            clock=clock,
            thread_namer=context.thread_name,
        )
        if tracker_enabled:
            self.repository.add_interceptor(self.tracker)

    def logger(self, name: str):
        """A named logger from this node's repository (tracker attached)."""
        return self.repository.get_logger(name)

    def set_context(self, stage_name: str) -> None:
        """Stage delimiter by name (resolved through the shared registry)."""
        stage = self.saad.stages.by_name(stage_name)
        self.tracker.set_context(stage.stage_id)

    def end_task(self) -> Optional[TaskSynopsis]:
        """Explicitly finalize the current thread's open task."""
        return self.tracker.end_task()


class SAAD:
    """The deployment facade tying registries, nodes, and the analyzer.

    Parameters
    ----------
    config:
        Analyzer configuration; defaults to a fresh :class:`SAADConfig`.
    registry:
        The deployment's shared telemetry registry.  Defaults to a fresh
        :class:`~repro.telemetry.MetricsRegistry`; every node runtime,
        the collector, training, and detectors created through this
        facade register into it, so one
        ``python -m repro stats`` snapshot covers the whole deployment.
        Pass a :class:`~repro.telemetry.NullRegistry` to disable.
    tracer:
        The deployment's shared :class:`~repro.tracing.Tracer`; pass
        one to control capacities/sampling.  Defaults to the inert
        :data:`~repro.tracing.NULL_TRACER` unless ``tracing=True``.
    tracing:
        Convenience switch: True builds a default
        :class:`~repro.tracing.Tracer` on the shared telemetry registry.
        Ignored when an explicit ``tracer`` is passed.
    """

    def __init__(
        self,
        config: Optional[SAADConfig] = None,
        registry=None,
        tracer=None,
        tracing: bool = False,
    ):
        self.config = config or SAADConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None:
            from repro.tracing import NULL_TRACER, Tracer

            tracer = Tracer(registry=self.registry) if tracing else NULL_TRACER
        self.tracer = tracer
        self.stages = StageRegistry()
        self.logpoints = LogPointRegistry()
        self.collector = SynopsisCollector(retain=True, registry=self.registry)
        self.nodes: Dict[str, NodeRuntime] = {}
        self.model: Optional[OutlierModel] = None
        self.registry.gauge(
            "saad_nodes", "node runtimes registered with this deployment"
        ).set_function(lambda: len(self.nodes))

    # -- node management ----------------------------------------------------
    def add_node(
        self,
        host_name: str,
        context: Optional[ThreadContextProvider] = None,
        clock: Optional[Callable[[], float]] = None,
        log_level: int = INFO,
        wire_format: bool = False,
        wire_flush_size: int = DEFAULT_FLUSH_SIZE,
        tracker_enabled: bool = True,
    ) -> NodeRuntime:
        """Create and register the runtime for one node."""
        if host_name in self.nodes:
            raise ValueError(f"node {host_name!r} already registered")
        node = NodeRuntime(
            saad=self,
            host_id=len(self.nodes),
            host_name=host_name,
            context=context or RealThreadContext(),
            clock=clock or _time.time,
            log_level=log_level,
            wire_format=wire_format,
            wire_flush_size=wire_flush_size,
            tracker_enabled=tracker_enabled,
        )
        self.collector.attach(node.stream)
        self.nodes[host_name] = node
        return node

    def add_sim_node(self, host_name: str, env, **kwargs) -> NodeRuntime:
        """Node runtime wired to a simulation environment's clock/threads."""
        return self.add_node(
            host_name,
            context=SimThreadContext(env),
            clock=lambda: env.now,
            **kwargs,
        )

    @property
    def host_names(self) -> Dict[int, str]:
        """host_id -> host_name for every registered node."""
        return {node.host_id: name for name, node in self.nodes.items()}

    # -- analyzer -----------------------------------------------------------
    def train(self, synopses: Optional[List[TaskSynopsis]] = None) -> OutlierModel:
        """Train the outlier model (default: everything collected so far)."""
        trace = synopses if synopses is not None else self.collector.synopses
        self.model = OutlierModel(self.config, registry=self.registry).train(trace)
        # From here on the tracer's tail retention is model-driven: keep
        # traces the trained classifier would flag, not just novel ones.
        self.tracer.set_model(self.model)
        return self.model

    def detector(self, lateness_s: float = 0.0) -> AnomalyDetector:
        """A fresh streaming detector bound to the trained model."""
        if self.model is None:
            raise RuntimeError("call train() before creating a detector")
        return AnomalyDetector(
            self.model,
            self.config,
            lateness_s=lateness_s,
            registry=self.registry,
            tracer=self.tracer,
        )

    def detect(self, synopses: List[TaskSynopsis]) -> List[AnomalyEvent]:
        """Batch detection convenience: stream a list, flush, return events."""
        detector = self.detector()
        for synopsis in synopses:
            detector.observe(synopsis)
        detector.flush()
        return detector.anomalies

    def reporter(self) -> AnomalyReporter:
        """A reporter resolving ids through this deployment's registries."""
        return AnomalyReporter(self.stages, self.logpoints, self.host_names)
