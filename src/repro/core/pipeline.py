"""End-to-end SAAD wiring: node runtimes + the central analyzer.

:class:`SAAD` is the facade a deployment (or a simulation) uses:

* shared :class:`StageRegistry` and :class:`LogPointRegistry` produced by
  the one-time instrumentation pass;
* per-node :class:`NodeRuntime` bundling a logger repository, the task
  execution tracker, and a synopsis stream;
* a central :class:`SynopsisCollector`, :class:`OutlierModel` training,
  and the streaming :class:`AnomalyDetector`.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional

from repro.loglib import INFO, LoggerRepository

from .config import SAADConfig
from .context import RealThreadContext, SimThreadContext, ThreadContextProvider
from .detector import AnomalyDetector, AnomalyEvent
from .logpoints import LogPointRegistry
from .model import OutlierModel
from .report import AnomalyReporter
from .stages import StageRegistry
from .stream import DEFAULT_FLUSH_SIZE, SynopsisCollector, SynopsisStream
from .synopsis import TaskSynopsis
from .tracker import TaskExecutionTracker


class NodeRuntime:
    """Everything SAAD installs on one server node."""

    def __init__(
        self,
        saad: "SAAD",
        host_id: int,
        host_name: str,
        context: ThreadContextProvider,
        clock: Callable[[], float],
        log_level: int = INFO,
        wire_format: bool = False,
        wire_flush_size: int = DEFAULT_FLUSH_SIZE,
        tracker_enabled: bool = True,
    ):
        self.saad = saad
        self.host_id = host_id
        self.host_name = host_name
        self.stream = SynopsisStream(
            wire_format=wire_format, retain=False, flush_size=wire_flush_size
        )
        self.tracker = TaskExecutionTracker(
            host_id=host_id,
            sink=self.stream.sink,
            context=context,
            clock=clock,
            enabled=tracker_enabled,
        )
        self.repository = LoggerRepository(
            root_level=log_level,
            clock=clock,
            thread_namer=context.thread_name,
        )
        if tracker_enabled:
            self.repository.add_interceptor(self.tracker)

    def logger(self, name: str):
        return self.repository.get_logger(name)

    def set_context(self, stage_name: str) -> None:
        """Stage delimiter by name (resolved through the shared registry)."""
        stage = self.saad.stages.by_name(stage_name)
        self.tracker.set_context(stage.stage_id)

    def end_task(self) -> Optional[TaskSynopsis]:
        return self.tracker.end_task()


class SAAD:
    """The deployment facade tying registries, nodes, and the analyzer."""

    def __init__(self, config: Optional[SAADConfig] = None):
        self.config = config or SAADConfig()
        self.stages = StageRegistry()
        self.logpoints = LogPointRegistry()
        self.collector = SynopsisCollector(retain=True)
        self.nodes: Dict[str, NodeRuntime] = {}
        self.model: Optional[OutlierModel] = None

    # -- node management ----------------------------------------------------
    def add_node(
        self,
        host_name: str,
        context: Optional[ThreadContextProvider] = None,
        clock: Optional[Callable[[], float]] = None,
        log_level: int = INFO,
        wire_format: bool = False,
        wire_flush_size: int = DEFAULT_FLUSH_SIZE,
        tracker_enabled: bool = True,
    ) -> NodeRuntime:
        """Create and register the runtime for one node."""
        if host_name in self.nodes:
            raise ValueError(f"node {host_name!r} already registered")
        node = NodeRuntime(
            saad=self,
            host_id=len(self.nodes),
            host_name=host_name,
            context=context or RealThreadContext(),
            clock=clock or _time.time,
            log_level=log_level,
            wire_format=wire_format,
            wire_flush_size=wire_flush_size,
            tracker_enabled=tracker_enabled,
        )
        self.collector.attach(node.stream)
        self.nodes[host_name] = node
        return node

    def add_sim_node(self, host_name: str, env, **kwargs) -> NodeRuntime:
        """Node runtime wired to a simulation environment's clock/threads."""
        return self.add_node(
            host_name,
            context=SimThreadContext(env),
            clock=lambda: env.now,
            **kwargs,
        )

    @property
    def host_names(self) -> Dict[int, str]:
        return {node.host_id: name for name, node in self.nodes.items()}

    # -- analyzer -----------------------------------------------------------
    def train(self, synopses: Optional[List[TaskSynopsis]] = None) -> OutlierModel:
        """Train the outlier model (default: everything collected so far)."""
        trace = synopses if synopses is not None else self.collector.synopses
        self.model = OutlierModel(self.config).train(trace)
        return self.model

    def detector(self, lateness_s: float = 0.0) -> AnomalyDetector:
        """A fresh streaming detector bound to the trained model."""
        if self.model is None:
            raise RuntimeError("call train() before creating a detector")
        return AnomalyDetector(self.model, self.config, lateness_s=lateness_s)

    def detect(self, synopses: List[TaskSynopsis]) -> List[AnomalyEvent]:
        """Batch detection convenience: stream a list, flush, return events."""
        detector = self.detector()
        for synopsis in synopses:
            detector.observe(synopsis)
        detector.flush()
        return detector.anomalies

    def reporter(self) -> AnomalyReporter:
        return AnomalyReporter(self.stages, self.logpoints, self.host_names)
