"""Synopsis streaming from nodes to the central analyzer (paper Sec. 3.1).

Each node's tracker writes into a :class:`SynopsisStream`; streams from
all nodes feed a :class:`SynopsisCollector`.  The stream can optionally
round-trip every synopsis through the binary wire codec, both to exercise
the transport path and to account the monitoring-data volume that the
Fig. 8 experiment measures.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .synopsis import TaskSynopsis

Subscriber = Callable[[TaskSynopsis], None]


class SynopsisStream:
    """Node-side outlet for task synopses.

    Parameters
    ----------
    wire_format:
        When True, each synopsis is encoded and re-decoded (simulating the
        network hop) and byte volume is accounted.
    retain:
        Keep synopses in memory (handy for training-trace collection).
    """

    def __init__(self, wire_format: bool = False, retain: bool = True):
        self.wire_format = wire_format
        self.retain = retain
        self.synopses: List[TaskSynopsis] = []
        self.subscribers: List[Subscriber] = []
        self.count = 0
        self.bytes_streamed = 0

    def sink(self, synopsis: TaskSynopsis) -> None:
        """The tracker's sink callable."""
        self.count += 1
        if self.wire_format:
            payload = synopsis.encode()
            self.bytes_streamed += len(payload)
            synopsis = TaskSynopsis.decode(payload)
        else:
            self.bytes_streamed += synopsis.encoded_size()
        if self.retain:
            self.synopses.append(synopsis)
        for subscriber in self.subscribers:
            subscriber(synopsis)

    def subscribe(self, subscriber: Subscriber) -> None:
        self.subscribers.append(subscriber)

    def drain(self) -> List[TaskSynopsis]:
        """Return and clear retained synopses."""
        drained, self.synopses = self.synopses, []
        return drained


class SynopsisCollector:
    """Central analyzer inlet merging streams from every node."""

    def __init__(self, retain: bool = True):
        self.retain = retain
        self.synopses: List[TaskSynopsis] = []
        self.subscribers: List[Subscriber] = []
        self.count = 0
        self.bytes_received = 0

    def attach(self, stream: SynopsisStream) -> None:
        """Subscribe this collector to a node stream."""
        stream.subscribe(self._receive)

    def _receive(self, synopsis: TaskSynopsis) -> None:
        self.count += 1
        self.bytes_received += synopsis.encoded_size()
        if self.retain:
            self.synopses.append(synopsis)
        for subscriber in self.subscribers:
            subscriber(synopsis)

    def subscribe(self, subscriber: Subscriber) -> None:
        self.subscribers.append(subscriber)

    def drain(self) -> List[TaskSynopsis]:
        drained, self.synopses = self.synopses, []
        return drained
