"""Synopsis streaming from nodes to the central analyzer (paper Sec. 3.1).

Each node's tracker writes into a :class:`SynopsisStream`; streams from
all nodes feed a :class:`SynopsisCollector`.  The stream can optionally
account the binary wire volume that the Fig. 8 experiment measures and
batch encoded synopses into length-prefixed frames (see
:func:`repro.core.synopsis.encode_frame`) for transport.

Hot-path note: with ``wire_format=True`` each synopsis is encoded exactly
once — the encoded payload is buffered for the next frame flush while the
in-memory object flows on to subscribers.  (The old implementation
encoded *and* re-decoded every synopsis inline, doing the codec work
twice per task.)  Wire-level fidelity is covered by the codec round-trip
property tests instead of a per-task decode.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .synopsis import FRAME_HEADER, MAX_FRAME_SYNOPSES, TaskSynopsis, decode_frame

Subscriber = Callable[[TaskSynopsis], None]
FrameSink = Callable[[bytes], None]

DEFAULT_FLUSH_SIZE = 64


class SynopsisStream:
    """Node-side outlet for task synopses.

    Parameters
    ----------
    wire_format:
        When True, each synopsis is encoded (once) and byte volume is
        accounted; encoded payloads are batched into frames of
        ``flush_size`` synopses.
    retain:
        Keep synopses in memory (handy for training-trace collection).
    flush_size:
        Number of encoded synopses per frame when ``wire_format`` is on.
    frame_sink:
        Optional callable receiving each flushed frame's bytes (a real
        transport, a file, or a :meth:`SynopsisCollector.receive_frame`).
    """

    def __init__(
        self,
        wire_format: bool = False,
        retain: bool = True,
        flush_size: int = DEFAULT_FLUSH_SIZE,
        frame_sink: Optional[FrameSink] = None,
    ):
        if not 1 <= flush_size <= MAX_FRAME_SYNOPSES:
            raise ValueError(f"flush_size out of range: {flush_size}")
        self.wire_format = wire_format
        self.retain = retain
        self.flush_size = flush_size
        self.frame_sink = frame_sink
        self.synopses: List[TaskSynopsis] = []
        self.subscribers: List[Subscriber] = []
        self.count = 0
        self.bytes_streamed = 0
        self.frames_flushed = 0
        self.frame_bytes = 0
        self._pending: List[bytes] = []

    def sink(self, synopsis: TaskSynopsis) -> None:
        """The tracker's sink callable."""
        self.count += 1
        if self.wire_format:
            payload = synopsis.encode()
            self.bytes_streamed += len(payload)
            self._pending.append(payload)
            if len(self._pending) >= self.flush_size:
                self.flush_wire()
        else:
            self.bytes_streamed += synopsis.encoded_size()
        if self.retain:
            self.synopses.append(synopsis)
        for subscriber in self.subscribers:
            subscriber(synopsis)

    def flush_wire(self) -> bytes:
        """Frame and flush the pending encoded synopses; returns the frame.

        Returns ``b""`` when nothing is pending.  Called automatically
        every ``flush_size`` synopses; call explicitly at end of stream.
        """
        if not self._pending:
            return b""
        payload = b"".join(self._pending)
        frame = FRAME_HEADER.pack(len(payload), len(self._pending)) + payload
        self._pending.clear()
        self.frames_flushed += 1
        self.frame_bytes += len(frame)
        if self.frame_sink is not None:
            self.frame_sink(frame)
        return frame

    @property
    def pending_wire_count(self) -> int:
        """Encoded synopses buffered for the next frame."""
        return len(self._pending)

    def subscribe(self, subscriber: Subscriber) -> None:
        self.subscribers.append(subscriber)

    def drain(self) -> List[TaskSynopsis]:
        """Return and clear retained synopses."""
        drained, self.synopses = self.synopses, []
        return drained


class SynopsisCollector:
    """Central analyzer inlet merging streams from every node."""

    def __init__(self, retain: bool = True):
        self.retain = retain
        self.synopses: List[TaskSynopsis] = []
        self.subscribers: List[Subscriber] = []
        self.count = 0
        self.bytes_received = 0
        self.frames_received = 0

    def attach(self, stream: SynopsisStream) -> None:
        """Subscribe this collector to a node stream."""
        stream.subscribe(self._receive)

    def _receive(self, synopsis: TaskSynopsis) -> None:
        self.count += 1
        self.bytes_received += synopsis.encoded_size()
        if self.retain:
            self.synopses.append(synopsis)
        for subscriber in self.subscribers:
            subscriber(synopsis)

    def receive_frame(self, frame: bytes) -> List[TaskSynopsis]:
        """Ingest one wire frame (the transport-side counterpart of
        :meth:`SynopsisStream.flush_wire`); returns the decoded batch."""
        synopses, consumed = decode_frame(frame, 0)
        if consumed != len(frame):
            raise ValueError(f"trailing bytes after frame ({len(frame) - consumed})")
        self.frames_received += 1
        self.count += len(synopses)
        self.bytes_received += len(frame)
        if self.retain:
            self.synopses.extend(synopses)
        for subscriber in self.subscribers:
            for synopsis in synopses:
                subscriber(synopsis)
        return synopses

    def subscribe(self, subscriber: Subscriber) -> None:
        self.subscribers.append(subscriber)

    def drain(self) -> List[TaskSynopsis]:
        drained, self.synopses = self.synopses, []
        return drained
