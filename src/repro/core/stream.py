"""Synopsis streaming from nodes to the central analyzer (paper Sec. 3.1).

Each node's tracker writes into a :class:`SynopsisStream`; streams from
all nodes feed a :class:`SynopsisCollector`.  The stream can optionally
account the binary wire volume that the Fig. 8 experiment measures and
batch encoded synopses into length-prefixed frames (see
:func:`repro.core.synopsis.encode_frame`) for transport.

Hot-path note: with ``wire_format=True`` each synopsis is encoded exactly
once — the encoded payload is buffered for the next frame flush while the
in-memory object flows on to subscribers.  (The old implementation
encoded *and* re-decoded every synopsis inline, doing the codec work
twice per task.)  Wire-level fidelity is covered by the codec round-trip
property tests instead of a per-task decode.

Telemetry: both classes keep their accounting in plain private ints
(the sink runs once per task) and register callback-backed counters
over them — ``stream_*{host=...}`` and ``collector_*`` in the metrics
catalog (docs/OPERATIONS.md).  The public ``count`` / ``bytes_streamed``
/ ... attributes survive as read-only properties.  A synopsis whose
fields do not fit the wire format (a uid past 32 bits, a negative
timestamp from clock skew) is *dropped from the wire* and counted
(``stream_synopses_dropped``, ``codec_uid_range_errors``) instead of
crashing the producing thread; in-memory subscribers still receive it.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.telemetry import MetricsRegistry

from .synopsis import (
    FRAME_HEADER,
    MAX_FRAME_SYNOPSES,
    MAX_UID,
    TaskSynopsis,
    decode_frame,
)

Subscriber = Callable[[TaskSynopsis], None]
FrameSink = Callable[[bytes], None]

DEFAULT_FLUSH_SIZE = 64


class SynopsisStream:
    """Node-side outlet for task synopses.

    Parameters
    ----------
    wire_format:
        When True, each synopsis is encoded (once) and byte volume is
        accounted; encoded payloads are batched into frames of
        ``flush_size`` synopses.
    retain:
        Keep synopses in memory (handy for training-trace collection).
    flush_size:
        Number of encoded synopses per frame when ``wire_format`` is on.
    frame_sink:
        Optional callable receiving each flushed frame's bytes (a real
        transport, a file, or a :meth:`SynopsisCollector.receive_frame`).
    registry:
        Telemetry registry for the ``stream_*`` metrics; defaults to a
        private :class:`~repro.telemetry.MetricsRegistry`.
    host:
        Label value for this stream's metric children (the ``SAAD``
        facade passes the node's host id; standalone streams default
        to ``"-"``).
    """

    def __init__(
        self,
        wire_format: bool = False,
        retain: bool = True,
        flush_size: int = DEFAULT_FLUSH_SIZE,
        frame_sink: Optional[FrameSink] = None,
        registry=None,
        host: str = "-",
    ):
        if not 1 <= flush_size <= MAX_FRAME_SYNOPSES:
            raise ValueError(f"flush_size out of range: {flush_size}")
        self.wire_format = wire_format
        self.retain = retain
        self.flush_size = flush_size
        self.frame_sink = frame_sink
        self.synopses: List[TaskSynopsis] = []
        self.subscribers: List[Subscriber] = []
        self.registry = registry if registry is not None else MetricsRegistry()
        self._count = 0
        self._bytes_streamed = 0
        self._frames_flushed = 0
        self._frame_bytes = 0
        self._pending: List[bytes] = []
        host = str(host)
        labels = ("host",)
        for name, help_text, fn in (
            ("stream_synopses", "synopses accepted by the sink", lambda: self._count),
            (
                "stream_bytes",
                "encoded synopsis payload bytes",
                lambda: self._bytes_streamed,
            ),
            (
                "stream_frames",
                "wire frames flushed",
                lambda: self._frames_flushed,
            ),
            (
                "stream_frame_bytes",
                "bytes of flushed wire frames (header included)",
                lambda: self._frame_bytes,
            ),
        ):
            self.registry.counter(name, help_text, labels=labels).labels(
                host=host
            ).set_function(fn)
        self.registry.gauge(
            "stream_pending",
            "encoded synopses buffered for the next frame",
            labels=labels,
        ).labels(host=host).set_function(lambda: len(self._pending))
        self._m_dropped = self.registry.counter(
            "stream_synopses_dropped",
            "synopses dropped from the wire (unencodable fields)",
            labels=labels,
        ).labels(host=host)
        self._m_uid_range = self.registry.counter(
            "codec_uid_range_errors",
            "wire encodes rejected because the uid left the 32-bit range",
            labels=labels,
        ).labels(host=host)

    # -- accounting (telemetry-backed, read-only) ----------------------------
    @property
    def count(self) -> int:
        """Synopses accepted by :meth:`sink` so far."""
        return self._count

    @property
    def bytes_streamed(self) -> int:
        """Encoded payload bytes (from the single encode per synopsis)."""
        return self._bytes_streamed

    @property
    def frames_flushed(self) -> int:
        """Wire frames flushed so far."""
        return self._frames_flushed

    @property
    def frame_bytes(self) -> int:
        """Total bytes of flushed frames, headers included."""
        return self._frame_bytes

    def sink(self, synopsis: TaskSynopsis) -> None:
        """The tracker's sink callable: account, buffer, fan out."""
        self._count += 1
        if self.wire_format:
            try:
                payload = synopsis.encode()
            except ValueError:
                # Unencodable synopsis (uid past 32 bits, negative/huge
                # timestamp from clock skew, >255 log points): drop it
                # from the wire, count it, keep the node alive.  The
                # in-memory object still reaches subscribers below.
                self._m_dropped.inc()
                if not 0 <= synopsis.uid <= MAX_UID:
                    self._m_uid_range.inc()
            else:
                self._bytes_streamed += len(payload)
                self._pending.append(payload)
                if len(self._pending) >= self.flush_size:
                    self.flush_wire()
        else:
            self._bytes_streamed += synopsis.encoded_size()
        if self.retain:
            self.synopses.append(synopsis)
        for subscriber in self.subscribers:
            subscriber(synopsis)

    def flush_wire(self) -> bytes:
        """Frame and flush the pending encoded synopses; returns the frame.

        Returns ``b""`` when nothing is pending.  Called automatically
        every ``flush_size`` synopses; call explicitly at end of stream.
        """
        if not self._pending:
            return b""
        payload = b"".join(self._pending)
        frame = FRAME_HEADER.pack(len(payload), len(self._pending)) + payload
        self._pending.clear()
        self._frames_flushed += 1
        self._frame_bytes += len(frame)
        if self.frame_sink is not None:
            self.frame_sink(frame)
        return frame

    @property
    def pending_wire_count(self) -> int:
        """Encoded synopses buffered for the next frame."""
        return len(self._pending)

    def subscribe(self, subscriber: Subscriber) -> None:
        """Add a callable receiving every synopsis passed to :meth:`sink`."""
        self.subscribers.append(subscriber)

    def drain(self) -> List[TaskSynopsis]:
        """Return and clear retained synopses."""
        drained, self.synopses = self.synopses, []
        return drained


class SynopsisCollector:
    """Central analyzer inlet merging streams from every node.

    Parameters
    ----------
    retain:
        Keep received synopses in memory (training-trace collection).
    registry:
        Telemetry registry for the ``collector_*`` metrics; defaults to
        a private :class:`~repro.telemetry.MetricsRegistry`.
    """

    def __init__(self, retain: bool = True, registry=None):
        self.retain = retain
        self.synopses: List[TaskSynopsis] = []
        self.subscribers: List[Subscriber] = []
        self.frame_subscribers: List[FrameSink] = []
        self.streams: List[SynopsisStream] = []
        self.registry = registry if registry is not None else MetricsRegistry()
        self._count = 0
        self._bytes_received = 0
        self._frames_received = 0
        self._buffer = bytearray()
        self.closed = False
        for name, help_text, fn in (
            (
                "collector_synopses",
                "synopses received from all node streams",
                lambda: self._count,
            ),
            (
                "collector_bytes",
                "wire bytes received (or accounted for object streams)",
                lambda: self._bytes_received,
            ),
            (
                "collector_frames",
                "wire frames received",
                lambda: self._frames_received,
            ),
        ):
            self.registry.counter(name, help_text).set_function(fn)
        self.registry.gauge(
            "collector_pending_bytes",
            "bytes of an incomplete wire frame awaiting reassembly",
        ).set_function(lambda: len(self._buffer))

    # -- accounting (telemetry-backed, read-only) ----------------------------
    @property
    def count(self) -> int:
        """Synopses received so far (object or frame path)."""
        return self._count

    @property
    def bytes_received(self) -> int:
        """Bytes received (frame bytes, or encoded size on the object path)."""
        return self._bytes_received

    @property
    def frames_received(self) -> int:
        """Wire frames ingested via :meth:`receive_frame`."""
        return self._frames_received

    @property
    def pending_bytes(self) -> int:
        """Bytes of an incomplete frame buffered by :meth:`feed`."""
        return len(self._buffer)

    def attach(self, stream: SynopsisStream) -> None:
        """Subscribe this collector to a node stream.

        The stream is also remembered so :meth:`flush` / :meth:`close`
        can drain its pending wire batch — the shutdown-ordering
        guarantee that a partially filled frame is never dropped.

        A stream whose ``frame_sink`` already delivers into this
        collector (:meth:`feed` / :meth:`receive_frame`) is *not*
        subscribed on the object path as well: every synopsis would
        otherwise be counted twice, once live and once per frame.
        """
        sink = getattr(stream, "frame_sink", None)
        if getattr(sink, "__self__", None) is not self:
            stream.subscribe(self._receive)
        self.streams.append(stream)

    def _receive(self, synopsis: TaskSynopsis) -> None:
        self._count += 1
        self._bytes_received += synopsis.encoded_size()
        if self.retain:
            self.synopses.append(synopsis)
        for subscriber in self.subscribers:
            subscriber(synopsis)

    def receive_frame(self, frame: bytes) -> List[TaskSynopsis]:
        """Ingest one wire frame (the transport-side counterpart of
        :meth:`SynopsisStream.flush_wire`); returns the decoded batch.

        Frame subscribers (:meth:`subscribe_frames`) run *before* the
        per-synopsis decode fan-out, receiving the raw frame bytes —
        the hook the columnar detect path hangs off (a decode error
        raises before any subscriber sees a bad frame, because
        ``decode_frame`` validates first)."""
        synopses, consumed = decode_frame(frame, 0)
        if consumed != len(frame):
            raise ValueError(f"trailing bytes after frame ({len(frame) - consumed})")
        self._frames_received += 1
        self._count += len(synopses)
        self._bytes_received += len(frame)
        for frame_subscriber in self.frame_subscribers:
            frame_subscriber(frame)
        if self.retain:
            self.synopses.extend(synopses)
        for subscriber in self.subscribers:
            for synopsis in synopses:
                subscriber(synopsis)
        return synopses

    def feed(self, chunk: bytes) -> List[TaskSynopsis]:
        """Ingest an arbitrary byte chunk of the framed wire stream.

        The transport-agnostic inlet: unlike :meth:`receive_frame`, the
        chunk may hold half a frame, several frames, or a frame split
        across calls (exactly what a socket read produces).  Complete
        frames are ingested immediately; a trailing partial frame waits
        in the reassembly buffer (``collector_pending_bytes``) for the
        next chunk.  Returns the synopses decoded from this chunk.
        """
        self._buffer.extend(chunk)
        header_size = FRAME_HEADER.size
        buffer = self._buffer
        out: List[TaskSynopsis] = []
        offset = 0
        while len(buffer) - offset >= header_size:
            length, _ = FRAME_HEADER.unpack_from(buffer, offset)
            stop = offset + header_size + length
            if len(buffer) < stop:
                break
            out.extend(self.receive_frame(bytes(buffer[offset:stop])))
            offset = stop
        if offset:
            del buffer[:offset]
        return out

    def flush(self) -> List[TaskSynopsis]:
        """Drain every attached stream's pending wire batch, in order.

        Shutdown ordering matters: the *streams* flush first (their
        partially filled frames travel through their ``frame_sink`` —
        typically :meth:`feed` / :meth:`receive_frame` on this
        collector), and only then is the reassembly buffer checked.  A
        non-empty buffer at that point is a truncated frame whose tail
        can no longer arrive, so ``ValueError`` is raised instead of
        silently dropping the last batch.  Returns the synopses that
        arrived through :meth:`feed` during the flush.
        """
        before = self._count
        for stream in self.streams:
            if stream.wire_format:
                stream.flush_wire()
        if self._buffer:
            raise ValueError(
                f"collector holds {len(self._buffer)} bytes of a truncated "
                "frame after flush; the last batch would be lost"
            )
        received = self._count - before
        if received and self.retain:
            return list(self.synopses[-received:])
        return []

    def close(self) -> None:
        """Flush attached streams, then seal the collector.

        Idempotent.  Raises like :meth:`flush` when a truncated frame
        is stuck in the reassembly buffer — the regression this guards:
        a transport that dies mid-frame must be noticed at shutdown,
        not absorbed as silent data loss.
        """
        if self.closed:
            return
        self.flush()
        self.closed = True

    def subscribe(self, subscriber: Subscriber) -> None:
        """Add a callable receiving every synopsis this collector ingests."""
        self.subscribers.append(subscriber)

    def subscribe_frames(self, sink: FrameSink) -> None:
        """Add a callable receiving every complete wire frame's raw bytes.

        The columnar inlet: a TCP-fed collector (``SAAD.listen`` /
        :meth:`feed`) can hand whole frames to
        :meth:`repro.core.detector.AnomalyDetector.observe_batch`
        without the per-synopsis object decode in between.  Only frames
        that arrive *as frames* fan out here; synopses received on the
        object path have no wire form to forward."""
        self.frame_subscribers.append(sink)

    def drain(self) -> List[TaskSynopsis]:
        """Return and clear retained synopses."""
        drained, self.synopses = self.synopses, []
        return drained
