"""Statistical primitives for the analyzer.

The paper's runtime computation is deliberately light: counting,
percentiles, and one-sided t-tests on outlier *proportions* (significance
level 0.001).  These helpers implement exactly that, with explicit edge
cases so detection never divides by zero on an idle stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ProportionTest:
    """Outcome of a one-sided proportion test."""

    reject: bool
    p_value: float
    statistic: float
    observed: float
    baseline: float
    n: int


def proportion_exceeds_test(
    successes: int, n: int, baseline: float, alpha: float = 0.001
) -> ProportionTest:
    """One-sided t-test of H1: true proportion > ``baseline``.

    This is the paper's anomaly trigger: reject H0 (proportion of outlier
    tasks <= training proportion) at significance ``alpha``.

    Implemented as a one-sample t-test on the Bernoulli indicator sample,
    which is what running a textbook t-test over outlier indicators does:
    ``t = (phat - p0) / sqrt(phat (1 - phat) / (n - 1))``.
    """
    if n <= 0:
        return ProportionTest(False, 1.0, 0.0, 0.0, baseline, 0)
    if successes < 0 or successes > n:
        raise ValueError(f"successes={successes} out of range for n={n}")
    if not 0.0 <= baseline <= 1.0:
        raise ValueError(f"baseline must be a proportion, got {baseline}")
    phat = successes / n
    if phat <= baseline:
        return ProportionTest(False, 1.0, 0.0, phat, baseline, n)
    if n == 1:
        # A single observation cannot reject at any sane alpha.
        return ProportionTest(False, 1.0, float("inf"), phat, baseline, n)
    variance = phat * (1.0 - phat)
    if variance == 0.0:
        # Every task was an outlier while the baseline says they should be
        # rare: degenerate sample, overwhelming evidence for n of any size.
        p_value = baseline**n if baseline > 0 else 0.0
        reject = p_value < alpha
        return ProportionTest(reject, p_value, float("inf"), phat, baseline, n)
    statistic = (phat - baseline) / math.sqrt(variance / (n - 1))
    p_value = float(_scipy_stats.t.sf(statistic, df=n - 1))
    return ProportionTest(p_value < alpha, p_value, statistic, phat, baseline, n)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) with linear interpolation.

    Implemented directly (rather than via numpy) because it is called on
    small per-signature samples in hot training loops.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    return percentile_sorted(sorted(values), q)


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` for input that is *already sorted ascending*.

    The training hot path sorts each signature's durations once and
    derives every threshold from that single sorted array.
    """
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0,1], got {q}")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


def kfold_splits(n: int, k: int) -> list:
    """Index ranges for k roughly equal folds over ``n`` ordered items."""
    if n <= 0:
        raise ValueError("cannot split an empty sample")
    if k <= 1:
        raise ValueError(f"k must be >= 2, got {k}")
    k = min(k, n)
    base, extra = divmod(n, k)
    splits = []
    start = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        splits.append((start, start + size))
        start += size
    return splits
