"""Signature interning (hot-path optimization).

A run of the analyzer sees millions of tasks but only a handful of
distinct signatures per stage (paper Fig. 6: the top few signatures cover
>99 % of tasks).  Building a fresh ``frozenset`` per task therefore
allocates millions of identical objects and re-hashes the same element
sets over and over in every dict/set lookup.

The intern table maps the *canonical tuple* of a signature (its sorted
log-point ids) to one shared :class:`InternedSignature` instance.  The
shared instance

* is a ``frozenset`` subclass, so it compares and hashes exactly like the
  plain frozensets used throughout the tests and public API;
* caches its canonical tuple, so sorting signatures (reporting, window
  close) never re-sorts the elements;
* benefits from CPython's internal frozenset hash caching: the hash is
  computed once for the whole run instead of once per task.

The table is process-global on purpose — synopsis decoding, feature
extraction, model training, and detection all funnel through it so that
equal signatures are *identity*-equal across layers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "InternedSignature",
    "SignatureIdSpace",
    "canonical_tuple",
    "clear_intern_table",
    "intern_signature",
    "intern_table_size",
]

#: Safety valve: beyond this many distinct signatures the table stops
#: growing (an instrumentation bug emitting per-task ids would otherwise
#: leak unboundedly).  Real workloads have a few dozen signatures.
MAX_INTERNED_SIGNATURES = 1 << 16

_table: Dict[Tuple[int, ...], "InternedSignature"] = {}


class InternedSignature(frozenset):
    """A frozenset of log-point ids with its sorted tuple precomputed."""

    __slots__ = ("canonical",)

    canonical: Tuple[int, ...]


def intern_signature(log_points: Iterable[int]) -> InternedSignature:
    """Return the shared signature for this set of log-point ids.

    Accepts any iterable of ids (typically a synopsis's ``log_points``
    dict, whose iteration yields the keys).  Two calls with equal id sets
    return the *same* object while the table has room.
    """
    key = tuple(sorted(log_points))
    signature = _table.get(key)
    if signature is None:
        signature = InternedSignature(key)
        signature.canonical = key
        if len(_table) < MAX_INTERNED_SIGNATURES:
            # setdefault keeps interning race-free: concurrent first
            # encounters agree on one canonical instance.
            signature = _table.setdefault(key, signature)
    return signature


def canonical_tuple(signature: Iterable[int]) -> Tuple[int, ...]:
    """Sorted element tuple; free for interned signatures."""
    canonical = getattr(signature, "canonical", None)
    if canonical is not None:
        return canonical
    return tuple(sorted(signature))


#: Bound on one :class:`SignatureIdSpace`'s dense id range.  Ids must fit
#: the columnar path's packed (stage, sig-id) cell keys, and a workload
#: that mints this many distinct signatures is emitting per-task ids —
#: the space refuses new ids instead of corrupting the packing.
MAX_SIGNATURE_IDS = 1 << 17


class SignatureIdSpace:
    """Append-only dense ``signature <-> small int`` mapping.

    The columnar detect path replaces per-task signature objects with
    integer ids so compiled per-stage tables can be flat arrays.  Ids
    are assigned on first encounter and never reused; the reverse list
    turns an id back into the shared :class:`InternedSignature` when a
    window bucket needs the real object (reports, new-signature sets).

    A space also memoizes the *wire entry bytes* of each signature
    pattern (the packed log-point entries of a synopsis), so batch
    decoding resolves raw byte patterns straight to ids without
    unpacking or set construction per task.
    """

    __slots__ = ("ids", "signatures", "_by_entry")

    def __init__(self) -> None:
        self.ids: Dict["InternedSignature", int] = {}
        self.signatures: List["InternedSignature"] = []
        self._by_entry: Dict[bytes, int] = {}

    def __len__(self) -> int:
        """Number of ids assigned so far."""
        return len(self.signatures)

    @property
    def full(self) -> bool:
        """True when the id range is exhausted (see MAX_SIGNATURE_IDS)."""
        return len(self.signatures) >= MAX_SIGNATURE_IDS

    def id_of(self, signature: Iterable[int]) -> Optional[int]:
        """The dense id for ``signature``, assigning one on first sight.

        Returns None when the space is full and the signature has no id
        yet — callers fall back to the object path for that task.
        """
        interned = (
            signature
            if isinstance(signature, InternedSignature)
            else intern_signature(signature)
        )
        sig_id = self.ids.get(interned)
        if sig_id is None:
            if len(self.signatures) >= MAX_SIGNATURE_IDS:
                return None
            sig_id = len(self.signatures)
            self.ids[interned] = sig_id
            self.signatures.append(interned)
        return sig_id

    def signature_of(self, sig_id: int) -> "InternedSignature":
        """The shared signature object behind ``sig_id``."""
        return self.signatures[sig_id]

    def resolve_entry(self, entry_bytes: bytes) -> Optional[int]:
        """Dense id for a packed log-point entry byte pattern.

        ``entry_bytes`` is the raw wire payload of one synopsis's
        entries (``len(entry_bytes) % 6 == 0``; see
        :data:`repro.core.synopsis.SYNOPSIS_ENTRY`).  The pattern ->
        id mapping is memoized, so steady-state resolution is one dict
        probe.  Returns None when the space is full (new pattern only).
        """
        sig_id = self._by_entry.get(entry_bytes)
        if sig_id is None:
            from .synopsis import entry_struct

            n = len(entry_bytes) // 6
            flat = entry_struct(n).unpack(entry_bytes) if n else ()
            sig_id = self.id_of(intern_signature(flat[0::2]))
            if sig_id is not None:
                self._by_entry[entry_bytes] = sig_id
        return sig_id


def intern_table_size() -> int:
    """Number of distinct signatures currently interned."""
    return len(_table)


def clear_intern_table() -> None:
    """Drop all interned signatures (tests / long-lived process hygiene)."""
    _table.clear()
