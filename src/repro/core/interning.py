"""Signature interning (hot-path optimization).

A run of the analyzer sees millions of tasks but only a handful of
distinct signatures per stage (paper Fig. 6: the top few signatures cover
>99 % of tasks).  Building a fresh ``frozenset`` per task therefore
allocates millions of identical objects and re-hashes the same element
sets over and over in every dict/set lookup.

The intern table maps the *canonical tuple* of a signature (its sorted
log-point ids) to one shared :class:`InternedSignature` instance.  The
shared instance

* is a ``frozenset`` subclass, so it compares and hashes exactly like the
  plain frozensets used throughout the tests and public API;
* caches its canonical tuple, so sorting signatures (reporting, window
  close) never re-sorts the elements;
* benefits from CPython's internal frozenset hash caching: the hash is
  computed once for the whole run instead of once per task.

The table is process-global on purpose — synopsis decoding, feature
extraction, model training, and detection all funnel through it so that
equal signatures are *identity*-equal across layers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

__all__ = [
    "InternedSignature",
    "canonical_tuple",
    "clear_intern_table",
    "intern_signature",
    "intern_table_size",
]

#: Safety valve: beyond this many distinct signatures the table stops
#: growing (an instrumentation bug emitting per-task ids would otherwise
#: leak unboundedly).  Real workloads have a few dozen signatures.
MAX_INTERNED_SIGNATURES = 1 << 16

_table: Dict[Tuple[int, ...], "InternedSignature"] = {}


class InternedSignature(frozenset):
    """A frozenset of log-point ids with its sorted tuple precomputed."""

    __slots__ = ("canonical",)

    canonical: Tuple[int, ...]


def intern_signature(log_points: Iterable[int]) -> InternedSignature:
    """Return the shared signature for this set of log-point ids.

    Accepts any iterable of ids (typically a synopsis's ``log_points``
    dict, whose iteration yields the keys).  Two calls with equal id sets
    return the *same* object while the table has room.
    """
    key = tuple(sorted(log_points))
    signature = _table.get(key)
    if signature is None:
        signature = InternedSignature(key)
        signature.canonical = key
        if len(_table) < MAX_INTERNED_SIGNATURES:
            # setdefault keeps interning race-free: concurrent first
            # encounters agree on one canonical instance.
            signature = _table.setdefault(key, signature)
    return signature


def canonical_tuple(signature: Iterable[int]) -> Tuple[int, ...]:
    """Sorted element tuple; free for interned signatures."""
    canonical = getattr(signature, "canonical", None)
    if canonical is not None:
        return canonical
    return tuple(sorted(signature))


def intern_table_size() -> int:
    """Number of distinct signatures currently interned."""
    return len(_table)


def clear_intern_table() -> None:
    """Drop all interned signatures (tests / long-lived process hygiene)."""
    _table.clear()
