"""Stage identifiers.

A *stage* is a small code module of a staged server (the paper's Foo/Bar/
Baz; concretely ``DataXceiver``, ``Memtable``, ``Call``...).  Stage ids are
what ``set_context(stage_id)`` passes to the tracker at the beginning of
each stage; the registry maps them back to names for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Stage:
    """A registered stage: id, name, and which staging model it follows."""

    stage_id: int
    name: str
    model: str = "producer-consumer"  # or "dispatcher-worker"

    def __post_init__(self) -> None:
        if self.model not in ("producer-consumer", "dispatcher-worker"):
            raise ValueError(f"unknown staging model {self.model!r}")


class StageRegistry:
    """Assigns dense stage ids in registration order."""

    def __init__(self) -> None:
        self._stages: List[Stage] = []
        self._by_name: Dict[str, Stage] = {}

    def __len__(self) -> int:
        return len(self._stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages)

    def register(self, name: str, model: str = "producer-consumer") -> Stage:
        """Register a stage; idempotent on name."""
        if not name:
            raise ValueError("stage name must be non-empty")
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        stage = Stage(stage_id=len(self._stages), name=name, model=model)
        self._stages.append(stage)
        self._by_name[name] = stage
        return stage

    def get(self, stage_id: int) -> Stage:
        """The stage with id ``stage_id``; raises KeyError when unknown."""
        if 0 <= stage_id < len(self._stages):
            return self._stages[stage_id]
        raise KeyError(f"unknown stage id {stage_id}")

    def by_name(self, name: str) -> Stage:
        """The stage called ``name``; raises KeyError when unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown stage {name!r}") from None

    def maybe_by_name(self, name: str) -> Optional[Stage]:
        """The stage called ``name``, or None."""
        return self._by_name.get(name)

    def names(self) -> List[str]:
        """Every registered stage name, in stage-id order."""
        return [s.name for s in self._stages]
