"""The shared deterministic demo deployment behind the tool CLIs.

``python -m repro stats`` (registry view), ``python -m repro trace``
(trace view), and ``python -m repro top`` (fleet health view) all run
the *same* small SAAD deployment — two nodes (one wire-format), a fake
clock, training, a detection pass with an injected novel signature, a
model save/load round-trip, a sharded TCP ingest loopback with the
overload machinery attached, a fleet observability pass (federated
edge telemetry + a wire health probe), and an elastic-fleet pass
(gossip membership, a mid-stream join, and a crash reshard).  It
exercises every metric family in the catalog (docs/OPERATIONS.md §4),
so the catalog test treats its registry as the ground-truth metric
inventory.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["demo_deployment", "demo_registry"]


def _emit_task(node, log, clock, stage, i, lps, retry=False):
    """One demo task: begin/end log points, optionally a retry burst."""
    lp_begin, lp_end, lp_retry = lps
    node.set_context(stage)
    log.info("step %s begins", i, lpid=lp_begin)
    clock[0] += 0.004
    if retry:
        log.warn("retrying step %s after transient fault", i, lpid=lp_retry)
    log.info("step %s ends", i, lpid=lp_end)


def demo_deployment():
    """Run the deterministic demo deployment; returns the SAAD facade.

    Tracing is enabled so the ``tracer_*`` self-metrics register and the
    injected novel-signature burst leaves pinned exemplar traces.
    """
    from repro.core import SAAD, SAADConfig, load_model, save_model

    config = SAADConfig(window_s=10.0, min_window_tasks=5, min_signature_samples=5)
    saad = SAAD(config, tracing=True)
    clock = [0.0]
    nodes = [
        saad.add_node("alpha", clock=lambda: clock[0]),
        saad.add_node("beta", clock=lambda: clock[0], wire_format=True),
    ]
    saad.stages.register("read")
    saad.stages.register("compact")
    lps = (
        saad.logpoints.register("step begins").lpid,
        saad.logpoints.register("step ends").lpid,
        saad.logpoints.register("retrying after transient fault").lpid,
    )
    loggers = [node.logger("demo.Stage") for node in nodes]

    # Fault-free training phase: two stages, steady shapes.
    for i in range(400):
        clock[0] = i * 0.05
        stage = "read" if i % 3 else "compact"
        _emit_task(nodes[i % 2], loggers[i % 2], clock, stage, i, lps)
    for node in nodes:
        node.end_task()
        node.stream.flush_wire()
    saad.train()

    # Detection phase: same workload plus a late burst with a novel log
    # point (a flow anomaly via never-trained signature).
    detector = saad.detector()
    trained = len(saad.collector.synopses)
    for i in range(300, 400):
        clock[0] = 30.0 + i * 0.05
        _emit_task(
            nodes[i % 2], loggers[i % 2], clock, "read", i, lps, retry=i > 380
        )
    for node in nodes:
        node.end_task()
        node.stream.flush_wire()
    for synopsis in saad.collector.synopses[trained:]:
        detector.observe(synopsis)
    detector.flush()

    # Columnar pass: replay the detection trace as one wire blob through
    # a batch detector, so the columnar_* ingest counters and the model
    # compiler's compile_* counters are live in this registry.
    from repro.core import AnomalyDetector
    from repro.core.synopsis import encode_frame

    replay = saad.collector.synopses[trained:]
    batch_detector = AnomalyDetector(saad.model, saad.config, registry=saad.registry)
    batch_detector.observe_batch(encode_frame(replay))
    batch_detector.flush()

    # Persistence round-trip so the model_* counters are live too.
    handle, path = tempfile.mkstemp(suffix=".saad-model.json")
    os.close(handle)
    try:
        save_model(saad.model, path, registry=saad.registry)
        load_model(path, registry=saad.registry)
    finally:
        os.unlink(path)

    # Scale-out pass: replay the detection trace through a 2-shard pool
    # fed over the TCP ingest loopback — with the overload machinery
    # attached (shedder, compression, novelty-classified priorities) —
    # so the shard_* coordinator, shard_server_* transport, and the
    # overload families (server_*, shed_*, client_*, watermark gauges)
    # are all live in this registry too.  The same loopback doubles as
    # the fleet observability pass (docs/OPERATIONS.md §9): the sender
    # piggybacks a (separate) edge registry as a TELEMETRY snapshot —
    # federated under ``node=edge-beta`` — and round-trips one wire
    # HEALTH probe, so the federation_*, health_*, and probe counters
    # are live as well.
    import time

    from repro.shard import (
        FrameClient,
        LoadShedder,
        ShardedAnalyzer,
        SignatureNovelty,
        SynopsisServer,
    )
    from repro.telemetry import MetricsRegistry

    def _counter(name):
        for family in saad.registry.collect():
            if family["name"] == name:
                return sum(sample["value"] for sample in family["samples"])
        return 0.0

    edge = MetricsRegistry()
    edge.counter("tracker_tasks_started", "tasks started on the edge node").inc(42)
    edge.gauge("saad_nodes", "node runtimes on the edge deployment").set(1)

    novelty = SignatureNovelty.from_model(saad.model)
    shedder = LoadShedder(1 << 20, registry=saad.registry)
    with ShardedAnalyzer(
        saad.model, 2, registry=saad.registry, tracer=saad.tracer
    ) as pool:
        with SynopsisServer(
            pool.dispatch_frame,
            registry=saad.registry,
            shedder=shedder,
            classify=novelty.frame_priority,
            federation=saad.registry.federation(),
            health=saad.health,
        ) as server:
            with FrameClient(
                server.address,
                registry=saad.registry,
                compression=True,
                priority_fn=novelty.frame_priority,
                node="edge-beta",
                telemetry_source=edge,
                telemetry_interval_s=0.0,
            ) as client:
                client.send(encode_frame(replay))
                client.wait_acked()
                client.health(timeout=10.0)
            # frames land on the server's loop thread; wait for delivery
            deadline = time.monotonic() + 10.0
            while (
                _counter("shard_server_frames") < 1
                or _counter("server_telemetry_snapshots") < 1
            ):
                if time.monotonic() > deadline:
                    raise RuntimeError("demo ingest frame never arrived")
                time.sleep(0.005)
        pool.close()

    # Elastic fleet pass: the same detection trace through a gossip-
    # coordinated analyzer fleet with a mid-stream join and a crash, so
    # the fleet_* membership/ring/reroute families (DESIGN.md §16) are
    # live in this registry too.
    fleet = saad.fleet(2)
    fleet.step_gossip(2)
    half = len(replay) // 2
    fleet.dispatch(replay[:half])
    fleet.join("node-2")
    fleet.kill("node-0")
    fleet.dispatch(replay[half:])
    fleet.close()
    return saad


def demo_registry():
    """The demo deployment's registry (catalog-test ground truth)."""
    return demo_deployment().registry
