"""Telemetry federation: one registry that sees the whole fleet.

A distributed SAAD deployment keeps many :class:`~repro.telemetry.
MetricsRegistry` instances: one per analyzer process, one per remote
node runtime, one inside every shard worker.  Before this module the
analyzer-side registry only ever saw its own process (plus the shard
workers, which the coordinator polls over its pipes) — a remote
``FrameClient``'s credit stalls or a TCP node's tracker counters were
invisible to ``python -m repro stats`` and to any health rule running
on the analyzer.

Federation closes that gap with two pieces:

* :func:`merge_snapshots` — the pure merge of plain-dict family
  snapshots (the wire form of
  :meth:`~repro.telemetry.MetricsRegistry.collect`): samples of the
  same family and label set are summed, histograms per bucket.  This is
  the same arithmetic the shard coordinator has always used to fold
  worker registries together
  (:meth:`~repro.shard.coordinator.ShardedAnalyzer.aggregate_telemetry`
  now delegates here).
* :class:`TelemetryFederation` — a per-node snapshot store.  Remote
  nodes ship compact registry snapshots over the existing synopsis
  socket (the ``TELEMETRY`` envelope, see :mod:`repro.shard.server`);
  :meth:`TelemetryFederation.absorb` files each one under its node id,
  stamping every sample with a ``node=<id>`` label.  A registry with a
  federation attached (:meth:`~repro.telemetry.MetricsRegistry.
  federation`) folds the federated families into every ``collect()``,
  so exporters, the stats CLI, ``repro top``, and the health engine
  all see the fleet without any of them knowing federation exists.

Label hygiene: the ``node`` label is reserved for federation.  A
remote family that already carries a ``node`` label keeps its own value
(the snapshot wins — it knows its origin better than the transport
does); everything else gets the transport-assigned node id.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from .registry import NULL_REGISTRY

__all__ = [
    "TelemetryFederation",
    "label_samples",
    "merge_snapshots",
    "validate_families",
]

#: A collected snapshot: list of plain family dicts (see
#: :meth:`~repro.telemetry.MetricsRegistry.collect`).
Families = List[dict]

#: The reserved federation label.
NODE_LABEL = "node"


def validate_families(families: Families) -> None:
    """Reject structures that are not in the snapshot wire form.

    Raises ``ValueError`` unless ``families`` is a list of family dicts
    each carrying ``name``/``type``/``help``/``label_names``/``samples``
    with every sample holding a ``labels`` dict and either a ``value``
    or the ``count``/``sum``/``buckets`` histogram triple.  Used at the
    trust boundary (absorbing a remote node's TELEMETRY payload) so a
    malformed snapshot is refused at absorb time instead of corrupting
    every later ``collect()``.
    """
    if not isinstance(families, list):
        raise ValueError("snapshot must be a list of family dicts")
    for family in families:
        if not isinstance(family, dict):
            raise ValueError("family must be a dict")
        for key in ("name", "type", "help", "label_names", "samples"):
            if key not in family:
                raise ValueError(f"family missing {key!r}")
        if not isinstance(family["name"], str) or not isinstance(
            family["samples"], list
        ):
            raise ValueError("family name must be str, samples a list")
        for sample in family["samples"]:
            if not isinstance(sample, dict) or not isinstance(
                sample.get("labels"), dict
            ):
                raise ValueError("sample must carry a labels dict")
            if "value" in sample:
                continue
            if not ("count" in sample and "sum" in sample and "buckets" in sample):
                raise ValueError("sample needs value or count/sum/buckets")


def _sample_key(sample: dict) -> Tuple[Tuple[str, str], ...]:
    """Order-independent identity of one sample's label set."""
    return tuple(sorted((str(k), str(v)) for k, v in sample["labels"].items()))


def _copy_sample(sample: dict) -> dict:
    """A mutation-safe copy of one sample dict (labels and buckets too)."""
    copied = dict(sample, labels=dict(sample["labels"]))
    if "buckets" in sample:
        copied["buckets"] = [list(pair) for pair in sample["buckets"]]
    return copied


def merge_snapshots(snapshots: Iterable[Families]) -> Families:
    """Merge family snapshots: same-family, same-label samples are summed.

    The result uses the same plain-dict wire form as the inputs and is
    sorted by family name.  Counter and gauge samples of identical
    label sets add their values; histogram samples add counts, sums,
    and per-bucket counts (bucket layouts are assumed aligned — they
    come from the same metric definitions).  Samples whose label sets
    appear in only one snapshot pass through unchanged, so snapshots
    with disjoint labels (e.g. per-node series) simply union.

    Family metadata (help text, label name list) comes from the first
    snapshot that mentions the family; label name lists are unioned in
    first-seen order so a federated family can carry labels the local
    one does not declare (the ``node`` label, typically).
    """
    merged: Dict[str, dict] = {}
    for snapshot in snapshots:
        for family in snapshot:
            name = family["name"]
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "name": name,
                    "type": family["type"],
                    "help": family["help"],
                    "label_names": list(family["label_names"]),
                    "samples": [
                        _copy_sample(sample) for sample in family["samples"]
                    ],
                }
                continue
            for label in family["label_names"]:
                if label not in target["label_names"]:
                    target["label_names"].append(label)
            index = {
                _sample_key(sample): sample for sample in target["samples"]
            }
            for sample in family["samples"]:
                into = index.get(_sample_key(sample))
                if into is None:
                    target["samples"].append(_copy_sample(sample))
                elif "buckets" in sample:
                    into["count"] += sample["count"]
                    into["sum"] += sample["sum"]
                    into["buckets"] = [
                        [bound, count + other[1]]
                        for (bound, count), other in zip(
                            into["buckets"], sample["buckets"]
                        )
                    ]
                else:
                    into["value"] += sample["value"]
    return [merged[name] for name in sorted(merged)]


def label_samples(families: Families, **labels: str) -> Families:
    """A copy of ``families`` with ``labels`` stamped onto every sample.

    Labels already present on a sample win over the stamped ones — a
    snapshot that names its own ``node`` keeps it.  New label names are
    appended to each family's ``label_names``.
    """
    out: Families = []
    for family in families:
        label_names = list(family["label_names"])
        for name in labels:
            if name not in label_names:
                label_names.append(name)
        stamped = []
        for sample in family["samples"]:
            copied = _copy_sample(sample)
            copied["labels"] = {**labels, **copied["labels"]}
            stamped.append(copied)
        out.append(dict(family, label_names=label_names, samples=stamped))
    return out


class TelemetryFederation:
    """Per-node remote snapshot store behind a deployment registry.

    Thread-safe: :meth:`absorb` is called from transport threads (the
    ingest server's event loop) while :meth:`collect` runs on whoever
    is exporting.  Each node's latest snapshot replaces its previous
    one — federation is last-writer-wins per node, matching the
    "periodic compact snapshot" push model of the wire protocol.

    Parameters
    ----------
    registry:
        Registry receiving the federation's own accounting
        (``federation_snapshots``, ``federation_nodes``,
        ``federation_staleness_seconds``); defaults to
        :data:`~repro.telemetry.NULL_REGISTRY`.  Note this is *not*
        automatically the registry whose ``collect()`` folds the
        federated families in — attach via
        :meth:`MetricsRegistry.federation` for that.
    clock:
        Unix-time source for staleness accounting (injectable for
        tests).
    """

    def __init__(self, registry=None, clock=time.time):
        self._lock = threading.Lock()
        self._snapshots: Dict[str, Families] = {}
        self._received_at: Dict[str, float] = {}
        self._clock = clock
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_snapshots = registry.counter(
            "federation_snapshots",
            "remote telemetry snapshots absorbed, by node",
            labels=(NODE_LABEL,),
        )
        registry.gauge(
            "federation_nodes",
            "remote nodes with a federated telemetry snapshot on file",
        ).set_function(lambda: len(self._snapshots))
        self._m_staleness = registry.gauge(
            "federation_staleness_seconds",
            "age of each node's newest federated snapshot",
            labels=(NODE_LABEL,),
        )

    def absorb(self, node: str, families: Families) -> None:
        """File ``families`` as node ``node``'s current snapshot.

        Every sample is stamped with ``node=<id>`` (unless the remote
        snapshot already labelled it) and the node's previous snapshot
        is replaced.  Malformed input raises ``ValueError`` (see
        :func:`validate_families`) and leaves the store untouched.
        """
        node = str(node)
        validate_families(families)
        labelled = label_samples(families, **{NODE_LABEL: node})
        now = self._clock()
        with self._lock:
            self._snapshots[node] = labelled
            self._received_at[node] = now
        self._m_snapshots.labels(node=node).inc()
        self._m_staleness.labels(node=node).set_function(
            lambda: self._clock() - self._received_at.get(node, now)
        )

    def forget(self, node: str) -> bool:
        """Drop node ``node``'s snapshot; True if one was on file."""
        with self._lock:
            self._received_at.pop(node, None)
            return self._snapshots.pop(node, None) is not None

    def nodes(self) -> Tuple[str, ...]:
        """Node ids with a snapshot on file, sorted."""
        with self._lock:
            return tuple(sorted(self._snapshots))

    def staleness(self, node: str) -> Optional[float]:
        """Seconds since ``node``'s newest snapshot; None if unknown."""
        with self._lock:
            received = self._received_at.get(node)
        return None if received is None else self._clock() - received

    def collect(self) -> Families:
        """All nodes' labelled snapshots merged into one family list."""
        with self._lock:
            snapshots = list(self._snapshots.values())
        return merge_snapshots(snapshots)
