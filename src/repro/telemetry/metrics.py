"""Metric primitives: counters, gauges, and log-scale histograms.

Three metric kinds, mirroring the Prometheus data model but with zero
dependencies:

* :class:`CounterFamily` — monotonically increasing counts (tasks
  observed, frames flushed, anomalies emitted).
* :class:`GaugeFamily` — instantaneous values that go up and down
  (open detection windows, pending wire payloads).
* :class:`HistogramFamily` — distributions over fixed log-scale
  buckets (window close lag).

Each *family* owns the metric name, help text, and declared label
names; :meth:`MetricFamily.labels` returns (creating on first use) the
*child* holding the actual value for one label combination, e.g.
``detector_windows_closed{stage="3"}``.  A family declared with no
label names acts directly as its own single child, so
``registry.counter("x").inc()`` works without a ``labels()`` hop.

Thread safety: one lock per family guards both child creation and all
value updates, so concurrent ``inc``/``observe`` calls never lose
updates.  Hot paths that cannot afford a lock per event should keep a
plain attribute and register a *callback-backed* child instead
(:meth:`_Child.set_function`): the value is read from the callable only
at collection time, making steady-state instrumentation free.  This is
the pattern the tracker and detector use (DESIGN.md §10).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricFamily",
    "DEFAULT_BUCKETS",
    "log_buckets",
]


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` geometric bucket upper bounds: start, start*factor, ...

    The implicit ``+Inf`` bucket is always appended by the histogram, so
    the returned bounds only cover the finite range.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("log_buckets needs start > 0, factor > 1, count >= 1")
    bounds = []
    value = float(start)
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: Default histogram bounds: decades from 1 ms to 1000 s.  Latencies in
#: this codebase are event-time lags, bounded by a few window widths.
DEFAULT_BUCKETS = log_buckets(0.001, 10.0, 7)


class _Child:
    """Shared machinery of one (family, label-values) series."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set_function(self, fn: Callable[[], float]) -> None:
        """Source this series from ``fn`` at collection time.

        Used for hot-path instrumentation: the instrumented object keeps
        a plain attribute and the registry reads it lazily, so the hot
        loop pays nothing.  Re-binding replaces the previous callable
        (the newest instrument owns the series).
        """
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        """Current value (evaluates the callback for fn-backed series)."""
        fn = self._fn
        return float(fn()) if fn is not None else self._value


class Counter(_Child):
    """A monotonically increasing count."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        with self._lock:
            self._value += amount


class Gauge(_Child):
    """An instantaneous value that can go up and down."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount


class Histogram(_Child):
    """Cumulative-bucket histogram over fixed bounds.

    ``_counts[i]`` is the number of observations <= ``bounds[i]``-exclusive
    slot (non-cumulative internally; cumulated at collection), with one
    extra slot for the implicit ``+Inf`` bucket.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]):
        super().__init__(lock)
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs; the last bound is +Inf."""
        out: List[Tuple[float, int]] = []
        cumulative = 0
        with self._lock:
            for bound, count in zip(self._bounds, self._counts):
                cumulative += count
                out.append((bound, cumulative))
            out.append((float("inf"), cumulative + self._counts[-1]))
        return out


class MetricFamily:
    """Base family: name + help + label names + children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", label_names: Tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not self.label_names:
            # Unlabeled families exist (at zero) from the moment they are
            # registered — matching Prometheus client behavior and keeping
            # never-hit counters visible in snapshots.
            self.labels()

    # -- children -------------------------------------------------------------
    def _new_child(self) -> _Child:
        raise NotImplementedError

    def labels(self, **labels: object) -> "_Child":
        """The child for one label-value combination (created on demand)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._new_child()
        return child

    def _default(self) -> "_Child":
        """The single child of an unlabeled family."""
        if self.label_names:
            raise ValueError(
                f"{self.name} declares labels {self.label_names}; "
                f"call .labels(...) first"
            )
        return self.labels()

    def set_function(self, fn: Callable[[], float]) -> None:
        """Callback-source the unlabeled child (see :meth:`_Child.set_function`)."""
        self._default().set_function(fn)

    # -- collection -----------------------------------------------------------
    def collect(self) -> Dict[str, object]:
        """Snapshot this family as a plain JSON-able dict."""
        samples: List[Dict[str, object]] = []
        with self._lock:
            items = sorted(self._children.items())
        for key, child in items:
            sample: Dict[str, object] = {
                "labels": dict(zip(self.label_names, key))
            }
            if isinstance(child, Histogram):
                sample["count"] = child.count
                sample["sum"] = child.sum
                sample["buckets"] = [
                    ["+Inf" if bound == float("inf") else bound, count]
                    for bound, count in child.buckets()
                ]
            else:
                sample["value"] = child.value
            samples.append(sample)
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "samples": samples,
        }


class CounterFamily(MetricFamily):
    """Family of :class:`Counter` children."""

    kind = "counter"

    def _new_child(self) -> Counter:
        return Counter(self._lock)

    def labels(self, **labels: object) -> Counter:
        """The :class:`Counter` child for one label combination."""
        return super().labels(**labels)  # type: ignore[return-value]

    def inc(self, amount: float = 1) -> None:
        """Increment the unlabeled child."""
        self._default().inc(amount)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        """Value of the unlabeled child."""
        return self._default().value


class GaugeFamily(MetricFamily):
    """Family of :class:`Gauge` children."""

    kind = "gauge"

    def _new_child(self) -> Gauge:
        return Gauge(self._lock)

    def labels(self, **labels: object) -> Gauge:
        """The :class:`Gauge` child for one label combination."""
        return super().labels(**labels)  # type: ignore[return-value]

    def set(self, value: float) -> None:
        """Set the unlabeled child."""
        self._default().set(value)  # type: ignore[attr-defined]

    def inc(self, amount: float = 1) -> None:
        """Increment the unlabeled child."""
        self._default().inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1) -> None:
        """Decrement the unlabeled child."""
        self._default().dec(amount)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        """Value of the unlabeled child."""
        return self._default().value


class HistogramFamily(MetricFamily):
    """Family of :class:`Histogram` children sharing one bucket layout."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Tuple[str, ...] = (),
        buckets: Optional[Iterable[float]] = None,
    ):
        bounds = tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket bound")
        # Set before super().__init__: an unlabeled family materializes
        # its default child there, and _new_child reads bucket_bounds.
        self.bucket_bounds = bounds
        super().__init__(name, help, label_names)

    def _new_child(self) -> Histogram:
        return Histogram(self._lock, self.bucket_bounds)

    def labels(self, **labels: object) -> Histogram:
        """The :class:`Histogram` child for one label combination."""
        return super().labels(**labels)  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        """Observe into the unlabeled child."""
        self._default().observe(value)  # type: ignore[attr-defined]

    @property
    def count(self) -> int:
        """Observation count of the unlabeled child."""
        return self._default().count  # type: ignore[attr-defined]

    @property
    def sum(self) -> float:
        """Observation sum of the unlabeled child."""
        return self._default().sum  # type: ignore[attr-defined]
