"""Exporters: JSON-lines snapshots and Prometheus text exposition.

Both exporters consume the plain-dict snapshot structure produced by
:meth:`MetricsRegistry.collect` (or an already-collected list of family
dicts), so they work identically on a live registry and on a snapshot
re-read from disk.

* :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per line:
  a header line identifying the format, then one line per metric
  family.  Appending successive snapshots to one file gives a cheap
  time series; :func:`read_jsonl` returns the families of the *last*
  snapshot in the file, :func:`read_jsonl_series` every snapshot with
  its header timestamp (the history ``python -m repro top`` replays).
* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` comments, one sample per line, histograms as
  cumulative ``_bucket``/``_sum``/``_count`` series) for scraping or
  pushing to a gateway.
* :func:`render_table` — a fixed-width human-readable table for the
  ``python -m repro stats`` CLI.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "SNAPSHOT_FORMAT",
    "read_jsonl",
    "read_jsonl_series",
    "render_prometheus",
    "render_table",
    "snapshot_of",
    "write_jsonl",
]

#: Format tag on the header line of every JSON-lines snapshot.
SNAPSHOT_FORMAT = "saad-telemetry/1"

Families = List[Dict[str, object]]
Source = Union[Families, "MetricsRegistryLike"]


class MetricsRegistryLike:
    """Structural type: anything with ``collect() -> list of dicts``."""

    def collect(self) -> Families:  # pragma: no cover - protocol only
        raise NotImplementedError


def snapshot_of(source: Source) -> Families:
    """Normalize a registry or an already-collected snapshot to family dicts."""
    if hasattr(source, "collect"):
        return source.collect()  # type: ignore[union-attr]
    return list(source)  # type: ignore[arg-type]


# -- JSON lines ---------------------------------------------------------------
def write_jsonl(
    source: Source,
    destination: Union[str, IO[str]],
    timestamp: Optional[float] = None,
) -> int:
    """Write one snapshot (header + one line per family); returns line count.

    ``destination`` is a path (opened for append, so successive
    snapshots accumulate) or an open text file object.
    """
    families = snapshot_of(source)
    header = {"format": SNAPSHOT_FORMAT, "families": len(families)}
    if timestamp is not None:
        header["unix_time"] = timestamp
    lines = [json.dumps(header)]
    lines.extend(json.dumps(family, sort_keys=True) for family in families)
    text = "\n".join(lines) + "\n"
    if isinstance(destination, str):
        with open(destination, "a", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(lines)


def read_jsonl_series(
    source: Union[str, IO[str]],
) -> List[tuple]:
    """Read every snapshot in a JSON-lines telemetry file, in order.

    Returns ``(timestamp, families)`` pairs — ``timestamp`` is the
    header's ``unix_time`` when the writer stamped one, else None.
    Appending snapshots over time and replaying them through this
    reader is the offline history behind ``python -m repro top``.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    snapshots: List[tuple] = []
    current: Optional[Families] = None
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {number}: not JSON ({exc})") from None
        if "format" in record:
            if record["format"] != SNAPSHOT_FORMAT:
                raise ValueError(
                    f"line {number}: unsupported snapshot format "
                    f"{record['format']!r}"
                )
            current = []
            snapshots.append((record.get("unix_time"), current))
        elif current is None:
            raise ValueError(f"line {number}: family line before snapshot header")
        else:
            current.append(record)
    if not snapshots:
        raise ValueError("no telemetry snapshot header found")
    return snapshots


def read_jsonl(source: Union[str, IO[str]]) -> Families:
    """Read back the *last* snapshot in a JSON-lines telemetry file."""
    return read_jsonl_series(source)[-1][1]


# -- Prometheus text format ---------------------------------------------------
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_labels(labels: Dict[str, str], extra: Iterable[str] = ()) -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    ]
    parts.extend(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(source: Source) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in snapshot_of(source):
        name = family["name"]
        help_text = family.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(str(help_text))}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:  # type: ignore[union-attr]
            labels = sample.get("labels") or {}
            if family["type"] == "histogram":
                for bound, count in sample["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _format_value(bound)
                    bucket_labels = _format_labels(labels, [f'le="{le}"'])
                    lines.append(f"{name}_bucket{bucket_labels} {count}")
                base = _format_labels(labels)
                lines.append(f"{name}_sum{base} {_format_value(sample['sum'])}")
                lines.append(f"{name}_count{base} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# -- human-readable table -----------------------------------------------------
def render_table(source: Source) -> str:
    """Fixed-width ``metric{labels}  type  value`` listing for terminals."""
    rows: List[tuple] = []
    for family in snapshot_of(source):
        name = str(family["name"])
        for sample in family["samples"]:  # type: ignore[union-attr]
            labels = sample.get("labels") or {}
            series = name + _format_labels(labels)
            if family["type"] == "histogram":
                value = (
                    f"count={sample['count']} sum={_format_value(sample['sum'])}"
                )
            else:
                value = _format_value(sample["value"])
            rows.append((series, str(family["type"]), value))
    if not rows:
        return "(no metrics)\n"
    width_series = max(len(row[0]) for row in rows)
    width_kind = max(len(row[1]) for row in rows)
    lines = [
        f"{series:<{width_series}}  {kind:<{width_kind}}  {value}"
        for series, kind, value in rows
    ]
    return "\n".join(lines) + "\n"
