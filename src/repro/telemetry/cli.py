"""``python -m repro stats`` — render SAAD telemetry.

Two sources:

* **Live demo** (no file argument): runs the shared deterministic demo
  deployment (:func:`repro.telemetry.demo.demo_deployment` — the same
  one behind ``python -m repro trace`` and ``python -m repro top``) and
  renders the resulting registry.  This exercises every metric family
  in the catalog (docs/OPERATIONS.md), so it doubles as a live
  end-to-end check of the telemetry wiring.
* **Saved snapshot** (a ``.jsonl`` path written by
  :func:`repro.telemetry.export.write_jsonl`): re-renders the *last*
  snapshot in the file.

Usage::

    python -m repro stats                 # live demo deployment, table
    python -m repro stats --prom          # ... Prometheus text format
    python -m repro stats --write X.jsonl # ... also append a snapshot
    python -m repro stats X.jsonl         # render a saved snapshot
    python -m repro stats X.jsonl --prom
"""

from __future__ import annotations

from typing import List, Optional

from .demo import demo_deployment as _demo_deployment  # noqa: F401 (re-export)
from .demo import demo_registry as _demo_registry
from .export import read_jsonl, render_prometheus, render_table, write_jsonl


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro stats``; returns an exit code."""
    argv = list(argv or [])
    prom = False
    write_path: Optional[str] = None
    paths: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("-h", "--help"):
            print(__doc__)
            return 0
        if arg == "--prom":
            prom = True
        elif arg == "--write":
            i += 1
            if i >= len(argv):
                print("stats: --write needs a path")
                return 2
            write_path = argv[i]
        elif arg.startswith("-"):
            print(f"stats: unknown option {arg!r}")
            return 2
        else:
            paths.append(arg)
        i += 1
    if len(paths) > 1:
        print("stats: at most one snapshot file")
        return 2

    if paths:
        try:
            source = read_jsonl(paths[0])
        except (OSError, ValueError) as exc:
            print(f"stats: cannot read {paths[0]}: {exc}")
            return 1
    else:
        # Collect once: live gauges (e.g. federation staleness) must not
        # drift between a --write snapshot and the rendered table.
        source = _demo_registry().collect()

    if write_path is not None:
        write_jsonl(source, write_path)
        print(f"snapshot appended to {write_path}")
    print(render_prometheus(source) if prom else render_table(source), end="")
    return 0
