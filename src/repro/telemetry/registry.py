"""The metrics registry: the process's catalog of metric families.

A :class:`MetricsRegistry` is the unit of observability scope: every
instrumented component (tracker, stream, detector, ...) registers its
families into the registry it was constructed with, and the exporters
(:mod:`repro.telemetry.export`) snapshot a registry in one call.  The
``SAAD`` facade creates one registry per deployment and threads it
through every layer; components constructed standalone default to a
private registry so telemetry is *on by default* everywhere.

Disabling telemetry is a type swap, not a flag check: pass a
:class:`NullRegistry` and every registration returns the shared no-op
metric, so instrumented call sites run a single dynamic dispatch to an
empty method — the fast path the overhead benchmark's "unmetered" leg
measures.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple, Type

from .metrics import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricFamily,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "null_metric",
]


class MetricsRegistry:
    """Thread-safe name -> :class:`MetricFamily` catalog.

    Registration is idempotent: asking for an existing name returns the
    existing family (so independent call sites can share a series), but
    re-registering a name as a different metric kind or with different
    label names is a programming error and raises ``ValueError``.
    """

    #: Real registries collect; the Null variant advertises False so
    #: components can gate optional, expensive instrumentation.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}
        self._federation = None

    # -- registration ---------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> CounterFamily:
        """Register (or fetch) a counter family called ``name``."""
        return self._get_or_create(CounterFamily, name, help, tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> GaugeFamily:
        """Register (or fetch) a gauge family called ``name``."""
        return self._get_or_create(GaugeFamily, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> HistogramFamily:
        """Register (or fetch) a histogram family called ``name``."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = HistogramFamily(name, help, tuple(labels), buckets)
                self._families[name] = family
                return family
        self._check_compatible(family, HistogramFamily, name, tuple(labels))
        return family  # type: ignore[return-value]

    def _get_or_create(
        self,
        cls: Type[MetricFamily],
        name: str,
        help: str,
        label_names: Tuple[str, ...],
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, label_names)
                self._families[name] = family
                return family
        self._check_compatible(family, cls, name, label_names)
        return family

    @staticmethod
    def _check_compatible(
        family: MetricFamily,
        cls: Type[MetricFamily],
        name: str,
        label_names: Tuple[str, ...],
    ) -> None:
        if not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        if family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{family.label_names}, not {label_names}"
            )

    # -- federation -----------------------------------------------------------
    def federation(self):
        """This registry's :class:`~repro.telemetry.TelemetryFederation`.

        Created on first call (with the federation's own accounting
        registered here); afterwards every :meth:`collect` folds the
        federated per-node families into the snapshot, so exporters and
        health rules see the fleet, not just this process.  Absorb
        remote snapshots with ``registry.federation().absorb(node,
        families)`` — the ingest server does this for ``TELEMETRY``
        envelopes.
        """
        if self._federation is None:
            from .federation import TelemetryFederation

            # Construct outside the registry lock: the federation
            # registers its own accounting families here.
            candidate = TelemetryFederation(registry=self)
            with self._lock:
                if self._federation is None:
                    self._federation = candidate
        return self._federation

    @property
    def federated(self) -> bool:
        """True once :meth:`federation` has been called."""
        return self._federation is not None

    # -- introspection --------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        """The family called ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def names(self) -> Tuple[str, ...]:
        """All registered metric names, sorted."""
        with self._lock:
            return tuple(sorted(self._families))

    def collect(self) -> List[Dict[str, object]]:
        """Snapshot every family as plain dicts, sorted by name.

        The returned structure is the wire form of the JSON-lines
        exporter and the input of every renderer — collecting and
        re-reading a written snapshot yield the same value.  With a
        :meth:`federation` attached, remote nodes' absorbed snapshots
        are folded in (their samples carrying ``node=<id>`` labels), so
        one snapshot covers the fleet.
        """
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        local = [family.collect() for family in families]
        federation = self._federation
        if federation is None:
            return local
        from .federation import merge_snapshots

        return merge_snapshots([local, federation.collect()])


class _NullMetric:
    """The do-nothing metric every :class:`NullRegistry` call returns.

    Implements the union of the counter/gauge/histogram child and family
    surfaces so instrumented code never branches on whether telemetry is
    enabled.
    """

    __slots__ = ()

    kind = "null"
    name = ""
    help = ""
    label_names: Tuple[str, ...] = ()
    bucket_bounds: Tuple[float, ...] = ()
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, **labels: object) -> "_NullMetric":
        """Return self: one shared no-op child for every combination."""
        return self

    def inc(self, amount: float = 1) -> None:
        """No-op."""

    def dec(self, amount: float = 1) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def set_function(self, fn) -> None:
        """No-op."""

    def buckets(self) -> list:
        """No buckets."""
        return []

    def collect(self) -> Dict[str, object]:
        """Empty family snapshot."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "label_names": [],
            "samples": [],
        }


#: The shared no-op metric (one instance serves the whole process).
null_metric = _NullMetric()


class NullRegistry:
    """Telemetry disabled: every registration returns the no-op metric.

    ``collect()`` is empty and ``enabled`` is False; instrumented hot
    paths degrade to one no-op method call per event (or zero, for
    callback-backed series that are simply never read).
    """

    enabled = False

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()):
        """The shared no-op metric."""
        return null_metric

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()):
        """The shared no-op metric."""
        return null_metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ):
        """The shared no-op metric."""
        return null_metric

    def get(self, name: str) -> None:
        """Always None."""
        return None

    def names(self) -> Tuple[str, ...]:
        """Always empty."""
        return ()

    def collect(self) -> List[Dict[str, object]]:
        """Always empty."""
        return []

    def federation(self) -> "NullRegistry":
        """Telemetry off: the registry poses as its own inert federation."""
        return self

    @property
    def federated(self) -> bool:
        """Never federated."""
        return False

    # Inert federation surface (absorb/forget/nodes/staleness), so a
    # transport wired to ``registry.federation()`` needs no None checks.
    def absorb(self, node: str, families) -> None:
        """Discard a remote snapshot (telemetry off)."""

    def forget(self, node: str) -> bool:
        """Nothing on file."""
        return False

    def nodes(self) -> Tuple[str, ...]:
        """No federated nodes."""
        return ()

    def staleness(self, node: str) -> None:
        """Unknown node."""
        return None


#: Shared inert registry for "telemetry off" call sites.
NULL_REGISTRY = NullRegistry()
