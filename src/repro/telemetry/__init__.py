"""SAAD self-telemetry: a dependency-free metrics subsystem.

The paper positions SAAD as a *low-overhead, always-on* monitor
(Sec. 5.3.3 budgets the analyzer; Fig. 7 measures the tracker) — this
package is how the reproduction observes *itself* under that budget.
One :class:`MetricsRegistry` per deployment collects counters, gauges,
and log-scale histograms from every hot path (tracker, wire codec,
detector, training, persistence); two exporters snapshot it (JSON-lines
and Prometheus text format) and ``python -m repro stats`` renders it.

Quick use::

    from repro.telemetry import MetricsRegistry, render_prometheus

    registry = MetricsRegistry()
    closed = registry.counter(
        "detector_windows_closed", "windows finalized", labels=("stage",)
    )
    closed.labels(stage="3").inc()
    print(render_prometheus(registry))

Telemetry is on by default (each component falls back to a private
registry); pass a :class:`NullRegistry` to disable it — the no-op fast
path the overhead benchmark's "unmetered" leg measures.  The metrics
catalog with operational meaning and alerting hints lives in
``docs/OPERATIONS.md``; the architecture and overhead methodology in
DESIGN.md §10.
"""

from .export import (
    SNAPSHOT_FORMAT,
    read_jsonl,
    read_jsonl_series,
    render_prometheus,
    render_table,
    snapshot_of,
    write_jsonl,
)
from .federation import (
    TelemetryFederation,
    label_samples,
    merge_snapshots,
    validate_families,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricFamily,
    log_buckets,
)
from .registry import NULL_REGISTRY, MetricsRegistry, NullRegistry, null_metric

__all__ = [
    "Counter",
    "CounterFamily",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SNAPSHOT_FORMAT",
    "TelemetryFederation",
    "label_samples",
    "log_buckets",
    "merge_snapshots",
    "null_metric",
    "read_jsonl",
    "read_jsonl_series",
    "render_prometheus",
    "render_table",
    "snapshot_of",
    "validate_families",
    "write_jsonl",
]
