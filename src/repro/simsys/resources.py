"""Blocking resources for simulation processes: queues, stores, semaphores.

These mirror the concurrency primitives of a staged server: bounded request
queues between stages, capacity-limited resources (disks, locks), and
condition-style wait events.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Environment
from .errors import QueueClosed
from .events import Event


class SimQueue:
    """A FIFO queue with blocking ``get`` and optional capacity.

    This is the task queue of the paper's producer-consumer staging model:
    producer threads ``put`` requests, consumer threads loop on ``get``.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()
        self._closed = False
        #: Total items ever enqueued (for monitoring/backpressure metrics).
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the queue; pending and future getters fail with QueueClosed."""
        self._closed = True
        while self._getters:
            getter = self._getters.popleft()
            if getter.callbacks is not None and not getter.triggered:
                getter.fail(QueueClosed(self.name))
        while self._putters:
            _, putter = self._putters.popleft()
            if putter.callbacks is not None and not putter.triggered:
                putter.fail(QueueClosed(self.name))

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; returns an event that triggers once accepted."""
        if self._closed:
            raise QueueClosed(self.name)
        done = Event(self.env)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((item, done))
            return done
        self._deliver(item)
        done.succeed()
        return done

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False if the queue is full or closed."""
        if self._closed:
            return False
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._deliver(item)
        return True

    def get(self) -> Event:
        """Dequeue an item; returns an event whose value is the item."""
        got = Event(self.env)
        if self._items:
            got.succeed(self._items.popleft())
            self._admit_putter()
        elif self._closed:
            got.fail(QueueClosed(self.name))
        else:
            self._getters.append(got)
        return got

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _deliver(self, item: Any) -> None:
        self.total_enqueued += 1
        while self._getters:
            getter = self._getters.popleft()
            if getter.callbacks is None or getter.triggered:
                continue  # cancelled/stale
            getter.succeed(item)
            return
        self._items.append(item)

    def _admit_putter(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            item, done = self._putters.popleft()
            if done.callbacks is None or done.triggered:
                continue
            self._deliver(item)
            done.succeed()


class Semaphore:
    """Counting semaphore; models capacity-limited resources and mutexes."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Returns an event that triggers once a slot is held."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of un-acquired semaphore {self.name!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.callbacks is None or waiter.triggered:
                continue
            waiter.succeed()  # hand the slot directly to the waiter
            return
        self._in_use -= 1

    def cancel(self, event: Event) -> None:
        """Withdraw a pending :meth:`acquire` (e.g. after a wait timeout).

        If the slot was already granted to the event, it is released.
        """
        try:
            self._waiters.remove(event)
            return
        except ValueError:
            pass
        if event.triggered and event.ok:
            self.release()


class Gate:
    """A reentrant open/closed barrier processes can wait on.

    Models the Cassandra MemTable *freeze*: while any freezer holds the
    gate closed (WAL retry in flight, memtable switch in progress), tasks
    that want to mutate must wait — and may time out, which is exactly
    the premature-termination flow the paper's Table 1 uncovers.

    ``close()`` calls nest; the gate opens when every close has been
    balanced by an ``open()``.
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._closed_count = 0
        self._waiters: Deque[Event] = deque()

    @property
    def is_closed(self) -> bool:
        return self._closed_count > 0

    def close(self) -> None:
        self._closed_count += 1

    def open(self) -> None:
        if self._closed_count <= 0:
            raise RuntimeError(f"open of already-open gate {self.name!r}")
        self._closed_count -= 1
        if self._closed_count == 0:
            waiters, self._waiters = self._waiters, deque()
            for waiter in waiters:
                if waiter.callbacks is not None and not waiter.triggered:
                    waiter.succeed(True)

    def force_open(self) -> None:
        """Open regardless of nesting (recovery/restart paths)."""
        self._closed_count = max(1, self._closed_count)
        self.open()

    def wait(self, timeout: Optional[float] = None):
        """Process generator: wait until open; returns False on timeout."""
        if not self.is_closed:
            return True
        waiter = Event(self.env)
        self._waiters.append(waiter)
        if timeout is None:
            yield waiter
            return True
        timer = self.env.timeout(timeout)
        yield self.env.any_of([waiter, timer])
        if waiter.triggered:
            return True
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass
        return False


class Mutex(Semaphore):
    """A binary semaphore.

    Used by the Cassandra simulation for the MemTable freeze lock whose
    non-release under a WAL fault produces the paper's Table 1 anomaly.
    """

    def __init__(self, env: Environment, name: str = ""):
        super().__init__(env, capacity=1, name=name)

    @property
    def locked(self) -> bool:
        return self._in_use >= self.capacity
