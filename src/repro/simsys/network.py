"""A simulated cluster network: latency, bandwidth, partitions.

Message transfer is modelled as latency + size/bandwidth, sampled with a
small log-normal jitter.  Hosts can be partitioned from each other to model
the paper's "node becomes non-responsive" scenarios, and per-host slowdown
factors model interrupt pressure from disk hogs stealing kernel cycles.
"""

from __future__ import annotations

from typing import Dict, Generator, Set, Tuple

from .engine import Environment
from .errors import SimulatedIOError
from .rng import SimRandom


class NetworkFabric:
    """All-to-all network between named hosts."""

    def __init__(
        self,
        env: Environment,
        latency_median_s: float = 0.0004,
        bandwidth_bps: float = 1e9,
        seed: int = 3,
    ):
        if latency_median_s <= 0 or bandwidth_bps <= 0:
            raise ValueError("latency and bandwidth must be positive")
        self.env = env
        self.latency_median_s = latency_median_s
        self.bandwidth_bps = bandwidth_bps
        self._rng = SimRandom(seed)
        self._partitioned: Set[Tuple[str, str]] = set()
        #: Per-host multiplier on network service time (e.g. hog pressure).
        self.host_slowdown: Dict[str, float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- partitions ----------------------------------------------------------
    def partition(self, host_a: str, host_b: str) -> None:
        """Sever connectivity between two hosts (both directions)."""
        self._partitioned.add(self._key(host_a, host_b))

    def heal(self, host_a: str, host_b: str) -> None:
        self._partitioned.discard(self._key(host_a, host_b))

    def isolate(self, host: str, others) -> None:
        """Partition ``host`` from every host in ``others``."""
        for other in others:
            if other != host:
                self.partition(host, other)

    def is_partitioned(self, host_a: str, host_b: str) -> bool:
        return self._key(host_a, host_b) in self._partitioned

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # -- transfer ------------------------------------------------------------
    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        latency = self._rng.lognormal_by_median(self.latency_median_s, sigma=0.25)
        transfer = nbytes / self.bandwidth_bps
        slow = max(
            self.host_slowdown.get(src, 1.0), self.host_slowdown.get(dst, 1.0)
        )
        return (latency + transfer) * slow

    def send(self, src: str, dst: str, nbytes: int) -> Generator:
        """Process generator that completes when the message is delivered."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if self.is_partitioned(src, dst):
            # Model a connect timeout rather than an instant refusal.
            yield self.env.timeout(1.0)
            raise SimulatedIOError(f"network partition {src} <-> {dst}", path="net")
        yield self.env.timeout(self.transfer_time(src, dst, nbytes))
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return nbytes
