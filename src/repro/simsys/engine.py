"""The discrete-event simulation core: :class:`Environment` and :class:`Process`.

A process is a generator that yields :class:`~repro.simsys.events.Event`
objects.  The environment maintains a priority queue of triggered events
ordered by ``(time, priority, sequence)`` and processes them in order,
resuming any waiting generators.

Simulated time is a ``float`` in **seconds**.  All system simulations in
this repository run on this clock, which makes multi-hour experiments
deterministic and fast.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from .errors import Interrupted, SimError, StopSimulation
from .events import Event, NORMAL, PENDING, Timeout, URGENT, all_of, any_of


class Process(Event):
    """Wraps a generator as a simulation process.

    A process is itself an event that triggers when the generator returns
    (value = generator return value) or raises (failure).  ``yield proc``
    therefore joins a child process.
    """

    __slots__ = ("_generator", "_target", "name", "thread")

    def __init__(self, env, generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The simulated thread executing this process, if any.  Used by the
        #: logging/tracking layer to locate thread-local task context.
        self.thread = None
        #: The event this process currently waits on (None when running).
        self._target: Optional[Event] = None
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        if not self.is_alive:
            return
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupted(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        # Drop the wait target; an interrupt may arrive while a target is
        # still pending, in which case we must unsubscribe from it.
        if (
            self._target is not None
            and self._target is not event
            and self._target.callbacks is not None
        ):
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defuse()
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                self._generator.throw(
                    SimError(f"process {self.name!r} yielded non-event {next_event!r}")
                )
                return
            if next_event.callbacks is not None:
                # Event not yet processed: wait on it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return
            # Already-processed event: continue immediately with its value.
            event = next_event

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Environment:
    """Simulation environment: clock, event queue, process management."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_process

    @property
    def active_thread(self):
        """The simulated thread of the active process, if any."""
        proc = self._active_process
        return proc.thread if proc is not None else None

    # -- event creation -----------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]):
        """Condition that triggers when all ``events`` have triggered."""
        return all_of(self, events)

    def any_of(self, events: Iterable[Event]):
        """Condition that triggers when any of ``events`` has triggered."""
        return any_of(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue ``event`` for processing ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise StopSimulation("event queue is empty")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return  # already processed (defensive; should not happen)
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it to the caller of run().
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None:
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            stop = Event(self)
            stop._ok = True
            stop._value = None
            stop.callbacks.append(lambda _e: (_ for _ in ()).throw(StopSimulation()))
            self.schedule(stop, delay=until - self._now, priority=URGENT)
        try:
            while self._queue:
                self.step()
        except StopSimulation:
            self._now = until if until is not None else self._now

    def run_until_idle(self, max_time: Optional[float] = None) -> None:
        """Run until no events remain, optionally bounded by ``max_time``."""
        while self._queue and (max_time is None or self.peek() <= max_time):
            self.step()
        if max_time is not None and self._now < max_time and not self._queue:
            self._now = max_time
