"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation kernel errors."""


class StopSimulation(SimError):
    """Raised internally to halt :meth:`Environment.run` at a target time."""


class Interrupted(SimError):
    """Thrown into a process that another process interrupted.

    The interrupt ``cause`` is available as :attr:`cause` and is also the
    first ``args`` element, so ``str(exc)`` shows it.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class SimulatedIOError(SimError):
    """A simulated I/O request failed (e.g. injected error fault)."""

    def __init__(self, message: str = "simulated I/O error", *, path: str = ""):
        super().__init__(message)
        self.path = path


class QueueClosed(SimError):
    """Raised by queue operations after the queue has been closed."""


class ProcessCrashed(SimError):
    """A simulated server process terminated abnormally."""
