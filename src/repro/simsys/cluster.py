"""Host and cluster containers tying the simulation substrate together."""

from __future__ import annotations

from typing import Dict, List, Optional

from .disk import DiskHog, SimDisk
from .engine import Environment
from .faults import FaultInjector
from .network import NetworkFabric
from .rng import SeedSequenceFactory


class Host:
    """A simulated machine: a disk, a fault injector, a hog, CPU pressure."""

    def __init__(
        self,
        env: Environment,
        name: str,
        seeds: SeedSequenceFactory,
        disk_seek_median_s: float = 0.004,
        disk_bandwidth_bps: float = 80e6,
    ):
        self.env = env
        self.name = name
        self.fault_injector = FaultInjector(name, seed=seeds.child_seed(f"{name}/faults"))
        self.disk = SimDisk(
            env,
            name=f"{name}-disk",
            seek_median_s=disk_seek_median_s,
            bandwidth_bps=disk_bandwidth_bps,
            seed=seeds.child_seed(f"{name}/disk"),
        )
        self.disk.fault_injector = self.fault_injector
        self.hog = DiskHog(self.disk)
        self.alive = True

    @property
    def cpu_factor(self) -> float:
        """Multiplier on CPU service times (grows with hog pressure)."""
        return self.hog.cpu_pressure

    def crash(self) -> None:
        """Mark the host's server process as dead."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def __repr__(self) -> str:
        return f"<Host {self.name} {'up' if self.alive else 'down'}>"


class Cluster:
    """A set of hosts plus the connecting network fabric."""

    def __init__(
        self,
        env: Environment,
        host_names: List[str],
        seed: int = 42,
        network: Optional[NetworkFabric] = None,
    ):
        if not host_names:
            raise ValueError("cluster needs at least one host")
        if len(set(host_names)) != len(host_names):
            raise ValueError("duplicate host names")
        self.env = env
        self.seeds = SeedSequenceFactory(seed)
        self.network = network or NetworkFabric(
            env, seed=self.seeds.child_seed("network")
        )
        self.hosts: Dict[str, Host] = {
            name: Host(env, name, self.seeds) for name in host_names
        }

    def __getitem__(self, name: str) -> Host:
        return self.hosts[name]

    def __iter__(self):
        return iter(self.hosts.values())

    def __len__(self) -> int:
        return len(self.hosts)

    @property
    def host_names(self) -> List[str]:
        return list(self.hosts.keys())

    def alive_hosts(self) -> List[Host]:
        return [h for h in self.hosts.values() if h.alive]

    def sync_network_pressure(self) -> None:
        """Propagate each host's hog CPU pressure into the network fabric."""
        for host in self.hosts.values():
            self.network.host_slowdown[host.name] = host.hog.cpu_pressure
