"""Fault injection for simulated I/O paths.

Reproduces the paper's SystemTap-based failure model (Sec. 5.4, Table 3):
*error* faults fail a fraction of I/O requests on a given path, *delay*
faults pause them (100 ms in the paper); intensity is the affected fraction
(low = 1 %, high = 100 %).  Faults can be armed/disarmed manually or run on
a :class:`FaultSchedule` timeline, as in the paper's timed experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .engine import Environment
from .rng import SimRandom

#: Paper constants (Sec. 5.4): affected I/O fraction per intensity.
LOW_INTENSITY = 0.01
HIGH_INTENSITY = 1.0
#: Paper constant: delay faults pause I/O requests for 100 ms.
DELAY_FAULT_SECONDS = 0.100


@dataclass
class IODecision:
    """Outcome of consulting the injector for one I/O request."""

    fail: bool = False
    delay_s: float = 0.0


@dataclass
class FaultSpec:
    """One injectable fault.

    Parameters
    ----------
    path:
        I/O path tag the fault applies to (e.g. ``"wal"``, ``"flush"``).
    mode:
        ``"error"`` or ``"delay"``.
    intensity:
        Fraction of requests on the path that are affected.
    delay_s:
        Pause applied by delay faults.
    host:
        Restrict to a host name, or ``None`` for all hosts.
    """

    path: str
    mode: str
    intensity: float
    delay_s: float = DELAY_FAULT_SECONDS
    host: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("error", "delay"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0,1], got {self.intensity}")
        if not self.name:
            level = "high" if self.intensity >= HIGH_INTENSITY else "low"
            self.name = f"{self.mode}-{self.path}-{level}"


class FaultInjector:
    """Per-host injector consulted by :class:`~repro.simsys.disk.SimDisk`.

    Holds a set of *armed* faults; :meth:`on_io` rolls the dice for each
    matching fault and combines the outcomes.
    """

    def __init__(self, host: str, seed: int = 7):
        self.host = host
        self._rng = SimRandom(seed)
        self._armed: List[FaultSpec] = []
        #: Count of requests actually affected, per fault name.
        self.hits: dict = {}

    @property
    def armed_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(self._armed)

    def arm(self, fault: FaultSpec) -> None:
        if fault.host is not None and fault.host != self.host:
            return
        self._armed.append(fault)

    def disarm(self, fault: FaultSpec) -> None:
        self._armed = [f for f in self._armed if f is not fault]

    def disarm_all(self) -> None:
        self._armed = []

    def on_io(self, disk_name: str, path: str, write: bool) -> IODecision:
        """Decide the fate of one I/O request on ``path``."""
        decision = IODecision()
        for fault in self._armed:
            if fault.path != path:
                continue
            if not self._rng.bernoulli(fault.intensity):
                continue
            self.hits[fault.name] = self.hits.get(fault.name, 0) + 1
            if fault.mode == "error":
                decision.fail = True
            else:
                decision.delay_s += fault.delay_s
        return decision


@dataclass
class ScheduleEntry:
    start_s: float
    end_s: float
    fault: FaultSpec

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError(
                f"fault window must have end > start, got [{self.start_s}, {self.end_s}]"
            )


class FaultSchedule:
    """Arms and disarms faults on a timeline, as in the paper's experiments.

    Example (Sec. 5.4): low-intensity fault at minute 10 for 10 minutes,
    high-intensity at minute 30 for 10 minutes::

        schedule = FaultSchedule(env, injector)
        schedule.add(600, 1200, FaultSpec("wal", "error", LOW_INTENSITY))
        schedule.add(1800, 2400, FaultSpec("wal", "error", HIGH_INTENSITY))
        schedule.start()
    """

    def __init__(self, env: Environment, injector: FaultInjector):
        self.env = env
        self.injector = injector
        self.entries: List[ScheduleEntry] = []
        self._started = False

    def add(self, start_s: float, end_s: float, fault: FaultSpec) -> "FaultSchedule":
        self.entries.append(ScheduleEntry(start_s, end_s, fault))
        return self

    def start(self) -> None:
        """Launch the driver processes (idempotent)."""
        if self._started:
            raise RuntimeError("schedule already started")
        self._started = True
        for entry in self.entries:
            self.env.process(self._drive(entry), name=f"fault-{entry.fault.name}")

    def active_at(self, t: float) -> List[FaultSpec]:
        """Faults whose window covers time ``t`` (for plotting overlays)."""
        return [e.fault for e in self.entries if e.start_s <= t < e.end_s]

    def _drive(self, entry: ScheduleEntry):
        if entry.start_s > self.env.now:
            yield self.env.timeout(entry.start_s - self.env.now)
        self.injector.arm(entry.fault)
        yield self.env.timeout(entry.end_s - entry.start_s)
        self.injector.disarm(entry.fault)


@dataclass
class HogScheduleEntry:
    start_s: float
    end_s: float
    processes: int


class HogSchedule:
    """Timeline of disk-hog faults (paper Table 2)."""

    def __init__(self, env: Environment, hogs: List):
        self.env = env
        self.hogs = list(hogs)
        self.entries: List[HogScheduleEntry] = []
        self._started = False

    def add(self, start_s: float, end_s: float, processes: int) -> "HogSchedule":
        if processes <= 0:
            raise ValueError(f"processes must be positive, got {processes}")
        if end_s <= start_s:
            raise ValueError("hog window must have end > start")
        self.entries.append(HogScheduleEntry(start_s, end_s, processes))
        return self

    def start(self) -> None:
        if self._started:
            raise RuntimeError("schedule already started")
        self._started = True
        for entry in self.entries:
            self.env.process(self._drive(entry), name="hog-schedule")

    def active_at(self, t: float) -> int:
        """Number of hog processes active at time ``t``."""
        return sum(e.processes for e in self.entries if e.start_s <= t < e.end_s)

    def _drive(self, entry: HogScheduleEntry):
        if entry.start_s > self.env.now:
            yield self.env.timeout(entry.start_s - self.env.now)
        for hog in self.hogs:
            hog.start(entry.processes)
        yield self.env.timeout(entry.end_s - entry.start_s)
        for hog in self.hogs:
            hog.active_processes = max(0, hog.active_processes - entry.processes)
            hog._apply()
