"""Simulated threads and thread pools.

The paper's two staging models map onto these primitives:

* **Producer-Consumer** — an :class:`Executor` owns a pool of
  :class:`SimThread` workers looping over a shared task queue.  A worker
  thread is *reused* across tasks, exactly the thread-reuse behaviour that
  defeats naive log-mining and that SAAD's ``set_context`` solves.
* **Dispatcher-Worker** — :func:`spawn_worker` starts a fresh thread per
  task; thread exit hooks model Java's ``finalize()`` used by the paper to
  infer task termination.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from .engine import Environment, Process
from .errors import QueueClosed
from .resources import SimQueue

_tid_counter = itertools.count(1)


class SimThread:
    """A simulated thread: an identity plus thread-local storage.

    Parameters
    ----------
    env:
        Owning environment.
    target:
        A generator to run as this thread's body, or ``None`` to create the
        thread object before attaching a body via :meth:`start`.
    name:
        Human-readable thread name (e.g. ``"cassandra-worker-3"``).
    """

    def __init__(
        self,
        env: Environment,
        target: Optional[Generator] = None,
        name: str = "",
    ):
        self.env = env
        self.tid = next(_tid_counter)
        self.name = name or f"thread-{self.tid}"
        #: Thread-local storage; the task tracker keeps per-task state here.
        self.locals: Dict[str, Any] = {}
        #: Callables invoked with this thread when its body finishes
        #: (models ``finalize()``-based task-termination inference).
        self.exit_hooks: List[Callable[["SimThread"], None]] = []
        self.process: Optional[Process] = None
        if target is not None:
            self.start(target)

    def start(self, target: Generator) -> Process:
        """Begin executing ``target`` as this thread's body."""
        if self.process is not None:
            raise RuntimeError(f"thread {self.name!r} already started")
        self.process = self.env.process(self._body(target), name=self.name)
        self.process.thread = self
        return self.process

    @property
    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the thread's body (used to model crashes/shutdown)."""
        if self.process is not None:
            self.process.interrupt(cause)

    def join(self):
        """Event that triggers when the thread body finishes."""
        if self.process is None:
            raise RuntimeError(f"thread {self.name!r} was never started")
        return self.process

    def _body(self, target: Generator) -> Generator:
        try:
            result = yield from target
            return result
        finally:
            hooks, self.exit_hooks = list(self.exit_hooks), []
            for hook in hooks:
                hook(self)

    def __repr__(self) -> str:
        return f"<SimThread {self.name!r} tid={self.tid}>"


def spawn_worker(
    env: Environment,
    task_body: Generator,
    name: str = "",
) -> SimThread:
    """Dispatcher-worker model: run ``task_body`` on a fresh thread."""
    return SimThread(env, target=task_body, name=name)


class Executor:
    """A fixed-size thread pool fed by a task queue (producer-consumer).

    Tasks are zero-argument callables returning generators.  Each pooled
    worker runs an infinite dequeue-execute loop until :meth:`shutdown`.
    The ``on_dequeue`` hook fires in worker-thread context right after a
    task is dequeued — this is the paper's "beginning point of a consumer
    stage", where ``set_context(stage_id)`` is inserted.
    """

    def __init__(
        self,
        env: Environment,
        pool_size: int,
        name: str = "executor",
        queue_capacity: Optional[int] = None,
        on_dequeue: Optional[Callable[[Any], None]] = None,
        on_task_error: Optional[Callable[[Any, BaseException], None]] = None,
    ):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.env = env
        self.name = name
        self.queue = SimQueue(env, capacity=queue_capacity, name=f"{name}-queue")
        self.on_dequeue = on_dequeue
        self.on_task_error = on_task_error
        self.threads: List[SimThread] = [
            SimThread(env, target=None, name=f"{name}-{i}") for i in range(pool_size)
        ]
        for thread in self.threads:
            thread.start(self._worker_loop(thread))
        self._completed_tasks = 0
        self._failed_tasks = 0

    @property
    def completed_tasks(self) -> int:
        return self._completed_tasks

    @property
    def failed_tasks(self) -> int:
        return self._failed_tasks

    @property
    def backlog(self) -> int:
        """Number of queued, not-yet-started tasks."""
        return len(self.queue)

    def submit(self, task: Callable[[], Generator]):
        """Enqueue a task factory; returns the queue-accept event."""
        if not callable(task):
            raise TypeError(f"task must be callable, got {task!r}")
        return self.queue.put(task)

    def try_submit(self, task: Callable[[], Generator]) -> bool:
        """Non-blocking submit; False when the queue is full."""
        return self.queue.try_put(task)

    def shutdown(self) -> None:
        """Close the queue; workers exit once it drains."""
        self.queue.close()

    def _worker_loop(self, thread: SimThread) -> Generator:
        while True:
            try:
                task = yield self.queue.get()
            except QueueClosed:
                return
            if self.on_dequeue is not None:
                self.on_dequeue(task)
            try:
                yield from task()
                self._completed_tasks += 1
            except QueueClosed:
                return
            except Exception as exc:  # task failure must not kill the worker
                self._failed_tasks += 1
                if self.on_task_error is not None:
                    self.on_task_error(task, exc)
