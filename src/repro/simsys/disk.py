"""A simulated disk with queued service, bandwidth, and fault hooks.

The paper injects faults with SystemTap on specific kernel I/O paths (WAL
append vs. MemTable flush) and emulates disk hogs with ``dd`` processes.
Here each I/O request carries a *path tag* (e.g. ``"wal"``, ``"flush"``)
and the :class:`~repro.simsys.faults.FaultInjector` installed on the disk
decides, per request, whether to fail it, delay it, or let it through.
A :class:`DiskHog` multiplies service times while active, emulating
bandwidth theft.
"""

from __future__ import annotations

from typing import Generator, Optional

from .engine import Environment
from .errors import SimulatedIOError
from .resources import Semaphore
from .rng import SimRandom


class DiskStats:
    """Counters a disk keeps about its own traffic."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.written_bytes = 0
        self.errors = 0
        self.busy_time = 0.0

    def snapshot(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_bytes": self.read_bytes,
            "written_bytes": self.written_bytes,
            "errors": self.errors,
            "busy_time": self.busy_time,
        }


class SimDisk:
    """A single disk with a bounded number of concurrent I/O slots.

    Service time = base latency (log-normal around the configured median)
    plus transfer time at ``bandwidth_bps``, multiplied by the current
    slowdown factor (raised by disk hogs).
    """

    def __init__(
        self,
        env: Environment,
        name: str = "disk",
        seek_median_s: float = 0.004,
        bandwidth_bps: float = 80e6,
        concurrency: int = 4,
        seed: int = 1,
    ):
        if seek_median_s <= 0 or bandwidth_bps <= 0:
            raise ValueError("seek_median_s and bandwidth_bps must be positive")
        self.env = env
        self.name = name
        self.seek_median_s = seek_median_s
        self.bandwidth_bps = bandwidth_bps
        self._slots = Semaphore(env, capacity=concurrency, name=f"{name}-slots")
        self._rng = SimRandom(seed)
        self.stats = DiskStats()
        #: Multiplier on service time; >1 while a hog is active.
        self.slowdown_factor = 1.0
        #: Saturation stalls (heavy hog load): each I/O has
        #: ``stall_probability`` chance of an extra ``stall_s`` pause.
        self.stall_probability = 0.0
        self.stall_s = 0.0
        #: Per-host multiplier on stall probability (hardware variance;
        #: the paper's Data Node 3 was the slow one).
        self.stall_bias = 1.0
        #: Optional fault injector consulted on every request.
        self.fault_injector = None

    def service_time(self, nbytes: int) -> float:
        """Sample a service time for an ``nbytes`` request."""
        base = self._rng.lognormal_by_median(self.seek_median_s)
        transfer = nbytes / self.bandwidth_bps
        stall = 0.0
        if self.stall_probability > 0.0 and self._rng.random() < self.stall_probability:
            # Heavy-tailed saturation stalls: mostly sub-second hiccups,
            # occasionally multi-second fsync storms.
            stall = self.stall_s * self._rng.lognormal_by_median(1.0, 0.8)
        return (base + transfer) * self.slowdown_factor + stall

    def read(self, nbytes: int, path: str = "data") -> Generator:
        """Process generator performing a read; returns bytes read."""
        yield from self._io(nbytes, path, write=False)
        return nbytes

    def write(self, nbytes: int, path: str = "data") -> Generator:
        """Process generator performing a write; returns bytes written."""
        yield from self._io(nbytes, path, write=True)
        return nbytes

    def _io(self, nbytes: int, path: str, write: bool) -> Generator:
        if nbytes < 0:
            raise ValueError(f"negative I/O size {nbytes}")
        yield self._slots.acquire()
        start = self.env.now
        try:
            extra_delay = 0.0
            if self.fault_injector is not None:
                decision = self.fault_injector.on_io(self.name, path, write)
                if decision.fail:
                    self.stats.errors += 1
                    raise SimulatedIOError(
                        f"injected error on {self.name}:{path}", path=path
                    )
                extra_delay = decision.delay_s
            duration = self.service_time(nbytes) + extra_delay
            yield self.env.timeout(duration)
            if write:
                self.stats.writes += 1
                self.stats.written_bytes += nbytes
            else:
                self.stats.reads += 1
                self.stats.read_bytes += nbytes
        finally:
            self.stats.busy_time += self.env.now - start
            self._slots.release()


class DiskHog:
    """Emulates the paper's ``dd`` disk-hog fault (Table 2).

    Active hog processes multiply disk service time and add CPU pressure
    (interrupt storms stealing kernel cycles).  The slowdown is
    deliberately superlinear: one or two ``dd`` processes mostly steal
    CPU, while four saturate the disk and cause multi-second fsync
    stalls — matching the paper's observation that the medium fault
    manifests as CPU contention and only the high fault breaks I/O.
    """

    #: slowdown per active process count (interpolated beyond the table).
    SLOWDOWN_TABLE = {0: 1.0, 1: 1.15, 2: 1.35, 3: 1.9, 4: 2.8}
    #: per-I/O stall behaviour once the disk saturates (>= 4 processes).
    SATURATION_STALL_PROBABILITY = 0.015
    SATURATION_STALL_S = 0.3

    def __init__(self, disk: SimDisk):
        self.disk = disk
        self.active_processes = 0

    def start(self, processes: int = 1) -> None:
        """Launch ``processes`` hog processes against the disk."""
        if processes <= 0:
            raise ValueError(f"processes must be positive, got {processes}")
        self.active_processes += processes
        self._apply()

    def stop_all(self) -> None:
        self.active_processes = 0
        self._apply()

    @property
    def cpu_pressure(self) -> float:
        """Extra CPU-time multiplier seen by co-located request handling."""
        return 1.0 + 0.35 * self.active_processes

    def _apply(self) -> None:
        n = self.active_processes
        table = self.SLOWDOWN_TABLE
        if n in table:
            factor = table[n]
        else:
            top = max(table)
            factor = table[top] + 0.8 * (n - top)
        self.disk.slowdown_factor = factor
        saturated = n >= 4
        self.disk.stall_probability = (
            self.SATURATION_STALL_PROBABILITY * self.disk.stall_bias
            if saturated
            else 0.0
        )
        self.disk.stall_s = self.SATURATION_STALL_S if saturated else 0.0
