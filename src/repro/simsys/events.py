"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularized by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the :class:`~repro.simsys.engine.Environment` resumes a process when the
event it waits on is processed.

An :class:`Event` moves through three states:

``pending``  → not yet triggered; processes may wait on it.
``triggered`` → has a value (or an exception) and sits in the event queue.
``processed`` → callbacks have run; waiting processes were resumed.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

PENDING = object()
"""Sentinel for "event has no value yet"."""

#: Scheduling priorities. Lower sorts earlier at equal simulation time.
URGENT = 0
NORMAL = 1
LOW = 2


class Event:
    """A happening that processes can wait for.

    Parameters
    ----------
    env:
        The owning :class:`~repro.simsys.engine.Environment`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env):
        self.env = env
        #: Callables invoked with this event once it is processed.  ``None``
        #: once the event has been processed (guards double-processing).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into them.  If nobody
        waits, the simulation surfaces the exception at processing time
        (unless :meth:`defused` was called).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Waits for a combination of events (used via :func:`all_of`/:func:`any_of`).

    ``evaluate`` receives ``(events, triggered_count)`` and returns True once
    the condition holds.  The condition's value is a dict mapping each
    triggered event to its value.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, env, evaluate: Callable[[list, int], bool], events):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")
        if self._evaluate(self._events, 0) and not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {e: e._value for e in self._events if e.triggered and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


def all_of(env, events) -> Condition:
    """A condition that triggers once *all* events have triggered."""
    return Condition(env, lambda evs, count: count >= len(evs), events)


def any_of(env, events) -> Condition:
    """A condition that triggers once *any* event has triggered."""
    events = list(events)
    if not events:
        raise ValueError("any_of() requires at least one event")
    return Condition(env, lambda evs, count: count >= 1, events)
