"""Deterministic random-number utilities for simulations.

Every stochastic component takes an explicit seed (or a parent
:class:`SeedSequenceFactory`) so experiments are reproducible run to run.
"""

from __future__ import annotations

import math
import random
from typing import Optional


class SimRandom(random.Random):
    """A seeded RNG with a few distribution helpers used across the sims."""

    def exponential(self, mean: float) -> float:
        """Exponentially distributed value with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self.expovariate(1.0 / mean)

    def lognormal_by_median(self, median: float, sigma: float = 0.35) -> float:
        """Log-normal sample parameterized by its median.

        Service times in storage systems are right-skewed; a log-normal with
        ``median`` and shape ``sigma`` matches the heavy right tail the paper
        relies on for duration-percentile thresholds.
        """
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        return math.exp(self.gauss(math.log(median), sigma))

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self.random() < p


class SeedSequenceFactory:
    """Derives independent child seeds from a root seed.

    Each named component gets a stable, distinct stream:
    ``factory.child("host-3/disk")`` always yields the same seed for the
    same root, but different names give decorrelated streams.
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def child_seed(self, name: str) -> int:
        h = 1469598103934665603  # FNV-1a 64-bit offset basis
        for byte in f"{self.root_seed}/{name}".encode():
            h ^= byte
            h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        return h

    def rng(self, name: str) -> SimRandom:
        """A fresh :class:`SimRandom` for component ``name``."""
        return SimRandom(self.child_seed(name))


def make_rng(seed: Optional[int]) -> SimRandom:
    """Convenience constructor; ``None`` means a fixed default seed."""
    return SimRandom(0x5AAD if seed is None else seed)
