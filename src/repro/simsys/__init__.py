"""Discrete-event simulation substrate for staged-server experiments.

Public surface:

* :class:`Environment` / :class:`Process` — the simulation kernel.
* :class:`SimThread`, :class:`Executor`, :func:`spawn_worker` — the two
  staging models of the paper (producer-consumer, dispatcher-worker).
* :class:`SimQueue`, :class:`Semaphore`, :class:`Mutex` — blocking resources.
* :class:`SimDisk`, :class:`DiskHog` — storage with fault hooks.
* :class:`FaultInjector`, :class:`FaultSpec`, :class:`FaultSchedule`,
  :class:`HogSchedule` — the paper's failure model.
* :class:`NetworkFabric`, :class:`Host`, :class:`Cluster` — cluster plumbing.
"""

from .cluster import Cluster, Host
from .disk import DiskHog, DiskStats, SimDisk
from .engine import Environment, Process
from .errors import (
    Interrupted,
    ProcessCrashed,
    QueueClosed,
    SimError,
    SimulatedIOError,
    StopSimulation,
)
from .events import Event, Timeout, all_of, any_of
from .faults import (
    DELAY_FAULT_SECONDS,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    HIGH_INTENSITY,
    HogSchedule,
    IODecision,
    LOW_INTENSITY,
)
from .network import NetworkFabric
from .resources import Gate, Mutex, Semaphore, SimQueue
from .rng import SeedSequenceFactory, SimRandom, make_rng
from .threads import Executor, SimThread, spawn_worker

__all__ = [
    "Cluster",
    "DELAY_FAULT_SECONDS",
    "DiskHog",
    "DiskStats",
    "Environment",
    "Event",
    "Executor",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "Gate",
    "HIGH_INTENSITY",
    "HogSchedule",
    "Host",
    "Interrupted",
    "IODecision",
    "LOW_INTENSITY",
    "Mutex",
    "NetworkFabric",
    "Process",
    "ProcessCrashed",
    "QueueClosed",
    "SeedSequenceFactory",
    "Semaphore",
    "SimDisk",
    "SimError",
    "SimQueue",
    "SimRandom",
    "SimThread",
    "SimulatedIOError",
    "StopSimulation",
    "Timeout",
    "all_of",
    "any_of",
    "make_rng",
    "spawn_worker",
]
