"""Fig. 11 + Table 3 — empirical false-positive analysis on Cassandra.

For each of the paper's seven write-path faults (Table 3), run the
controlled experiment of Sec. 5.6: a warm-up, a fault-free observation
phase (anomalies here are *false positives*), then the fault phase.
Compare the average number of flow (Fig. 11a) and performance
(Fig. 11b) anomalies before vs during the fault.

Shape targets: error faults raise flow anomalies by an order of
magnitude; delay faults raise performance anomalies (high-intensity WAL
delay strongly, 1 %-intensity WAL delay not at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import FLOW, PERFORMANCE, SAADConfig
from repro.simsys import FaultSpec, HIGH_INTENSITY, LOW_INTENSITY

from .common import run_cassandra_scenario

#: Paper Table 3 (name -> FaultSpec factory for host4).
TABLE3 = {
    "error-WAL-low": ("wal", "error", LOW_INTENSITY),
    "error-WAL-high": ("wal", "error", HIGH_INTENSITY),
    "error-MemTable-low": ("sstable", "error", LOW_INTENSITY),
    "error-MemTable-high": ("sstable", "error", HIGH_INTENSITY),
    "delay-WAL-low": ("wal", "delay", LOW_INTENSITY),
    "delay-WAL-high": ("wal", "delay", HIGH_INTENSITY),
    "delay-MemTable-low": ("sstable", "delay", LOW_INTENSITY),
}


@dataclass
class Fig11Params:
    phase_s: float = 360.0  # paper: 30 min per phase
    runs: int = 2  # paper: 10 runs per fault
    n_clients: int = 8
    think_time_s: float = 0.05
    window_s: float = 60.0
    seed: int = 42
    faults: Optional[List[str]] = None  # default: all of Table 3

    @classmethod
    def quick(cls) -> "Fig11Params":
        return cls(phase_s=300.0, runs=1)


@dataclass
class FaultOutcome:
    fault: str
    flow_before: float
    flow_during: float
    perf_before: float
    perf_during: float
    runs: int


@dataclass
class Fig11Result:
    outcomes: Dict[str, FaultOutcome]
    params: Fig11Params

    def flow_ratio(self, fault: str) -> float:
        outcome = self.outcomes[fault]
        return outcome.flow_during / max(outcome.flow_before, 0.5)

    def perf_ratio(self, fault: str) -> float:
        outcome = self.outcomes[fault]
        return outcome.perf_during / max(outcome.perf_before, 0.5)

    def mean_false_positives(self, kind: str) -> float:
        """Average anomalies per run in the fault-free observation phase."""
        values = [
            (o.flow_before if kind == FLOW else o.perf_before)
            for o in self.outcomes.values()
        ]
        return sum(values) / len(values) if values else 0.0


def run_fig11(params: Optional[Fig11Params] = None) -> Fig11Result:
    params = params or Fig11Params()
    names = params.faults or list(TABLE3)
    outcomes: Dict[str, FaultOutcome] = {}
    for fault_name in names:
        path, mode, intensity = TABLE3[fault_name]
        flow_before = flow_during = perf_before = perf_during = 0.0
        for run_index in range(params.runs):
            result = run_cassandra_scenario(
                train_s=params.phase_s,  # warm-up + training phase
                detect_s=2 * params.phase_s,  # observe + fault phases
                n_clients=params.n_clients,
                think_time_s=params.think_time_s,
                seed=params.seed + 101 * run_index,
                saad_config=SAADConfig(window_s=params.window_s),
                faults=[
                    (
                        params.phase_s,
                        2 * params.phase_s,
                        FaultSpec(path, mode, intensity, host="host4"),
                    )
                ],
            )
            split = result.detect_start + params.phase_s
            flow_before += result.count(kind=FLOW, end=split)
            flow_during += result.count(kind=FLOW, start=split)
            perf_before += result.count(kind=PERFORMANCE, end=split)
            perf_during += result.count(kind=PERFORMANCE, start=split)
        outcomes[fault_name] = FaultOutcome(
            fault=fault_name,
            flow_before=flow_before / params.runs,
            flow_during=flow_during / params.runs,
            perf_before=perf_before / params.runs,
            perf_during=perf_during / params.runs,
            runs=params.runs,
        )
    return Fig11Result(outcomes=outcomes, params=params)


def main() -> None:
    from repro.viz import render_table

    fig = run_fig11()
    rows = [
        (
            o.fault,
            f"{o.flow_before:.1f}",
            f"{o.flow_during:.1f}",
            f"{o.perf_before:.1f}",
            f"{o.perf_during:.1f}",
        )
        for o in fig.outcomes.values()
    ]
    print(
        render_table(
            ["fault", "flow before", "flow during", "perf before", "perf during"],
            rows,
            title="Fig 11: average detected anomalies before vs during fault",
        )
    )


if __name__ == "__main__":
    main()
