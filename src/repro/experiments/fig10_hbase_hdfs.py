"""Fig. 10 — anomalies per stage in HBase Regionservers and HDFS Data
Nodes under disk-hog faults (paper Sec. 5.5, Table 2).

Timeline (paper minutes × ``scale``):

    low     8-16   1 dd process on every host
    medium  28-44  2 dd processes
    high-1  56-64  4 dd processes  → Regionserver 3 crashes via the
                                     premature-recovery-termination bug
    high-2  116-130 4 dd processes → muted (YCSB 0.1.4 put batching)
    ~150    a major compaction causes the false-positive anomaly burst

The crash is scripted deterministically partway through high-1 (the
underlying recovery-retry mechanics are fully emergent after the
trigger; see ``RegionServer.force_wal_failure``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core import SAADConfig
from repro.hbase import HBaseConfig

from .common import ScenarioResult, run_hbase_scenario

#: Paper Table 2 (minutes, dd processes).
TABLE2 = [
    ("low", 8, 16, 1),
    ("medium", 28, 44, 2),
    ("high-1", 56, 64, 4),
    ("high-2", 116, 130, 4),
]
MAJOR_COMPACTION_MINUTE = 150
RUN_MINUTES = 180


@dataclass
class Fig10Params:
    scale: float = 0.2
    n_clients: int = 12
    think_time_s: float = 0.03
    seed: int = 42
    train_minutes: float = 40.0
    window_s: float = 60.0
    put_batching: bool = True
    crash_minute: float = 58.0  # inside high-1

    def minutes(self, paper_minutes: float) -> float:
        return paper_minutes * self.scale * 60.0

    @classmethod
    def quick(cls) -> "Fig10Params":
        return cls(scale=0.12, n_clients=10, train_minutes=35.0)


@dataclass
class Fig10Result:
    result: ScenarioResult
    params: Fig10Params
    phases: Dict[str, Tuple[float, float]]
    crashed_server: Optional[str]

    def counts(self, kind: str, phase: str) -> Dict[Tuple[str, str], int]:
        start, end = self.phases[phase]
        out: Dict[Tuple[str, str], int] = {}
        for event in self.result.anomalies_for(kind=kind, start=start, end=end):
            key = (
                self.result.stage_name(event.stage_id),
                self.result.host_name(event.host_id),
            )
            out[key] = out.get(key, 0) + 1
        return out

    def total(self, kind: str, phase: str) -> int:
        return sum(self.counts(kind, phase).values())


def run_fig10(params: Optional[Fig10Params] = None) -> Fig10Result:
    params = params or Fig10Params()
    hog_entries = [
        (params.minutes(start), params.minutes(end), processes)
        for _name, start, end, processes in TABLE2
    ]
    detect_s = params.minutes(RUN_MINUTES)

    def scripted(cluster, detect_start):
        def crash_trigger():
            yield cluster.env.timeout(params.minutes(params.crash_minute))
            victim = cluster.regionservers.get("host3")
            if victim is not None and victim.alive:
                victim.force_wal_failure()

        def major_compaction_trigger():
            yield cluster.env.timeout(params.minutes(MAJOR_COMPACTION_MINUTE))
            for rs in cluster.regionservers.values():
                if rs.alive:
                    rs.request_major_compaction()

        cluster.env.process(crash_trigger(), name="fig10-crash")
        cluster.env.process(major_compaction_trigger(), name="fig10-major")

    result = run_hbase_scenario(
        train_s=params.minutes(params.train_minutes),
        detect_s=detect_s,
        n_clients=params.n_clients,
        think_time_s=params.think_time_s,
        seed=params.seed,
        saad_config=SAADConfig(window_s=params.window_s),
        hog_entries=hog_entries,
        put_batching=params.put_batching,
        scripted=scripted,
    )
    offset = result.detect_start
    phases = {
        name: (offset + params.minutes(start), offset + params.minutes(end))
        for name, start, end, _processes in TABLE2
    }
    phases["baseline"] = (offset, offset + params.minutes(TABLE2[0][1]))
    phases["compaction"] = (
        offset + params.minutes(MAJOR_COMPACTION_MINUTE - 2),
        offset + params.minutes(MAJOR_COMPACTION_MINUTE + 15),
    )
    crashed = [
        name
        for name, rs in result.cluster.regionservers.items()
        if not rs.alive
    ]
    return Fig10Result(
        result=result,
        params=params,
        phases=phases,
        crashed_server=crashed[0] if crashed else None,
    )


def main() -> None:
    from repro.viz import render_timeline

    fig = run_fig10()
    print("=== Fig 10: HBase/HDFS disk-hog timeline ===")
    print(f"crashed regionserver: {fig.crashed_server}")
    print(
        render_timeline(
            fig.result.timeline(),
            throughput=fig.result.throughput_series(),
            fault_windows=[
                (*fig.phases[name], name) for name, *_ in TABLE2
            ],
        )
    )


if __name__ == "__main__":
    main()
