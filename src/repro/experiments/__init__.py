"""Experiment harnesses: one module per paper table/figure.

| module                   | reproduces                                     |
|--------------------------|------------------------------------------------|
| ``fig6_signatures``      | Fig. 6 signature distributions                 |
| ``fig7_overhead``        | Fig. 7 SAAD runtime overhead                   |
| ``fig8_storage``         | Fig. 8 monitoring-data volume                  |
| ``sec533_analyzer``      | Sec. 5.3.3 analyzer vs MapReduce mining        |
| ``table1_signatures``    | Table 1 frozen-MemTable signatures             |
| ``fig9_cassandra_faults``| Fig. 9(a-d) Cassandra fault timelines          |
| ``fig10_hbase_hdfs``     | Fig. 10 + Table 2 HBase/HDFS disk-hog timeline |
| ``fig11_false_positives``| Fig. 11 + Table 3 false-positive analysis      |

Each module exposes ``run_*(params) -> result`` plus a ``main()`` that
prints the paper-style table/timeline.  Benchmarks under
``benchmarks/`` call the same runners with quick parameters.
"""

from .common import ScenarioResult, run_cassandra_scenario, run_hbase_scenario

__all__ = ["ScenarioResult", "run_cassandra_scenario", "run_hbase_scenario"]
