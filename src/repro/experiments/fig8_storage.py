"""Fig. 8 — volume of monitoring data: DEBUG logs vs task synopses.

The paper measures, for the same runs, the bytes a conventional
DEBUG-level deployment writes versus the bytes of SAAD task synopses,
finding a 15x-900x reduction (HDFS 1457 MB vs 1.8, HBase 928 vs 1.0,
Cassandra 1431 vs 136.7).

We run each system with DEBUG rendering into a volume-counting appender
*and* the tracker enabled, then report both byte counts per system.
Rendered records are attributed to a system via their log point's
source file, so the co-located Data Node / Regionserver volumes split
correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cassandra import CassandraCluster, ClientOp
from repro.hbase import HBaseCluster, HBaseOp
from repro.loglib import DEBUG, LogRecord
from repro.loglib.appenders import Appender
from repro.ycsb import ClientPool, write_heavy

_SOURCE_TO_SYSTEM = {
    "hdfs_sim.py": "hdfs",
    "hbase_sim.py": "hbase",
    "cassandra_sim.py": "cassandra",
}


class _SystemVolumeAppender(Appender):
    """Counts rendered bytes, bucketed by the originating system."""

    def __init__(self, registry):
        super().__init__()
        self.registry = registry
        self.bytes_by_system: Dict[str, int] = {}

    def write(self, line: str, record: LogRecord) -> None:
        system = "other"
        if record.lpid is not None:
            point = self.registry.maybe_get(record.lpid)
            if point is not None:
                system = _SOURCE_TO_SYSTEM.get(point.source_file, "other")
        self.bytes_by_system[system] = (
            self.bytes_by_system.get(system, 0) + len(line.encode())
        )


@dataclass
class VolumeMeasurement:
    system: str
    debug_log_bytes: int
    synopsis_bytes: int
    synopsis_count: int

    @property
    def reduction_factor(self) -> float:
        if self.synopsis_bytes == 0:
            return float("inf")
        return self.debug_log_bytes / self.synopsis_bytes


@dataclass
class Fig8Params:
    run_s: float = 480.0
    n_clients: int = 10
    seed: int = 42

    @classmethod
    def quick(cls) -> "Fig8Params":
        return cls(run_s=300.0, n_clients=8)


@dataclass
class Fig8Result:
    measurements: Dict[str, VolumeMeasurement]
    #: Telemetry snapshot (collected family dicts) per deployment; the
    #: stream/tracker byte counters corroborate the volume numbers.
    telemetry: Dict[str, List[dict]] = field(default_factory=dict)


def _synopsis_stats(saad, system: str):
    from .fig6_signatures import classify_synopsis

    total_bytes = 0
    count = 0
    stage_names = {s.stage_id: s.name for s in saad.stages}
    for synopsis in saad.collector.synopses:
        stage = stage_names.get(synopsis.stage_id, "")
        if system == "*" or classify_synopsis(synopsis, saad.logpoints, stage) == system:
            total_bytes += synopsis.encoded_size()
            count += 1
    return total_bytes, count


def run_fig8(params: Optional[Fig8Params] = None) -> Fig8Result:
    params = params or Fig8Params()
    # Cassandra at DEBUG with volume accounting.
    cassandra = CassandraCluster(n_nodes=4, seed=params.seed, log_level=DEBUG)
    cass_volume = _SystemVolumeAppender(cassandra.saad.logpoints)
    for node in cassandra.saad.nodes.values():
        node.repository.add_appender(cass_volume)
    ClientPool(
        cassandra.env,
        write_heavy(record_count=4000),
        lambda node, op: cassandra.nodes[node].client_request(
            ClientOp(op.kind, op.key, value="v", nbytes=op.value_bytes)
        ),
        cassandra.ring.node_names,
        n_clients=params.n_clients,
        think_time_s=0.04,
        seed=params.seed + 1,
    )
    cassandra.run(until=params.run_s)
    cass_synopsis_bytes, cass_count = _synopsis_stats(cassandra.saad, "*")

    # HBase/HDFS at DEBUG.
    hbase = HBaseCluster(n_servers=4, seed=params.seed, log_level=DEBUG)
    hbase_volume = _SystemVolumeAppender(hbase.saad.logpoints)
    for node in hbase.saad.nodes.values():
        node.repository.add_appender(hbase_volume)
    ClientPool(
        hbase.env,
        write_heavy(record_count=4000),
        lambda _node, op: hbase.submit(
            HBaseOp("read" if op.kind == "read" else "write", op.key,
                    value="v", value_bytes=op.value_bytes)
        ),
        list(hbase.regionservers),
        n_clients=params.n_clients,
        think_time_s=0.03,
        seed=params.seed + 2,
    )
    hbase.run(until=params.run_s)
    hdfs_synopsis_bytes, hdfs_count = _synopsis_stats(hbase.saad, "hdfs")
    hbase_synopsis_bytes, hbase_count = _synopsis_stats(hbase.saad, "hbase")
    return Fig8Result(
        measurements={
            "hdfs": VolumeMeasurement(
                "HDFS",
                hbase_volume.bytes_by_system.get("hdfs", 0),
                hdfs_synopsis_bytes,
                hdfs_count,
            ),
            "hbase": VolumeMeasurement(
                "HBase",
                hbase_volume.bytes_by_system.get("hbase", 0),
                hbase_synopsis_bytes,
                hbase_count,
            ),
            "cassandra": VolumeMeasurement(
                "Cassandra",
                cass_volume.bytes_by_system.get("cassandra", 0),
                cass_synopsis_bytes,
                cass_count,
            ),
        },
        telemetry={
            "cassandra": cassandra.saad.registry.collect(),
            "hbase": hbase.saad.registry.collect(),
        },
    )


def main() -> None:
    from repro.telemetry import write_jsonl
    from repro.viz import render_table

    fig = run_fig8()
    for snapshot in fig.telemetry.values():
        write_jsonl(snapshot, "TELEMETRY_fig8.jsonl")
    rows = [
        (
            m.system,
            f"{m.debug_log_bytes / 1e6:.1f} MB",
            f"{m.synopsis_bytes / 1e6:.3f} MB",
            f"{m.reduction_factor:.0f}x",
        )
        for m in fig.measurements.values()
    ]
    print(
        render_table(
            ["system", "DEBUG logs", "synopses", "reduction"],
            rows,
            title="Fig 8: monitoring-data volume",
        )
    )
    print(
        f"telemetry: {len(fig.telemetry)} snapshots appended to "
        "TELEMETRY_fig8.jsonl (render: python -m repro stats TELEMETRY_fig8.jsonl)"
    )


if __name__ == "__main__":
    main()
