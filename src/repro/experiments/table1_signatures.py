"""Table 1 — normal vs anomalous Table-stage signatures under the
WAL-error fault (the frozen-MemTable anomaly that emits no error log).

Runs the Fig. 9(a) scenario and extracts, for host 4's ``Table`` stage:

* the dominant normal signature (start/apply/done log points);
* the anomalous signature consisting only of "MemTable is already
  frozen; another thread must be flushing it".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core import SAADConfig, TaskSynopsis
from repro.simsys import FaultSpec, HIGH_INTENSITY

from .common import ScenarioResult, run_cassandra_scenario


@dataclass
class Table1Result:
    result: ScenarioResult
    normal_signature: FrozenSet[int]
    anomalous_signature: FrozenSet[int]
    normal_count: int
    anomalous_count: int
    rendered: str


def run_table1(
    fault_start_s: float = 240.0,
    detect_s: float = 720.0,
    train_s: float = 600.0,
    n_clients: int = 8,
    seed: int = 42,
) -> Table1Result:
    result = run_cassandra_scenario(
        train_s=train_s,
        detect_s=detect_s,
        n_clients=n_clients,
        seed=seed,
        saad_config=SAADConfig(window_s=60.0),
        faults=[
            (fault_start_s, detect_s, FaultSpec("wal", "error", HIGH_INTENSITY, host="host4"))
        ],
    )
    cluster = result.cluster
    lps = cluster.lps
    stage = cluster.saad.stages.by_name("Table")
    host4_id = {v: k for k, v in cluster.saad.host_names.items()}["host4"]

    # Collect Table-stage signatures on host4 from the detection stream.
    # The detector consumed the stream; reconstruct from anomaly events
    # plus the model's training profile for the normal flow.
    model = cluster.saad.model
    stage_model = model.stage_model((host4_id, stage.stage_id))
    normal_signature = max(
        stage_model.signatures.values(), key=lambda p: p.count
    ).signature
    frozen_only = frozenset({lps.table_frozen.lpid})
    anomalous_events = [
        e
        for e in result.anomalies_for(stage="Table", host="host4", kind="flow")
        if frozen_only in e.new_signatures
    ]
    reporter = cluster.saad.reporter()
    rendered = reporter.signature_comparison(
        stage.stage_id, normal_signature, frozen_only
    )
    return Table1Result(
        result=result,
        normal_signature=normal_signature,
        anomalous_signature=frozen_only,
        normal_count=stage_model.signatures[normal_signature].count,
        anomalous_count=len(anomalous_events),
        rendered=rendered,
    )


def main() -> None:
    table = run_table1()
    print(table.rendered)
    print(
        f"\nnormal flow seen {table.normal_count}x in training; "
        f"frozen-only flow flagged in {table.anomalous_count} windows "
        "during the fault (no error log explains it)"
    )


if __name__ == "__main__":
    main()
