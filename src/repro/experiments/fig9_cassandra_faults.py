"""Fig. 9 — anomalies per stage in Cassandra under injected I/O faults.

Four experiments (paper Sec. 5.4), each on a 4-node cluster with the
fault injected on host 4:

    (a) error on appending to WAL
    (b) error on flushing MemTables (SSTable writes)
    (c) delay on appending to WAL
    (d) delay on flushing MemTables

Timeline (paper minutes, multiplied by ``scale``): low-intensity fault
(1 % of I/O) at minute 10 for 10 minutes; high-intensity (100 %) at
minute 30 for 10 minutes; run ends at minute 50.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import FLOW, PERFORMANCE, SAADConfig
from repro.simsys import FaultSpec, HIGH_INTENSITY, LOW_INTENSITY

from .common import ScenarioResult, run_cassandra_scenario

VARIANTS = {
    "a": ("wal", "error"),
    "b": ("sstable", "error"),
    "c": ("wal", "delay"),
    "d": ("sstable", "delay"),
}


@dataclass
class Fig9Params:
    """Timeline and load parameters."""

    scale: float = 0.3  # paper minutes -> simulated minutes
    n_clients: int = 10
    think_time_s: float = 0.04
    seed: int = 42
    train_minutes: float = 16.0  # paper used a separate 2 h trace
    window_s: float = 60.0
    #: Smaller backlog scale makes the scaled run hit the paper's OOM
    #: crash (~min 44) within the compressed timeline.
    heap_backlog_scale: int = 14_000

    def minutes(self, paper_minutes: float) -> float:
        return paper_minutes * self.scale * 60.0

    @classmethod
    def quick(cls) -> "Fig9Params":
        # The tighter heap scale keeps the paper's post-fault OOM crash
        # inside the heavily compressed timeline at the lower client load.
        return cls(
            scale=0.22, n_clients=8, train_minutes=20.0, heap_backlog_scale=7_000
        )


@dataclass
class Fig9Result:
    variant: str
    result: ScenarioResult
    low_window: Tuple[float, float]
    high_window: Tuple[float, float]

    def counts(self, kind: str, phase: Optional[str] = None) -> Dict[Tuple[str, str], int]:
        """(stage, host) -> anomaly count, optionally limited to a phase."""
        start, end = {
            None: (0.0, self.result.horizon),
            "baseline": (0.0, self.low_window[0]),
            "low": self.low_window,
            "between": (self.low_window[1], self.high_window[0]),
            "high": self.high_window,
            "after": (self.high_window[1], self.result.horizon),
        }[phase]
        out: Dict[Tuple[str, str], int] = {}
        for event in self.result.anomalies_for(kind=kind, start=start, end=end):
            key = (
                self.result.stage_name(event.stage_id),
                self.result.host_name(event.host_id),
            )
            out[key] = out.get(key, 0) + 1
        return out


def run_fig9(variant: str, params: Optional[Fig9Params] = None) -> Fig9Result:
    """Run one Fig. 9 variant and return its anomaly timeline."""
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {sorted(VARIANTS)}")
    params = params or Fig9Params()
    path, mode = VARIANTS[variant]
    low_start = params.minutes(10)
    low_end = params.minutes(20)
    high_start = params.minutes(30)
    high_end = params.minutes(40)
    detect_s = params.minutes(50)
    faults = [
        (low_start, low_end, FaultSpec(path, mode, LOW_INTENSITY, host="host4")),
        (high_start, high_end, FaultSpec(path, mode, HIGH_INTENSITY, host="host4")),
    ]
    from repro.cassandra import CassandraConfig

    cassandra_config = CassandraConfig(heap_backlog_scale=params.heap_backlog_scale)
    result = run_cassandra_scenario(
        cassandra_config=cassandra_config,
        train_s=params.minutes(params.train_minutes),
        detect_s=detect_s,
        n_clients=params.n_clients,
        think_time_s=params.think_time_s,
        seed=params.seed,
        saad_config=SAADConfig(window_s=params.window_s),
        faults=faults,
    )
    offset = result.detect_start
    return Fig9Result(
        variant=variant,
        result=result,
        low_window=(offset + low_start, offset + low_end),
        high_window=(offset + high_start, offset + high_end),
    )


def main() -> None:
    from repro.viz import render_timeline

    for variant in "abcd":
        fig = run_fig9(variant)
        path, mode = VARIANTS[variant]
        print(f"=== Fig 9({variant}): {mode} on {path} (host4) ===")
        print(
            render_timeline(
                fig.result.timeline(),
                throughput=fig.result.throughput_series(),
                fault_windows=[
                    (*fig.low_window, "low fault"),
                    (*fig.high_window, "high fault"),
                ],
            )
        )


if __name__ == "__main__":
    main()
