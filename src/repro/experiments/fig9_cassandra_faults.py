"""Fig. 9 — anomalies per stage in Cassandra under injected I/O faults.

Four experiments (paper Sec. 5.4), each on a 4-node cluster with the
fault injected on host 4:

    (a) error on appending to WAL
    (b) error on flushing MemTables (SSTable writes)
    (c) delay on appending to WAL
    (d) delay on flushing MemTables

Timeline (paper minutes, multiplied by ``scale``): low-intensity fault
(1 % of I/O) at minute 10 for 10 minutes; high-intensity (100 %) at
minute 30 for 10 minutes; run ends at minute 50.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import FLOW, PERFORMANCE, SAADConfig
from repro.simsys import FaultSpec, HIGH_INTENSITY, LOW_INTENSITY

from .common import ScenarioResult, run_cassandra_scenario

VARIANTS = {
    "a": ("wal", "error"),
    "b": ("sstable", "error"),
    "c": ("wal", "delay"),
    "d": ("sstable", "delay"),
}


@dataclass
class Fig9Params:
    """Timeline and load parameters."""

    scale: float = 0.3  # paper minutes -> simulated minutes
    n_clients: int = 10
    think_time_s: float = 0.04
    seed: int = 42
    train_minutes: float = 16.0  # paper used a separate 2 h trace
    window_s: float = 60.0
    #: Smaller backlog scale makes the scaled run hit the paper's OOM
    #: crash (~min 44) within the compressed timeline.
    heap_backlog_scale: int = 14_000

    def minutes(self, paper_minutes: float) -> float:
        return paper_minutes * self.scale * 60.0

    @classmethod
    def quick(cls) -> "Fig9Params":
        # The tighter heap scale keeps the paper's post-fault OOM crash
        # inside the heavily compressed timeline at the lower client load.
        return cls(
            scale=0.22, n_clients=8, train_minutes=20.0, heap_backlog_scale=7_000
        )


@dataclass
class Fig9Result:
    variant: str
    result: ScenarioResult
    low_window: Tuple[float, float]
    high_window: Tuple[float, float]

    def counts(self, kind: str, phase: Optional[str] = None) -> Dict[Tuple[str, str], int]:
        """(stage, host) -> anomaly count, optionally limited to a phase."""
        start, end = {
            None: (0.0, self.result.horizon),
            "baseline": (0.0, self.low_window[0]),
            "low": self.low_window,
            "between": (self.low_window[1], self.high_window[0]),
            "high": self.high_window,
            "after": (self.high_window[1], self.result.horizon),
        }[phase]
        out: Dict[Tuple[str, str], int] = {}
        for event in self.result.anomalies_for(kind=kind, start=start, end=end):
            key = (
                self.result.stage_name(event.stage_id),
                self.result.host_name(event.host_id),
            )
            out[key] = out.get(key, 0) + 1
        return out


def run_fig9(
    variant: str,
    params: Optional[Fig9Params] = None,
    *,
    detect_step_s: Optional[float] = None,
    on_step=None,
) -> Fig9Result:
    """Run one Fig. 9 variant and return its anomaly timeline.

    ``on_step``/``detect_step_s`` pass through to
    :func:`~repro.experiments.common.run_cassandra_scenario` — the hook
    :func:`run_fig9_with_health` evaluates its rule engine from.
    """
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {sorted(VARIANTS)}")
    params = params or Fig9Params()
    path, mode = VARIANTS[variant]
    low_start = params.minutes(10)
    low_end = params.minutes(20)
    high_start = params.minutes(30)
    high_end = params.minutes(40)
    detect_s = params.minutes(50)
    faults = [
        (low_start, low_end, FaultSpec(path, mode, LOW_INTENSITY, host="host4")),
        (high_start, high_end, FaultSpec(path, mode, HIGH_INTENSITY, host="host4")),
    ]
    from repro.cassandra import CassandraConfig

    cassandra_config = CassandraConfig(heap_backlog_scale=params.heap_backlog_scale)
    result = run_cassandra_scenario(
        cassandra_config=cassandra_config,
        train_s=params.minutes(params.train_minutes),
        detect_s=detect_s,
        n_clients=params.n_clients,
        think_time_s=params.think_time_s,
        seed=params.seed,
        saad_config=SAADConfig(window_s=params.window_s),
        faults=faults,
        detect_step_s=detect_step_s,
        on_step=on_step,
    )
    offset = result.detect_start
    return Fig9Result(
        variant=variant,
        result=result,
        low_window=(offset + low_start, offset + low_end),
        high_window=(offset + high_start, offset + high_end),
    )


def anomaly_burst_rules(window_s: float = 60.0):
    """Scenario rules for the simulated fleet: anomaly-event bursts.

    The built-in pack watches the ingest edge; a simulated cluster
    detects in-process, so its failure signal is the detector's own
    event stream.  One warn-level event per window is a page-worthy
    change (training left the rate at ~zero); a burst of eight within
    one window means the fault is systemic, not one bad task.
    """
    from repro.health.rules import ThresholdRule

    rules = []
    for kind in ("flow", "performance"):
        rules.append(
            ThresholdRule(
                f"{kind}_anomaly_burst",
                f"{kind} anomaly events per rule window",
                "detector_anomalies",
                labels={"kind": kind},
                mode="delta",
                warn=1,
                critical=8,
                window_s=window_s,
            )
        )
    return tuple(rules)


@dataclass
class Fig9HealthResult:
    """A Fig. 9 run observed live by a :class:`~repro.health.HealthEngine`.

    ``transitions`` are the engine's alert transitions in simulation
    time, so they line up with ``fig``'s fault windows and anomaly
    events directly.
    """

    fig: Fig9Result
    engine: object
    transitions: List[dict] = field(default_factory=list)
    cadence_s: float = 0.0

    def fired(self) -> List[str]:
        """Rule names that raised (left ``ok``) at least once, sorted."""
        return sorted({t["name"] for t in self.transitions if t["to"] != "ok"})

    def transitions_for(self, name: str) -> List[dict]:
        return [t for t in self.transitions if t["name"] == name]

    def first_raise_at(self, name: str) -> Optional[float]:
        """Sim time of the first non-ok transition of rule ``name``."""
        for t in self.transitions:
            if t["name"] == name and t["to"] != "ok":
                return t["at"]
        return None

    def first_anomaly_at(self, kind: Optional[str] = None) -> Optional[float]:
        """Window-end time of the detector's first anomaly event."""
        events = self.fig.result.anomalies_for(kind=kind)
        if not events:
            return None
        return min(e.window_start + self.fig.result.detector.config.window_s
                   for e in events)

    def alert_lag_s(self, name: str, kind: Optional[str] = None) -> Optional[float]:
        """First alert raise minus first anomaly window close (seconds).

        Positive: the alert trailed the event stream (hysteresis +
        evaluation cadence); negative: the rule fired before the first
        event's window even closed.
        """
        raised = self.first_raise_at(name)
        first = self.first_anomaly_at(kind)
        if raised is None or first is None:
            return None
        return raised - first


def run_fig9_with_health(
    variant: str,
    params: Optional[Fig9Params] = None,
    *,
    cadence_s: Optional[float] = None,
    raise_after: int = 2,
) -> Fig9HealthResult:
    """One Fig. 9 variant with the health rule engine watching live.

    A sim-clocked :class:`~repro.health.HealthEngine` (built-in pack +
    :func:`anomaly_burst_rules`) evaluates the scenario registry every
    ``cadence_s`` of simulated time (default: half a SAAD window) and
    every detector anomaly event is correlated into its timeline — the
    lead/lag measurement recorded in EXPERIMENTS.md.
    """
    from repro.health import HealthEngine
    from repro.health.rules import builtin_rules

    params = params or Fig9Params()
    cadence = cadence_s if cadence_s is not None else params.window_s / 2
    state: dict = {"engine": None, "noted": 0}
    transitions: List[dict] = []

    def on_step(cluster, detector) -> None:
        engine = state["engine"]
        if engine is None:
            engine = HealthEngine(
                cluster.saad.registry,
                rules=builtin_rules(params.window_s)
                + anomaly_burst_rules(params.window_s),
                raise_after=raise_after,
                clock=lambda: cluster.env.now,
                history_s=max(900.0, 4 * params.window_s),
            )
            state["engine"] = engine
        for event in detector.anomalies[state["noted"]:]:
            engine.note_anomaly(event)
        state["noted"] = len(detector.anomalies)
        transitions.extend(t.as_dict() for t in engine.observe())

    fig = run_fig9(variant, params, detect_step_s=cadence, on_step=on_step)
    return Fig9HealthResult(
        fig=fig, engine=state["engine"], transitions=transitions, cadence_s=cadence
    )


def main() -> None:
    from repro.viz import render_timeline

    for variant in "abcd":
        fig = run_fig9(variant)
        path, mode = VARIANTS[variant]
        print(f"=== Fig 9({variant}): {mode} on {path} (host4) ===")
        print(
            render_timeline(
                fig.result.timeline(),
                throughput=fig.result.throughput_series(),
                fault_windows=[
                    (*fig.low_window, "low fault"),
                    (*fig.high_window, "high fault"),
                ],
            )
        )


if __name__ == "__main__":
    main()
